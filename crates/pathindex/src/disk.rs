//! Persisting the path index in a [`kvstore`] backend.
//!
//! Key layout (big-endian composite keys so ranges align with tuple order —
//! the two-level ⟨label sequence, probability⟩ structure of the paper):
//!
//! ```text
//! "M"                               -> config + sequence count
//! "S" seq_id:u32                    -> label sequence (u16 count + ids)
//! "H" seq_id:u32                    -> histogram counts (u32 each)
//! "P" seq_id:u32 bucket:u8 n:u32    -> nodes (u8 count + u32 ids) | prle | prn
//! ```
//!
//! The entry keyspace for one sequence is contiguous and ordered by bucket,
//! so a lookup with threshold `α` is a single range scan from
//! `("P", seq, bucket(α))` — the disk analogue of the in-memory structure.

use crate::index::{canonicalize, Orientation, PathIndex, PathIndexConfig, PathMatch, StoredPath};
use graphstore::hash::FxHashMap;
use graphstore::{EntityId, Label};
use kvstore::{codec, Kv, KvError, Result};

fn meta_key() -> Vec<u8> {
    b"M".to_vec()
}

fn seq_key(id: u32) -> Vec<u8> {
    let mut k = b"S".to_vec();
    codec::push_u32(&mut k, id);
    k
}

fn hist_key(id: u32) -> Vec<u8> {
    let mut k = b"H".to_vec();
    codec::push_u32(&mut k, id);
    k
}

fn entry_key(seq: u32, bucket: u8, n: u32) -> Vec<u8> {
    let mut k = b"P".to_vec();
    codec::push_u32(&mut k, seq);
    k.push(bucket);
    codec::push_u32(&mut k, n);
    k
}

fn entry_prefix(seq: u32, bucket: u8) -> Vec<u8> {
    let mut k = b"P".to_vec();
    codec::push_u32(&mut k, seq);
    k.push(bucket);
    k
}

fn seq_upper_bound(seq: u32) -> Vec<u8> {
    let mut k = b"P".to_vec();
    codec::push_u32(&mut k, seq + 1);
    k
}

/// Writes `index` into `kv`.
pub fn save_index(index: &PathIndex, kv: &mut dyn Kv) -> Result<()> {
    let cfg = index.config();
    let mut seq_ids: Vec<(&Vec<u16>, u32)> = Vec::new();
    for (i, (seq, _)) in index.iter_sequences().enumerate() {
        seq_ids.push((seq, i as u32));
    }

    let mut meta = Vec::new();
    codec::push_u16(&mut meta, cfg.max_len as u16);
    codec::push_f64_prob(&mut meta, cfg.beta);
    codec::push_f64_prob(&mut meta, cfg.gamma);
    codec::push_u16(&mut meta, cfg.hist_grid.len() as u16);
    for &g in &cfg.hist_grid {
        codec::push_f64_prob(&mut meta, g);
    }
    codec::push_u32(&mut meta, seq_ids.len() as u32);
    kv.put(&meta_key(), &meta)?;

    for (seq, id) in &seq_ids {
        let mut buf = Vec::new();
        codec::push_u16(&mut buf, seq.len() as u16);
        for &l in seq.iter() {
            codec::push_u16(&mut buf, l);
        }
        kv.put(&seq_key(*id), &buf)?;
        if let Some(counts) = index.hist.get(*seq) {
            let mut hbuf = Vec::new();
            for &c in counts {
                codec::push_u32(&mut hbuf, c);
            }
            kv.put(&hist_key(*id), &hbuf)?;
        }
    }

    for (seq, id) in &seq_ids {
        let sb = &index.map[*seq];
        for (bucket, entries) in sb.buckets.iter().enumerate() {
            for (n, e) in entries.iter().enumerate() {
                let mut buf = Vec::new();
                buf.push(e.nodes.len() as u8);
                for &node in &e.nodes {
                    codec::push_u32(&mut buf, node);
                }
                codec::push_f64_prob(&mut buf, e.prle);
                codec::push_f64_prob(&mut buf, e.prn);
                kv.put(&entry_key(*id, bucket as u8, n as u32), &buf)?;
            }
        }
    }
    Ok(())
}

fn decode_entry(buf: &[u8]) -> StoredPath {
    let n = buf[0] as usize;
    let mut nodes = Vec::with_capacity(n);
    let mut pos = 1;
    for _ in 0..n {
        nodes.push(codec::read_u32(buf, pos));
        pos += 4;
    }
    let prle = codec::read_f64_prob(buf, pos);
    let prn = codec::read_f64_prob(buf, pos + 8);
    StoredPath { nodes, prle, prn }
}

/// Reads a full [`PathIndex`] back into memory.
pub fn load_index(kv: &dyn Kv) -> Result<PathIndex> {
    let meta = kv.get(&meta_key())?.ok_or_else(|| KvError::Corrupt("missing index meta".into()))?;
    let max_len = codec::read_u16(&meta, 0) as usize;
    let beta = codec::read_f64_prob(&meta, 2);
    let gamma = codec::read_f64_prob(&meta, 10);
    let n_grid = codec::read_u16(&meta, 18) as usize;
    let mut pos = 20;
    let mut hist_grid = Vec::with_capacity(n_grid);
    for _ in 0..n_grid {
        hist_grid.push(codec::read_f64_prob(&meta, pos));
        pos += 8;
    }
    let n_seqs = codec::read_u32(&meta, pos);
    let config = PathIndexConfig { max_len, beta, gamma, threads: 0, hist_grid };
    let mut index = PathIndex::empty(config);

    let mut seqs: Vec<Vec<u16>> = Vec::with_capacity(n_seqs as usize);
    for id in 0..n_seqs {
        let raw =
            kv.get(&seq_key(id))?.ok_or_else(|| KvError::Corrupt(format!("missing seq {id}")))?;
        let n = codec::read_u16(&raw, 0) as usize;
        let mut seq = Vec::with_capacity(n);
        for i in 0..n {
            seq.push(codec::read_u16(&raw, 2 + 2 * i));
        }
        seqs.push(seq);
    }
    for (id, seq) in seqs.iter().enumerate() {
        let lo = entry_prefix(id as u32, 0);
        let hi = seq_upper_bound(id as u32);
        kv.scan(Some(&lo), Some(&hi), &mut |_k, v| {
            index.insert(seq.clone(), decode_entry(v));
            true
        })?;
    }
    index.rebuild_histograms();
    Ok(index)
}

/// A path index served directly from a key/value store: lookups are range
/// scans, nothing is cached in memory beyond the sequence table.
pub struct DiskPathIndex<'a, K: Kv> {
    kv: &'a K,
    config: PathIndexConfig,
    seq_ids: FxHashMap<Vec<u16>, u32>,
}

impl<'a, K: Kv> DiskPathIndex<'a, K> {
    /// Opens a previously saved index for direct disk lookups.
    pub fn open(kv: &'a K) -> Result<Self> {
        let meta =
            kv.get(&meta_key())?.ok_or_else(|| KvError::Corrupt("missing index meta".into()))?;
        let max_len = codec::read_u16(&meta, 0) as usize;
        let beta = codec::read_f64_prob(&meta, 2);
        let gamma = codec::read_f64_prob(&meta, 10);
        let n_grid = codec::read_u16(&meta, 18) as usize;
        let mut pos = 20;
        let mut hist_grid = Vec::with_capacity(n_grid);
        for _ in 0..n_grid {
            hist_grid.push(codec::read_f64_prob(&meta, pos));
            pos += 8;
        }
        let n_seqs = codec::read_u32(&meta, pos);
        let config = PathIndexConfig { max_len, beta, gamma, threads: 0, hist_grid };
        let mut seq_ids = FxHashMap::default();
        for id in 0..n_seqs {
            let raw = kv
                .get(&seq_key(id))?
                .ok_or_else(|| KvError::Corrupt(format!("missing seq {id}")))?;
            let n = codec::read_u16(&raw, 0) as usize;
            let mut seq = Vec::with_capacity(n);
            for i in 0..n {
                seq.push(codec::read_u16(&raw, 2 + 2 * i));
            }
            seq_ids.insert(seq, id);
        }
        Ok(Self { kv, config, seq_ids })
    }

    /// Directed matches for `labels` with total probability ≥ `min_prob`,
    /// via a single range scan per lookup.
    pub fn lookup(&self, labels: &[Label], min_prob: f64) -> Result<Vec<PathMatch>> {
        let seq: Vec<u16> = labels.iter().map(|l| l.0).collect();
        let (canonical, orient) = canonicalize(&seq);
        let Some(&id) = self.seq_ids.get(&canonical) else {
            return Ok(Vec::new());
        };
        // One bucket early — matches the in-memory lookup's tolerance for
        // probabilities a hair below the threshold (see `PathIndex::lookup`).
        let start_bucket = self.config.bucket_of(min_prob).saturating_sub(1) as u8;
        let lo = entry_prefix(id, start_bucket);
        let hi = seq_upper_bound(id);
        let mut out = Vec::new();
        self.kv.scan(Some(&lo), Some(&hi), &mut |_k, v| {
            let e = decode_entry(v);
            if e.prob() + 1e-12 >= min_prob {
                match orient {
                    Orientation::Forward => out.push(to_match(&e, false)),
                    Orientation::Reverse => out.push(to_match(&e, true)),
                    Orientation::Palindrome => {
                        out.push(to_match(&e, false));
                        if e.nodes.len() > 1 {
                            out.push(to_match(&e, true));
                        }
                    }
                }
            }
            true
        })?;
        Ok(out)
    }
}

fn to_match(e: &StoredPath, reverse: bool) -> PathMatch {
    let nodes: Vec<EntityId> = if reverse {
        e.nodes.iter().rev().map(|&n| EntityId(n)).collect()
    } else {
        e.nodes.iter().map(|&n| EntityId(n)).collect()
    };
    PathMatch { nodes, prle: e.prle, prn: e.prn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::index::NoIdentity;
    use graphstore::dist::{EdgeProbability, LabelDist};
    use graphstore::{EntityGraphBuilder, LabelTable, RefId};
    use kvstore::MemStore;

    fn sample_index() -> PathIndex {
        let table = LabelTable::from_names(["x", "y", "z"]);
        let n = table.len();
        let mut b = EntityGraphBuilder::new(table);
        let vs: Vec<_> = (0..6)
            .map(|i| b.add_node(LabelDist::delta(Label((i % 3) as u16), n), vec![RefId(i as u32)]))
            .collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], EdgeProbability::Independent(0.9));
        }
        let g = b.build();
        build_index(
            &g,
            &NoIdentity,
            &PathIndexConfig { max_len: 3, beta: 0.2, ..Default::default() },
        )
    }

    #[test]
    fn save_load_roundtrip() {
        let idx = sample_index();
        let mut kv = MemStore::new();
        save_index(&idx, &mut kv).unwrap();
        let back = load_index(&kv).unwrap();
        assert_eq!(back.n_entries(), idx.n_entries());
        assert_eq!(back.n_sequences(), idx.n_sequences());
        for labels in [
            vec![Label(0), Label(1)],
            vec![Label(0), Label(1), Label(2)],
            vec![Label(2), Label(1), Label(0), Label(2)],
        ] {
            let mut a = idx.lookup(&labels, 0.3);
            let mut b = back.lookup(&labels, 0.3);
            a.sort_by(|x, y| x.nodes.cmp(&y.nodes));
            b.sort_by(|x, y| x.nodes.cmp(&y.nodes));
            assert_eq!(a, b);
            assert!(
                (idx.estimate_count(&labels, 0.45) - back.estimate_count(&labels, 0.45)).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn disk_lookup_matches_memory() {
        let idx = sample_index();
        let mut kv = MemStore::new();
        save_index(&idx, &mut kv).unwrap();
        let disk = DiskPathIndex::open(&kv).unwrap();
        for labels in
            [vec![Label(0)], vec![Label(1), Label(2)], vec![Label(0), Label(1), Label(2), Label(0)]]
        {
            for alpha in [0.2, 0.5, 0.9] {
                let mut a = idx.lookup(&labels, alpha);
                let mut b = disk.lookup(&labels, alpha).unwrap();
                a.sort_by(|x, y| x.nodes.cmp(&y.nodes));
                b.sort_by(|x, y| x.nodes.cmp(&y.nodes));
                assert_eq!(a, b, "labels {labels:?} alpha {alpha}");
            }
        }
    }

    #[test]
    fn roundtrip_through_disk_btree() {
        let idx = sample_index();
        let mut path = std::env::temp_dir();
        path.push(format!("pathindex-disk-{}", std::process::id()));
        {
            let mut store = kvstore::BTreeStore::create(&path).unwrap();
            save_index(&idx, &mut store).unwrap();
            store.flush().unwrap();
            assert!(store.file_len() > 4096);
        }
        {
            let store = kvstore::BTreeStore::open(&path).unwrap();
            let back = load_index(&store).unwrap();
            assert_eq!(back.n_entries(), idx.n_entries());
        }
        std::fs::remove_file(&path).ok();
    }
}
