//! Cardinality estimation: exponential interpolation over histogram points.
//!
//! The offline phase records, per label sequence, the number of index
//! entries with probability at least each grid point `α_i`. At query time,
//! `|PIndex(X, α)|` for an arbitrary `α` is estimated by exponential curve
//! fitting between the surrounding grid points (Section 5.2.1): counts of
//! probabilistic paths decay roughly geometrically in the threshold.

/// Estimates the count at `alpha` from `counts[i] = #{p ≥ grid[i]}`.
///
/// * `alpha` below the first grid point clamps to the first count;
/// * `alpha` above the last grid point clamps to the last count;
/// * between points, fits `N(α) = N_i · (N_{i+1}/N_i)^t` with
///   `t = (α − α_i)/(α_{i+1} − α_i)`, falling back to linear interpolation
///   when a zero count makes the geometric form degenerate.
pub fn estimate_at(grid: &[f64], counts: &[u32], alpha: f64) -> f64 {
    assert_eq!(grid.len(), counts.len(), "grid/count length mismatch");
    if grid.is_empty() {
        return 0.0;
    }
    if alpha <= grid[0] {
        return counts[0] as f64;
    }
    if alpha >= grid[grid.len() - 1] {
        return counts[counts.len() - 1] as f64;
    }
    // Find i with grid[i] <= alpha < grid[i+1].
    let mut i = 0;
    while i + 1 < grid.len() && grid[i + 1] <= alpha {
        i += 1;
    }
    let (g0, g1) = (grid[i], grid[i + 1]);
    let (c0, c1) = (counts[i] as f64, counts[i + 1] as f64);
    let t = (alpha - g0) / (g1 - g0);
    if c0 <= 0.0 {
        return 0.0;
    }
    if c1 <= 0.0 {
        // Geometric fit undefined; decay linearly to zero.
        return c0 * (1.0 - t);
    }
    c0 * (c1 / c0).powf(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

    #[test]
    fn clamps_outside_grid() {
        let counts = [100, 50, 20, 5, 1];
        assert_eq!(estimate_at(&GRID, &counts, 0.05), 100.0);
        assert_eq!(estimate_at(&GRID, &counts, 0.95), 1.0);
        assert_eq!(estimate_at(&GRID, &counts, 0.1), 100.0);
    }

    #[test]
    fn exact_at_grid_points() {
        let counts = [100, 50, 20, 5, 1];
        assert!((estimate_at(&GRID, &counts, 0.5) - 20.0).abs() < 1e-9);
        assert!((estimate_at(&GRID, &counts, 0.7) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_between_points() {
        let counts = [100, 50, 20, 5, 1];
        // Midpoint of (0.1, 0.3): sqrt(100 * 50).
        let est = estimate_at(&GRID, &counts, 0.2);
        assert!((est - (100.0f64 * 50.0).sqrt()).abs() < 1e-9);
        // Monotone non-increasing.
        let mut prev = f64::INFINITY;
        for a in [0.1, 0.15, 0.2, 0.3, 0.42, 0.5, 0.64, 0.7, 0.85, 0.9] {
            let e = estimate_at(&GRID, &counts, a);
            assert!(e <= prev + 1e-9, "not monotone at {a}");
            prev = e;
        }
    }

    #[test]
    fn zero_tail_linear_fallback() {
        let counts = [10, 4, 0, 0, 0];
        let mid = estimate_at(&GRID, &counts, 0.4);
        assert!((mid - 2.0).abs() < 1e-9, "mid = {mid}");
        assert_eq!(estimate_at(&GRID, &counts, 0.6), 0.0);
    }

    #[test]
    fn empty_grid() {
        assert_eq!(estimate_at(&[], &[], 0.5), 0.0);
    }
}
