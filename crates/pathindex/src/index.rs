//! In-memory index structure and lookups.

use crate::histogram::estimate_at;
use graphstore::hash::FxHashMap;
use graphstore::{EntityId, Label};

/// Identity-uncertainty oracle: the piece of the PEG the index needs.
///
/// Implemented by `pegmatch::model::ExistenceModel`; kept as a trait so this
/// crate stays below the core library in the dependency graph.
pub trait IdentityOracle: Sync {
    /// `Prn` of a set of entity nodes: probability they co-exist.
    fn prn(&self, nodes: &[EntityId]) -> f64;

    /// Fast path: node exists in every world (lets builders skip `prn`).
    fn always_exists(&self, _v: EntityId) -> bool {
        false
    }
}

/// Trivial oracle for graphs without identity uncertainty.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoIdentity;

impl IdentityOracle for NoIdentity {
    fn prn(&self, _nodes: &[EntityId]) -> f64 {
        1.0
    }

    fn always_exists(&self, _v: EntityId) -> bool {
        true
    }
}

/// Construction parameters.
#[derive(Clone, Debug)]
pub struct PathIndexConfig {
    /// Maximum path length `L` in edges (0 = single nodes only).
    pub max_len: usize,
    /// Probability lower bound `β` for indexed paths.
    pub beta: f64,
    /// Bucket resolution `γ`.
    pub gamma: f64,
    /// Worker threads for construction (0 = all available cores).
    pub threads: usize,
    /// Histogram probability points (ascending).
    pub hist_grid: Vec<f64>,
}

impl Default for PathIndexConfig {
    fn default() -> Self {
        Self {
            max_len: 3,
            beta: 0.3,
            gamma: 0.1,
            threads: 0,
            hist_grid: crate::DEFAULT_HIST_GRID.to_vec(),
        }
    }
}

impl PathIndexConfig {
    /// Number of buckets implied by `gamma`.
    pub fn n_buckets(&self) -> usize {
        (1.0 / self.gamma).ceil() as usize + 1
    }

    /// Bucket index for probability `p`.
    pub fn bucket_of(&self, p: f64) -> usize {
        ((p / self.gamma) as usize).min(self.n_buckets() - 1)
    }
}

/// One stored path under a specific label assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredPath {
    /// Node ids along the path (canonical orientation).
    pub nodes: Vec<u32>,
    /// `Prle` under the key's label assignment.
    pub prle: f64,
    /// `Prn` of the path's node set.
    pub prn: f64,
}

impl StoredPath {
    /// Total probability `Prle · Prn`.
    #[inline]
    pub fn prob(&self) -> f64 {
        self.prle * self.prn
    }
}

/// A directed path match returned by lookups.
#[derive(Clone, Debug, PartialEq)]
pub struct PathMatch {
    /// Node ids in query orientation: `nodes[i]` matches position `i` of the
    /// requested label sequence.
    pub nodes: Vec<EntityId>,
    /// `Prle` under the requested label sequence.
    pub prle: f64,
    /// `Prn` of the node set.
    pub prn: f64,
}

impl PathMatch {
    /// Total probability.
    #[inline]
    pub fn prob(&self) -> f64 {
        self.prle * self.prn
    }
}

/// Per-canonical-sequence storage: entries bucketed by total probability.
#[derive(Clone, Debug, Default)]
pub(crate) struct SeqBuckets {
    pub(crate) buckets: Vec<Vec<StoredPath>>,
}

/// The context-aware path index (in-memory form).
#[derive(Clone, Debug)]
pub struct PathIndex {
    config: PathIndexConfig,
    pub(crate) map: FxHashMap<Vec<u16>, SeqBuckets>,
    /// Histogram per canonical sequence: counts of entries with total
    /// probability ≥ each grid point.
    pub(crate) hist: FxHashMap<Vec<u16>, Vec<u32>>,
    pub(crate) n_entries: usize,
}

/// Canonical orientation of a label sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Orientation {
    /// The requested sequence is stored as-is.
    Forward,
    /// The requested sequence is stored reversed.
    Reverse,
    /// Palindromic: stored entries yield both directions.
    Palindrome,
}

pub(crate) fn canonicalize(seq: &[u16]) -> (Vec<u16>, Orientation) {
    let rev: Vec<u16> = seq.iter().rev().copied().collect();
    match seq.cmp(rev.as_slice()) {
        std::cmp::Ordering::Less => (seq.to_vec(), Orientation::Forward),
        std::cmp::Ordering::Greater => (rev, Orientation::Reverse),
        std::cmp::Ordering::Equal => (seq.to_vec(), Orientation::Palindrome),
    }
}

/// Canonical storage orientation of a label sequence, plus whether the
/// sequence is palindromic (palindromic lookups yield both directions per
/// stored entry, which doubles histogram estimates).
///
/// Public so composite stores (e.g. a sharded store merging per-shard
/// histograms) can reproduce [`PathIndex::estimate_count`]'s keying
/// exactly.
pub fn canonical_label_seq(labels: &[Label]) -> (Vec<u16>, bool) {
    let seq: Vec<u16> = labels.iter().map(|l| l.0).collect();
    let (canonical, orient) = canonicalize(&seq);
    (canonical, orient == Orientation::Palindrome)
}

/// The estimation core shared by [`PathIndex::estimate_count`] and
/// composite stores holding merged histograms: interpolate `counts` at
/// `alpha` over `grid` and double palindromic multi-node sequences (their
/// entries answer both directions). Keeping this in one place is what
/// guarantees a store with bit-identical counts produces bit-identical
/// estimates.
pub fn estimate_from_counts(
    grid: &[f64],
    counts: &[u32],
    alpha: f64,
    palindrome: bool,
    seq_len: usize,
) -> f64 {
    let base = estimate_at(grid, counts, alpha);
    let factor = if palindrome && seq_len > 1 { 2.0 } else { 1.0 };
    base * factor
}

impl PathIndex {
    pub(crate) fn empty(config: PathIndexConfig) -> Self {
        Self { config, map: FxHashMap::default(), hist: FxHashMap::default(), n_entries: 0 }
    }

    /// The construction parameters.
    pub fn config(&self) -> &PathIndexConfig {
        &self.config
    }

    /// Total stored entries (canonical paths × label assignments).
    pub fn n_entries(&self) -> usize {
        self.n_entries
    }

    /// Number of distinct canonical label sequences.
    pub fn n_sequences(&self) -> usize {
        self.map.len()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        for (k, v) in &self.map {
            total += (k.len() * 2 + 48) as u64;
            for b in &v.buckets {
                total += 24;
                for e in b {
                    total += (e.nodes.len() * 4 + 16 + 24) as u64;
                }
            }
        }
        for (k, v) in &self.hist {
            total += (k.len() * 2 + v.len() * 4 + 48) as u64;
        }
        total
    }

    pub(crate) fn insert(&mut self, canonical: Vec<u16>, entry: StoredPath) {
        let bucket = self.config.bucket_of(entry.prob());
        let n_buckets = self.config.n_buckets();
        let sb = self
            .map
            .entry(canonical)
            .or_insert_with(|| SeqBuckets { buckets: vec![Vec::new(); n_buckets] });
        sb.buckets[bucket].push(entry);
        self.n_entries += 1;
    }

    /// Rebuilds the per-sequence histograms from the stored entries.
    pub(crate) fn rebuild_histograms(&mut self) {
        self.hist.clear();
        let grid = self.config.hist_grid.clone();
        for (seq, sb) in &self.map {
            let mut counts = vec![0u32; grid.len()];
            for b in &sb.buckets {
                for e in b {
                    let p = e.prob();
                    for (i, &g) in grid.iter().enumerate() {
                        if p >= g {
                            counts[i] += 1;
                        }
                    }
                }
            }
            self.hist.insert(seq.clone(), counts);
        }
    }

    /// Per-sequence histogram counts over the subset of entries
    /// satisfying `keep` — computed exactly as the index's own histograms
    /// are, but with non-matching entries skipped. Sequences with no kept
    /// entry are omitted; the output is sorted by sequence for
    /// deterministic iteration.
    ///
    /// A sharded store uses this to count each path exactly once (at the
    /// shard that owns it), so that summing per-shard histograms
    /// element-wise reproduces the unsharded histogram — and with it,
    /// bit-identical cardinality estimates.
    pub fn histogram_counts_where(
        &self,
        keep: &dyn Fn(&StoredPath) -> bool,
    ) -> Vec<(Vec<u16>, Vec<u32>)> {
        let grid = &self.config.hist_grid;
        let mut out: Vec<(Vec<u16>, Vec<u32>)> = Vec::new();
        for (seq, sb) in &self.map {
            let mut counts = vec![0u32; grid.len()];
            let mut any = false;
            for b in &sb.buckets {
                for e in b {
                    if !keep(e) {
                        continue;
                    }
                    any = true;
                    let p = e.prob();
                    for (i, &g) in grid.iter().enumerate() {
                        if p >= g {
                            counts[i] += 1;
                        }
                    }
                }
            }
            if any {
                out.push((seq.clone(), counts));
            }
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// All directed path matches for `labels` with total probability
    /// ≥ `min_prob`. (`PIndex(lQ(VP), α)` of the paper.)
    pub fn lookup(&self, labels: &[Label], min_prob: f64) -> Vec<PathMatch> {
        let seq: Vec<u16> = labels.iter().map(|l| l.0).collect();
        let (canonical, orient) = canonicalize(&seq);
        let Some(sb) = self.map.get(&canonical) else {
            return Vec::new();
        };
        // Start one bucket early: floating-point probabilities a hair below
        // `min_prob` may land in the previous bucket yet pass the exact
        // (epsilon-tolerant) per-entry filter below.
        let start_bucket = self.config.bucket_of(min_prob).saturating_sub(1);
        let mut out = Vec::new();
        for b in &sb.buckets[start_bucket..] {
            for e in b {
                if e.prob() + 1e-12 < min_prob {
                    continue;
                }
                match orient {
                    Orientation::Forward => out.push(to_match(e, false)),
                    Orientation::Reverse => out.push(to_match(e, true)),
                    Orientation::Palindrome => {
                        out.push(to_match(e, false));
                        if e.nodes.len() > 1 {
                            out.push(to_match(e, true));
                        }
                    }
                }
            }
        }
        out
    }

    /// Exact number of directed matches for `labels` at threshold `alpha`
    /// (linear in the candidate buckets; used by tests and small queries).
    pub fn count_exact(&self, labels: &[Label], alpha: f64) -> usize {
        self.lookup(labels, alpha).len()
    }

    /// Histogram-based estimate of `|PIndex(labels, alpha)|` using
    /// exponential interpolation between grid points (Section 5.2.1).
    pub fn estimate_count(&self, labels: &[Label], alpha: f64) -> f64 {
        let seq: Vec<u16> = labels.iter().map(|l| l.0).collect();
        let (canonical, orient) = canonicalize(&seq);
        let Some(counts) = self.hist.get(&canonical) else {
            return 0.0;
        };
        estimate_from_counts(
            &self.config.hist_grid,
            counts,
            alpha,
            orient == Orientation::Palindrome,
            labels.len(),
        )
    }

    /// Iterates all canonical sequences with their entries (persistence).
    pub(crate) fn iter_sequences(&self) -> impl Iterator<Item = (&Vec<u16>, &SeqBuckets)> {
        self.map.iter()
    }
}

fn to_match(e: &StoredPath, reverse: bool) -> PathMatch {
    let nodes: Vec<EntityId> = if reverse {
        e.nodes.iter().rev().map(|&n| EntityId(n)).collect()
    } else {
        e.nodes.iter().map(|&n| EntityId(n)).collect()
    };
    PathMatch { nodes, prle: e.prle, prn: e.prn }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization() {
        assert_eq!(canonicalize(&[1, 2, 3]), (vec![1, 2, 3], Orientation::Forward));
        assert_eq!(canonicalize(&[3, 2, 1]), (vec![1, 2, 3], Orientation::Reverse));
        assert_eq!(canonicalize(&[2, 1, 2]), (vec![2, 1, 2], Orientation::Palindrome));
        assert_eq!(canonicalize(&[5]), (vec![5], Orientation::Palindrome));
    }

    #[test]
    fn bucket_math() {
        let cfg = PathIndexConfig { gamma: 0.1, ..Default::default() };
        assert_eq!(cfg.n_buckets(), 11);
        assert_eq!(cfg.bucket_of(0.0), 0);
        assert_eq!(cfg.bucket_of(0.55), 5);
        assert_eq!(cfg.bucket_of(1.0), 10);
    }

    #[test]
    fn insert_lookup_direction_handling() {
        let mut idx = PathIndex::empty(PathIndexConfig::default());
        // Canonical sequence [1,2,3] with a path 10-11-12.
        idx.insert(vec![1, 2, 3], StoredPath { nodes: vec![10, 11, 12], prle: 0.8, prn: 1.0 });
        idx.rebuild_histograms();

        let fwd = idx.lookup(&[Label(1), Label(2), Label(3)], 0.5);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].nodes, vec![EntityId(10), EntityId(11), EntityId(12)]);

        let rev = idx.lookup(&[Label(3), Label(2), Label(1)], 0.5);
        assert_eq!(rev.len(), 1);
        assert_eq!(rev[0].nodes, vec![EntityId(12), EntityId(11), EntityId(10)]);

        assert!(idx.lookup(&[Label(1), Label(2), Label(3)], 0.9).is_empty());
        assert!(idx.lookup(&[Label(9)], 0.1).is_empty());
    }

    #[test]
    fn palindrome_yields_both_directions() {
        let mut idx = PathIndex::empty(PathIndexConfig::default());
        idx.insert(vec![1, 2, 1], StoredPath { nodes: vec![5, 6, 7], prle: 0.9, prn: 1.0 });
        idx.rebuild_histograms();
        let got = idx.lookup(&[Label(1), Label(2), Label(1)], 0.1);
        assert_eq!(got.len(), 2);
        assert_ne!(got[0].nodes, got[1].nodes);
        // Single nodes are not doubled.
        let mut idx2 = PathIndex::empty(PathIndexConfig::default());
        idx2.insert(vec![4], StoredPath { nodes: vec![9], prle: 1.0, prn: 1.0 });
        assert_eq!(idx2.lookup(&[Label(4)], 0.5).len(), 1);
    }

    #[test]
    fn estimate_uses_histogram_and_palindrome_factor() {
        let mut idx = PathIndex::empty(PathIndexConfig::default());
        for i in 0..10 {
            idx.insert(
                vec![1, 2, 1],
                StoredPath { nodes: vec![i, i + 100, i + 200], prle: 0.55, prn: 1.0 },
            );
        }
        idx.rebuild_histograms();
        let est = idx.estimate_count(&[Label(1), Label(2), Label(1)], 0.5);
        assert!((est - 20.0).abs() < 1e-9, "est = {est}");
        let exact = idx.count_exact(&[Label(1), Label(2), Label(1)], 0.5);
        assert_eq!(exact, 20);
    }
}
