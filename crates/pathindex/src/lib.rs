#![warn(missing_docs)]

//! `pathindex` — the context-aware path index (Section 5.1).
//!
//! Indexes every path of the probabilistic entity graph with length at most
//! `L`, total probability (`Prle · Prn`) at least `β`, and no two nodes
//! sharing a reference. Entries are keyed by
//! `⟨label sequence, probability bucket⟩` where buckets have resolution `γ`;
//! the paper's two-level structure (hash on the label sequence, B+-tree on
//! the probability) maps to a hash map over canonical label sequences whose
//! values are bucketed entry lists in memory, and to composite-key ranges in
//! a [`kvstore::BTreeStore`] on disk ([`disk`]).
//!
//! Undirected symmetry is folded: a path is stored only under the canonical
//! orientation of its label sequence (ties broken on node ids), and lookups
//! reconstruct directed matches — both directions for palindromic label
//! sequences.
//!
//! Per-sequence histograms at fixed probability points support the
//! cardinality estimation used by query decomposition (exponential
//! interpolation between grid points).

pub mod build;
pub mod disk;
pub mod histogram;
mod index;

pub use build::{build_index, enumerate_paths_online, update_index};
pub use index::{
    canonical_label_seq, estimate_from_counts, IdentityOracle, NoIdentity, PathIndex,
    PathIndexConfig, PathMatch, StoredPath,
};

/// Default histogram grid (the paper's "selected probability points").
pub const DEFAULT_HIST_GRID: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
