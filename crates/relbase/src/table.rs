//! Schemas and in-memory tables.

use crate::{RelError, Result, Row, Value};

/// Column data type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// Column name (for plan readability).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// An integer column.
    pub fn int(name: &str) -> Self {
        Self { name: name.to_string(), ty: ColumnType::Int }
    }

    /// A float column.
    pub fn float(name: &str) -> Self {
        Self { name: name.to_string(), ty: ColumnType::Float }
    }
}

/// An ordered list of columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema.
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validates a row against the schema.
    pub fn check(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(RelError::Schema(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            let ok = matches!(
                (v, c.ty),
                (Value::Int(_), ColumnType::Int) | (Value::Float(_), ColumnType::Float)
            );
            if !ok {
                return Err(RelError::Schema(format!(
                    "value {v:?} does not fit column {} ({:?})",
                    c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    /// Concatenation of two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema::new(columns)
    }
}

/// A row-store table.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table.
    pub fn new(schema: Schema) -> Self {
        Self { schema, rows: Vec::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends a row after validation.
    pub fn push(&mut self, row: Row) -> Result<()> {
        self.schema.check(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_validation() {
        let s = Schema::new(vec![Column::int("id"), Column::float("p")]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("p"), Some(1));
        assert_eq!(s.index_of("zz"), None);
        assert!(s.check(&vec![Value::Int(1), Value::Float(0.5)]).is_ok());
        assert!(s.check(&vec![Value::Int(1)]).is_err());
        assert!(s.check(&vec![Value::Float(0.5), Value::Float(0.5)]).is_err());
    }

    #[test]
    fn table_push_and_len() {
        let s = Schema::new(vec![Column::int("id")]);
        let mut t = Table::new(s);
        assert!(t.is_empty());
        t.push(vec![Value::Int(7)]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.push(vec![Value::Float(0.0)]).is_err());
    }

    #[test]
    fn schema_join_concatenates() {
        let a = Schema::new(vec![Column::int("x")]);
        let b = Schema::new(vec![Column::float("y"), Column::int("z")]);
        let j = a.join(&b);
        assert_eq!(j.arity(), 3);
        assert_eq!(j.index_of("z"), Some(2));
    }
}
