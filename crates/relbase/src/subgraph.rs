//! The paper's SQL baseline: subgraph matching as a relational join plan.
//!
//! The PEG is encoded as three tables:
//!
//! * `nodes(id, label, prob)` — one row per entity × supported label,
//! * `edges(src, dst, src_label, dst_label, prob)` — both directions of
//!   every PEG edge × label combination with non-zero probability (the
//!   relational flattening of conditional edge tables),
//! * `conflicts(a, b)` — entity pairs sharing a reference.
//!
//! A query becomes one `edges` self-join per query edge plus `nodes` joins
//! for label probabilities, injectivity (`≠`) predicates, and a threshold
//! filter on the probability product. Identity marginals (`Prn`) are not
//! expressible relationally (they are not pairwise decomposable), so the
//! conflict/`Prn` step runs as a final stored-procedure-style pass —
//! matching what a SQL implementation would have to do anyway.

use crate::exec::{collect, ExecContext, Filter, HashJoin, Operator, Project, Scan};
use crate::expr::Expr;
use crate::table::{Column, Schema, Table};
use crate::{RelError, Value};
use graphstore::EntityId;
use pegmatch::matcher::{sort_matches, Match};
use pegmatch::query::{QNode, QueryGraph};
use pegmatch::Peg;

/// The relational encoding of a PEG.
pub struct GraphTables {
    /// `nodes(id, label, prob)`.
    pub nodes: Table,
    /// `edges(src, dst, src_label, dst_label, prob)`.
    pub edges: Table,
    /// `conflicts(a, b)` (both orders).
    pub conflicts: Table,
}

/// Flattens a PEG into relational tables.
pub fn tables_from_peg(peg: &Peg) -> GraphTables {
    let g = &peg.graph;
    let mut nodes = Table::new(Schema::new(vec![
        Column::int("id"),
        Column::int("label"),
        Column::float("prob"),
    ]));
    for v in g.node_ids() {
        for l in g.node(v).labels.support() {
            nodes
                .push(vec![
                    Value::Int(v.0 as i64),
                    Value::Int(l.0 as i64),
                    Value::Float(g.label_prob(v, l)),
                ])
                .expect("node row fits schema");
        }
    }

    let mut edges = Table::new(Schema::new(vec![
        Column::int("src"),
        Column::int("dst"),
        Column::int("src_label"),
        Column::int("dst_label"),
        Column::float("prob"),
    ]));
    for e in g.edges() {
        for (u, v) in [(e.a, e.b), (e.b, e.a)] {
            for lu in g.node(u).labels.support() {
                for lv in g.node(v).labels.support() {
                    let p = g.edge_prob(u, v, lu, lv);
                    if p > 0.0 {
                        edges
                            .push(vec![
                                Value::Int(u.0 as i64),
                                Value::Int(v.0 as i64),
                                Value::Int(lu.0 as i64),
                                Value::Int(lv.0 as i64),
                                Value::Float(p),
                            ])
                            .expect("edge row fits schema");
                    }
                }
            }
        }
    }

    let mut conflicts = Table::new(Schema::new(vec![Column::int("a"), Column::int("b")]));
    for u in g.node_ids() {
        for v in g.node_ids() {
            if u < v && !g.refs_disjoint(u, v) {
                for (a, b) in [(u, v), (v, u)] {
                    conflicts
                        .push(vec![Value::Int(a.0 as i64), Value::Int(b.0 as i64)])
                        .expect("conflict row fits schema");
                }
            }
        }
    }
    GraphTables { nodes, edges, conflicts }
}

/// Runs the SQL-style baseline: returns all matches with `Pr(M) ≥ alpha`,
/// or [`RelError::BudgetExceeded`] when the join plan's intermediate results
/// blow the row budget (the paper's "never finishes" outcome).
pub fn run_relational_baseline(
    peg: &Peg,
    tables: &GraphTables,
    query: &QueryGraph,
    alpha: f64,
    budget: u64,
) -> Result<Vec<Match>, RelError> {
    let mut ctx = ExecContext::with_budget(budget);
    let n = query.n_nodes();

    // BFS placement order so every new node attaches through an edge.
    let order = bfs_order(query);
    let mut placed: Vec<bool> = vec![false; n];

    // Column bookkeeping: per query node, its (id, prob) column indices.
    let mut id_col: Vec<usize> = vec![usize::MAX; n];
    let mut prob_cols: Vec<usize> = Vec::new();
    let mut arity;

    // Root: nodes filtered to the root label, projected to (id, prob).
    let root = order[0];
    let root_plan: Box<dyn Operator> = Box::new(Project::new(
        Filter::new(
            Scan::new(&tables.nodes),
            Expr::eq(Expr::col(1), Expr::lit_i(query.label(root).0 as i64)),
        ),
        vec![Expr::col(0), Expr::col(2)],
    ));
    id_col[root as usize] = 0;
    prob_cols.push(1);
    arity = 2;
    placed[root as usize] = true;
    let mut plan = root_plan;
    let mut joined_edges: Vec<(QNode, QNode)> = Vec::new();

    for &v in order.iter().skip(1) {
        // Anchor: a placed neighbor.
        let u = *query
            .neighbors(v)
            .iter()
            .find(|&&m| placed[m as usize])
            .expect("BFS order guarantees a placed neighbor");
        // Join the edge relation for (u, v).
        let e_filter = Expr::and(
            Expr::eq(Expr::col(2), Expr::lit_i(query.label(u).0 as i64)),
            Expr::eq(Expr::col(3), Expr::lit_i(query.label(v).0 as i64)),
        );
        let edge_scan = Filter::new(Scan::new(&tables.edges), e_filter);
        plan = Box::new(HashJoin::new(plan, edge_scan, vec![id_col[u as usize]], vec![0]));
        let edge_base = arity;
        arity += 5;
        prob_cols.push(edge_base + 4);
        joined_edges.push((u.min(v), u.max(v)));

        // Join the node relation for v's label probability.
        let n_filter = Expr::eq(Expr::col(1), Expr::lit_i(query.label(v).0 as i64));
        let node_scan = Filter::new(Scan::new(&tables.nodes), n_filter);
        plan = Box::new(HashJoin::new(plan, node_scan, vec![edge_base + 1], vec![0]));
        let node_base = arity;
        arity += 3;
        id_col[v as usize] = node_base;
        prob_cols.push(node_base + 2);

        // Injectivity against all previously placed nodes.
        let mut preds = Vec::new();
        for w in 0..n as QNode {
            if placed[w as usize] {
                preds.push(Expr::ne(Expr::col(id_col[w as usize]), Expr::col(node_base)));
            }
        }
        if !preds.is_empty() {
            plan = Box::new(Filter::new(plan, Expr::and_all(preds)));
        }
        placed[v as usize] = true;

        // Closing edges among placed nodes.
        for &m in query.neighbors(v) {
            if !placed[m as usize] || m == u {
                continue;
            }
            let key = (m.min(v), m.max(v));
            if joined_edges.contains(&key) {
                continue;
            }
            let e_filter = Expr::and(
                Expr::eq(Expr::col(2), Expr::lit_i(query.label(m).0 as i64)),
                Expr::eq(Expr::col(3), Expr::lit_i(query.label(v).0 as i64)),
            );
            let edge_scan = Filter::new(Scan::new(&tables.edges), e_filter);
            plan = Box::new(HashJoin::new(
                plan,
                edge_scan,
                vec![id_col[m as usize], id_col[v as usize]],
                vec![0, 1],
            ));
            prob_cols.push(arity + 4);
            arity += 5;
            joined_edges.push(key);
        }
    }

    // Threshold on the Prle product, then project ids + product.
    let product = Expr::mul_all(prob_cols.iter().map(|&c| Expr::col(c)).collect());
    plan = Box::new(Filter::new(plan, Expr::ge(product.clone(), Expr::lit_f(alpha - 1e-12))));
    let mut projections: Vec<Expr> = (0..n).map(|q| Expr::col(id_col[q])).collect();
    projections.push(product);
    let plan = Project::new(plan, projections);

    let rows = collect(plan, &mut ctx)?;

    // Stored-procedure step: conflicts + identity marginal.
    let mut out = Vec::new();
    for row in rows {
        let nodes: Vec<EntityId> = (0..n).map(|q| EntityId(row[q].as_int() as u32)).collect();
        let prle = row[n].as_float();
        let mut conflict = false;
        'outer: for (a, &x) in nodes.iter().enumerate() {
            for &y in &nodes[a + 1..] {
                if !peg.graph.refs_disjoint(x, y) {
                    conflict = true;
                    break 'outer;
                }
            }
        }
        if conflict {
            continue;
        }
        let prn = peg.prn(&nodes);
        if prle * prn + 1e-12 >= alpha && prn > 0.0 {
            out.push(Match { nodes, prle, prn });
        }
    }
    sort_matches(&mut out);
    Ok(out)
}

fn bfs_order(query: &QueryGraph) -> Vec<QNode> {
    let n = query.n_nodes();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0 as QNode);
    seen[0] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in query.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::Label;
    use pegmatch::matcher::match_bruteforce;
    use pegmatch::model::peg::{figure1_refgraph, PegBuilder};

    #[test]
    fn figure1_baseline_agrees_with_bruteforce() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let tables = tables_from_peg(&peg);
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        for alpha in [0.01, 0.05, 0.1, 0.2, 0.5] {
            let got = run_relational_baseline(&peg, &tables, &q, alpha, u64::MAX).unwrap();
            let want = match_bruteforce(&peg, &q, alpha);
            assert_eq!(got.len(), want.len(), "alpha = {alpha}");
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.nodes, y.nodes);
                assert!((x.prob() - y.prob()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tiny_budget_reports_nontermination() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let tables = tables_from_peg(&peg);
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let err = run_relational_baseline(&peg, &tables, &q, 0.05, 3).unwrap_err();
        assert!(matches!(err, RelError::BudgetExceeded { .. }));
    }

    #[test]
    fn table_shapes() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let t = tables_from_peg(&peg);
        // 5 entities; supports: s1 has 2 labels, s2/s3/s4 have 1, s34 has 2.
        assert_eq!(t.nodes.len(), 7);
        // 4 undirected PEG edges, both directions, label combos.
        assert!(t.edges.len() >= 8);
        // Conflicts: (s3,s34) and (s4,s34), both orders.
        assert_eq!(t.conflicts.len(), 4);
    }
}
