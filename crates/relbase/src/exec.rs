//! Volcano-style operators with a global row budget.
//!
//! Every row an operator produces ticks the [`ExecContext`] budget; plans
//! whose intermediate results explode (the fate of the paper's SQL baseline)
//! fail fast with [`RelError::BudgetExceeded`] instead of running for a
//! month.

use crate::expr::Expr;
use crate::table::Table;
use crate::{RelError, Result, Row};
use std::collections::HashMap;

/// Shared execution state: the row budget.
#[derive(Clone, Copy, Debug)]
pub struct ExecContext {
    budget: u64,
    produced: u64,
}

impl ExecContext {
    /// A context that aborts after `budget` produced rows (across all
    /// operators in the plan).
    pub fn with_budget(budget: u64) -> Self {
        Self { budget, produced: 0 }
    }

    /// No budget.
    pub fn unlimited() -> Self {
        Self { budget: u64::MAX, produced: 0 }
    }

    /// Rows produced so far.
    pub fn rows_produced(&self) -> u64 {
        self.produced
    }

    fn tick(&mut self) -> Result<()> {
        self.produced += 1;
        if self.produced > self.budget {
            Err(RelError::BudgetExceeded { budget: self.budget })
        } else {
            Ok(())
        }
    }
}

/// A pull-based operator.
pub trait Operator {
    /// Produces the next row, or `None` when exhausted.
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>>;
}

impl Operator for Box<dyn Operator + '_> {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        (**self).next(ctx)
    }
}

/// Drains an operator into a vector.
pub fn collect(mut op: impl Operator, ctx: &mut ExecContext) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = op.next(ctx)? {
        out.push(row);
    }
    Ok(out)
}

/// Full table scan.
pub struct Scan<'a> {
    table: &'a Table,
    pos: usize,
}

impl<'a> Scan<'a> {
    /// Scans `table`.
    pub fn new(table: &'a Table) -> Self {
        Self { table, pos: 0 }
    }
}

impl Operator for Scan<'_> {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        if self.pos >= self.table.len() {
            return Ok(None);
        }
        let row = self.table.rows()[self.pos].clone();
        self.pos += 1;
        ctx.tick()?;
        Ok(Some(row))
    }
}

/// Predicate filter.
pub struct Filter<Op> {
    input: Op,
    pred: Expr,
}

impl<Op: Operator> Filter<Op> {
    /// Keeps rows where `pred` evaluates to true.
    pub fn new(input: Op, pred: Expr) -> Self {
        Self { input, pred }
    }
}

impl<Op: Operator> Operator for Filter<Op> {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(ctx)? {
            if self.pred.eval(&row).as_bool() {
                ctx.tick()?;
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Expression projection.
pub struct Project<Op> {
    input: Op,
    exprs: Vec<Expr>,
}

impl<Op: Operator> Project<Op> {
    /// Emits one output column per expression.
    pub fn new(input: Op, exprs: Vec<Expr>) -> Self {
        Self { input, exprs }
    }
}

impl<Op: Operator> Operator for Project<Op> {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        match self.input.next(ctx)? {
            None => Ok(None),
            Some(row) => {
                let out: Row = self.exprs.iter().map(|e| e.eval(&row)).collect();
                ctx.tick()?;
                Ok(Some(out))
            }
        }
    }
}

/// Hash equi-join on integer key columns. The right side is built into a
/// hash table on first pull; output rows are `left ++ right`.
pub struct HashJoin<L, R> {
    left: L,
    right: Option<R>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    table: HashMap<Vec<i64>, Vec<Row>>,
    current_left: Option<Row>,
    current_matches: Vec<Row>,
    match_pos: usize,
}

impl<L: Operator, R: Operator> HashJoin<L, R> {
    /// Joins on `left_keys[i] = right_keys[i]` (integer columns).
    pub fn new(left: L, right: R, left_keys: Vec<usize>, right_keys: Vec<usize>) -> Self {
        assert_eq!(left_keys.len(), right_keys.len());
        Self {
            left,
            right: Some(right),
            left_keys,
            right_keys,
            table: HashMap::new(),
            current_left: None,
            current_matches: Vec::new(),
            match_pos: 0,
        }
    }

    fn build(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if let Some(mut right) = self.right.take() {
            while let Some(row) = right.next(ctx)? {
                let key: Vec<i64> = self.right_keys.iter().map(|&k| row[k].as_int()).collect();
                self.table.entry(key).or_default().push(row);
            }
        }
        Ok(())
    }
}

impl<L: Operator, R: Operator> Operator for HashJoin<L, R> {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        self.build(ctx)?;
        loop {
            if self.match_pos < self.current_matches.len() {
                let left = self.current_left.as_ref().expect("left row present");
                let mut out = left.clone();
                out.extend(self.current_matches[self.match_pos].iter().copied());
                self.match_pos += 1;
                ctx.tick()?;
                return Ok(Some(out));
            }
            match self.left.next(ctx)? {
                None => return Ok(None),
                Some(row) => {
                    let key: Vec<i64> = self.left_keys.iter().map(|&k| row[k].as_int()).collect();
                    self.current_matches = self.table.get(&key).cloned().unwrap_or_default();
                    self.current_left = Some(row);
                    self.match_pos = 0;
                }
            }
        }
    }
}

/// Nested-loop join with an arbitrary predicate over `left ++ right`.
/// Materializes the right side.
pub struct NestedLoopJoin<L> {
    left: L,
    right_rows: Vec<Row>,
    built: bool,
    pred: Expr,
    current_left: Option<Row>,
    right_pos: usize,
}

impl<L: Operator> NestedLoopJoin<L> {
    /// Joins `left` with a materialized `right` under `pred`.
    pub fn new(left: L, right: impl Operator, pred: Expr, ctx: &mut ExecContext) -> Result<Self> {
        let right_rows = collect(right, ctx)?;
        Ok(Self { left, right_rows, built: true, pred, current_left: None, right_pos: 0 })
    }
}

impl<L: Operator> Operator for NestedLoopJoin<L> {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        debug_assert!(self.built);
        loop {
            if self.current_left.is_none() {
                match self.left.next(ctx)? {
                    None => return Ok(None),
                    Some(row) => {
                        self.current_left = Some(row);
                        self.right_pos = 0;
                    }
                }
            }
            let left = self.current_left.as_ref().unwrap();
            while self.right_pos < self.right_rows.len() {
                let right = &self.right_rows[self.right_pos];
                self.right_pos += 1;
                let mut out = left.clone();
                out.extend(right.iter().copied());
                if self.pred.eval(&out).as_bool() {
                    ctx.tick()?;
                    return Ok(Some(out));
                }
            }
            self.current_left = None;
        }
    }
}

/// Materialized-input operator (replays a vector of rows).
pub struct Rows {
    rows: Vec<Row>,
    pos: usize,
}

impl Rows {
    /// Replays `rows`.
    pub fn new(rows: Vec<Row>) -> Self {
        Self { rows, pos: 0 }
    }
}

impl Operator for Rows {
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let row = self.rows[self.pos].clone();
        self.pos += 1;
        ctx.tick()?;
        Ok(Some(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Schema};
    use crate::Value;

    fn people() -> Table {
        let mut t = Table::new(Schema::new(vec![Column::int("id"), Column::int("dept")]));
        for (id, dept) in [(1, 10), (2, 10), (3, 20)] {
            t.push(vec![Value::Int(id), Value::Int(dept)]).unwrap();
        }
        t
    }

    fn depts() -> Table {
        let mut t = Table::new(Schema::new(vec![Column::int("dept"), Column::float("budget")]));
        for (d, b) in [(10, 1.5), (20, 2.5), (30, 0.5)] {
            t.push(vec![Value::Int(d), Value::Float(b)]).unwrap();
        }
        t
    }

    #[test]
    fn scan_filter_project() {
        let t = people();
        let mut ctx = ExecContext::unlimited();
        let plan = Project::new(
            Filter::new(Scan::new(&t), Expr::eq(Expr::col(1), Expr::lit_i(10))),
            vec![Expr::col(0)],
        );
        let rows = collect(plan, &mut ctx).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let p = people();
        let d = depts();
        let mut ctx = ExecContext::unlimited();
        let hj = HashJoin::new(Scan::new(&p), Scan::new(&d), vec![1], vec![0]);
        let mut hj_rows = collect(hj, &mut ctx).unwrap();

        let mut ctx2 = ExecContext::unlimited();
        let nl = NestedLoopJoin::new(
            Scan::new(&p),
            Scan::new(&d),
            Expr::eq(Expr::col(1), Expr::col(2)),
            &mut ctx2,
        )
        .unwrap();
        let mut nl_rows = collect(nl, &mut ctx2).unwrap();
        let key = |r: &Row| (r[0].as_int(), r[2].as_int());
        hj_rows.sort_by_key(key);
        nl_rows.sort_by_key(key);
        assert_eq!(hj_rows, nl_rows);
        assert_eq!(hj_rows.len(), 3);
    }

    #[test]
    fn hash_join_multi_key() {
        let mut a = Table::new(Schema::new(vec![Column::int("x"), Column::int("y")]));
        let mut b = Table::new(Schema::new(vec![Column::int("x"), Column::int("y")]));
        for t in [&mut a, &mut b] {
            t.push(vec![Value::Int(1), Value::Int(2)]).unwrap();
            t.push(vec![Value::Int(1), Value::Int(3)]).unwrap();
        }
        let mut ctx = ExecContext::unlimited();
        let hj = HashJoin::new(Scan::new(&a), Scan::new(&b), vec![0, 1], vec![0, 1]);
        let rows = collect(hj, &mut ctx).unwrap();
        assert_eq!(rows.len(), 2); // Only exact (x, y) pairs join.
    }

    #[test]
    fn budget_aborts_cross_products() {
        let p = people();
        let d = depts();
        let mut ctx = ExecContext::with_budget(5);
        // Cross product: 9 combined rows + scan rows blows a budget of 5.
        let nl = NestedLoopJoin::new(Scan::new(&p), Scan::new(&d), Expr::and_all(vec![]), &mut ctx)
            .unwrap();
        let err = collect(nl, &mut ctx).unwrap_err();
        assert!(matches!(err, RelError::BudgetExceeded { budget: 5 }));
    }

    #[test]
    fn rows_operator_replays() {
        let mut ctx = ExecContext::unlimited();
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let got = collect(Rows::new(rows.clone()), &mut ctx).unwrap();
        assert_eq!(got, rows);
    }
}
