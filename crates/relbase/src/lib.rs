#![warn(missing_docs)]

//! `relbase` — a small relational query engine.
//!
//! The paper compares its matcher against a SQL implementation on MySQL
//! (which "never finishes in a month" on a q(5,7) query over the 100k
//! dataset). This crate is that baseline's substrate, built from scratch:
//! typed in-memory tables, an expression AST, and Volcano-style iterators
//! (scan → filter → hash join → nested-loop join → project) with a row
//! budget that turns runaway join plans into a clean
//! [`RelError::BudgetExceeded`] instead of a month of wall clock.
//!
//! [`subgraph`] translates a `pegmatch` query into the join plan the paper's
//! SQL formulation implies: one self-join of the edge table per query edge,
//! node-label probability joins, injectivity and reference-conflict
//! anti-join predicates, and a final probability-threshold filter.
//!
//! # Example
//!
//! ```
//! use relbase::{Column, Expr, Schema, Table, Value};
//! use relbase::exec::{ExecContext, Filter, Scan};
//!
//! let schema = Schema::new(vec![Column::int("id"), Column::float("p")]);
//! let mut t = Table::new(schema);
//! t.push(vec![Value::Int(1), Value::Float(0.9)]).unwrap();
//! t.push(vec![Value::Int(2), Value::Float(0.4)]).unwrap();
//! let mut ctx = ExecContext::unlimited();
//! let plan = Filter::new(
//!     Scan::new(&t),
//!     Expr::ge(Expr::col(1), Expr::lit_f(0.5)),
//! );
//! let rows = relbase::exec::collect(plan, &mut ctx).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod exec;
mod expr;
pub mod subgraph;
mod table;

pub use expr::Expr;
pub use table::{Column, ColumnType, Schema, Table};

/// A single cell value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean (produced by predicates).
    Bool(bool),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    /// Panics when the value is not an `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// The float payload (ints widen).
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected numeric, got {other:?}"),
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected Bool, got {other:?}"),
        }
    }
}

/// A materialized row.
pub type Row = Vec<Value>;

/// Errors raised by the engine.
#[derive(Clone, Debug, PartialEq)]
pub enum RelError {
    /// Row mismatch against a table schema.
    Schema(String),
    /// The execution context's row budget was exhausted — the engine's
    /// stand-in for "the SQL query never finishes".
    BudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::Schema(m) => write!(f, "schema error: {m}"),
            RelError::BudgetExceeded { budget } => {
                write!(f, "row budget of {budget} exceeded (query would not finish)")
            }
        }
    }
}

impl std::error::Error for RelError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, RelError>;
