//! Expression AST evaluated against rows.

use crate::{Row, Value};

/// A scalar expression over a row.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference by output position.
    Col(usize),
    /// Integer literal.
    LitI(i64),
    /// Float literal.
    LitF(f64),
    /// Equality (ints compare exactly, mixed numerics as floats).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Less-than (numeric).
    Lt(Box<Expr>, Box<Expr>),
    /// Less-or-equal (numeric).
    Le(Box<Expr>, Box<Expr>),
    /// Greater-than (numeric).
    Gt(Box<Expr>, Box<Expr>),
    /// Greater-or-equal (numeric).
    Ge(Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Float multiplication (probability products).
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Integer literal.
    pub fn lit_i(v: i64) -> Expr {
        Expr::LitI(v)
    }

    /// Float literal.
    pub fn lit_f(v: f64) -> Expr {
        Expr::LitF(v)
    }

    /// `a = b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// `a ≠ b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::Ne(Box::new(a), Box::new(b))
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Lt(Box::new(a), Box::new(b))
    }

    /// `a ≤ b`.
    pub fn le(a: Expr, b: Expr) -> Expr {
        Expr::Le(Box::new(a), Box::new(b))
    }

    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::Gt(Box::new(a), Box::new(b))
    }

    /// `a ≥ b`.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::Ge(Box::new(a), Box::new(b))
    }

    /// `a ∧ b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// `a ∨ b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// `¬a`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }

    /// `a · b` (floats).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Folds a conjunction of many predicates (`true` when empty).
    pub fn and_all(mut preds: Vec<Expr>) -> Expr {
        match preds.len() {
            0 => Expr::Eq(Box::new(Expr::LitI(1)), Box::new(Expr::LitI(1))),
            1 => preds.pop().unwrap(),
            _ => {
                let first = preds.remove(0);
                preds.into_iter().fold(first, Expr::and)
            }
        }
    }

    /// Folds a product of many float expressions (`1.0` when empty).
    pub fn mul_all(mut factors: Vec<Expr>) -> Expr {
        match factors.len() {
            0 => Expr::LitF(1.0),
            1 => factors.pop().unwrap(),
            _ => {
                let first = factors.remove(0);
                factors.into_iter().fold(first, Expr::mul)
            }
        }
    }

    /// Evaluates against a row.
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            Expr::Col(i) => row[*i],
            Expr::LitI(v) => Value::Int(*v),
            Expr::LitF(v) => Value::Float(*v),
            Expr::Eq(a, b) => Value::Bool(cmp_eq(a.eval(row), b.eval(row))),
            Expr::Ne(a, b) => Value::Bool(!cmp_eq(a.eval(row), b.eval(row))),
            Expr::Lt(a, b) => Value::Bool(a.eval(row).as_float() < b.eval(row).as_float()),
            Expr::Le(a, b) => Value::Bool(a.eval(row).as_float() <= b.eval(row).as_float()),
            Expr::Gt(a, b) => Value::Bool(a.eval(row).as_float() > b.eval(row).as_float()),
            Expr::Ge(a, b) => Value::Bool(a.eval(row).as_float() >= b.eval(row).as_float()),
            Expr::And(a, b) => Value::Bool(a.eval(row).as_bool() && b.eval(row).as_bool()),
            Expr::Or(a, b) => Value::Bool(a.eval(row).as_bool() || b.eval(row).as_bool()),
            Expr::Not(a) => Value::Bool(!a.eval(row).as_bool()),
            Expr::Mul(a, b) => Value::Float(a.eval(row).as_float() * b.eval(row).as_float()),
        }
    }
}

fn cmp_eq(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => a.as_float() == b.as_float(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_comparison() {
        let row = vec![Value::Int(3), Value::Float(0.5)];
        assert_eq!(Expr::col(0).eval(&row), Value::Int(3));
        assert!(Expr::eq(Expr::col(0), Expr::lit_i(3)).eval(&row).as_bool());
        assert!(Expr::ne(Expr::col(0), Expr::lit_i(4)).eval(&row).as_bool());
        assert!(Expr::lt(Expr::col(1), Expr::lit_f(0.6)).eval(&row).as_bool());
        assert!(Expr::ge(Expr::col(0), Expr::lit_f(3.0)).eval(&row).as_bool());
        let p = Expr::mul(Expr::col(1), Expr::lit_f(0.5)).eval(&row);
        assert_eq!(p, Value::Float(0.25));
    }

    #[test]
    fn boolean_composition() {
        let row = vec![Value::Int(1)];
        let t = Expr::eq(Expr::col(0), Expr::lit_i(1));
        let f = Expr::eq(Expr::col(0), Expr::lit_i(2));
        assert!(Expr::and(t.clone(), Expr::not(f.clone())).eval(&row).as_bool());
        assert!(Expr::or(f.clone(), t.clone()).eval(&row).as_bool());
        assert!(!Expr::and(t, f).eval(&row).as_bool());
    }

    #[test]
    fn folds() {
        let row: Row = vec![];
        assert!(Expr::and_all(vec![]).eval(&row).as_bool());
        assert_eq!(Expr::mul_all(vec![]).eval(&row), Value::Float(1.0));
        let p = Expr::mul_all(vec![Expr::lit_f(0.5), Expr::lit_f(0.5), Expr::lit_f(2.0)]);
        assert_eq!(p.eval(&row), Value::Float(0.5));
    }

    #[test]
    fn mixed_numeric_equality() {
        let row = vec![Value::Int(2), Value::Float(2.0)];
        assert!(Expr::eq(Expr::col(0), Expr::col(1)).eval(&row).as_bool());
    }
}
