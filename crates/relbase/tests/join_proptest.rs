//! Property tests for the relational engine: hash join must agree with
//! nested-loop join on random tables, and filters must commute with joins.

use proptest::prelude::*;
use relbase::exec::{collect, ExecContext, Filter, HashJoin, NestedLoopJoin, Scan};
use relbase::{Column, Expr, Row, Schema, Table, Value};

fn table_strategy(cols: usize, key_range: i64) -> impl Strategy<Value = Vec<Vec<i64>>> {
    proptest::collection::vec(proptest::collection::vec(0..key_range, cols), 0..24)
}

fn materialize(rows: &[Vec<i64>], cols: usize) -> Table {
    let schema = Schema::new((0..cols).map(|i| Column::int(&format!("c{i}"))).collect());
    let mut t = Table::new(schema);
    for r in rows {
        t.push(r.iter().map(|&v| Value::Int(v)).collect()).unwrap();
    }
    t
}

fn sort_rows(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by_key(|r| r.iter().map(|v| v.as_int()).collect::<Vec<_>>());
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn hash_join_equals_nested_loop(
        left in table_strategy(2, 5),
        right in table_strategy(2, 5),
    ) {
        let lt = materialize(&left, 2);
        let rt = materialize(&right, 2);

        let mut ctx = ExecContext::unlimited();
        let hj = HashJoin::new(Scan::new(&lt), Scan::new(&rt), vec![1], vec![0]);
        let hj_rows = sort_rows(collect(hj, &mut ctx).unwrap());

        let mut ctx2 = ExecContext::unlimited();
        let nl = NestedLoopJoin::new(
            Scan::new(&lt),
            Scan::new(&rt),
            Expr::eq(Expr::col(1), Expr::col(2)),
            &mut ctx2,
        )
        .unwrap();
        let nl_rows = sort_rows(collect(nl, &mut ctx2).unwrap());
        prop_assert_eq!(hj_rows, nl_rows);
    }

    #[test]
    fn filter_pushdown_is_equivalent(
        left in table_strategy(2, 4),
        right in table_strategy(2, 4),
        threshold in 0i64..4,
    ) {
        let lt = materialize(&left, 2);
        let rt = materialize(&right, 2);
        // Filter after join...
        let mut ctx = ExecContext::unlimited();
        let joined = HashJoin::new(Scan::new(&lt), Scan::new(&rt), vec![0], vec![0]);
        let after = Filter::new(joined, Expr::ge(Expr::col(1), Expr::lit_i(threshold)));
        let a = sort_rows(collect(after, &mut ctx).unwrap());
        // ...equals filter on the left input before the join.
        let mut ctx2 = ExecContext::unlimited();
        let filtered_left =
            Filter::new(Scan::new(&lt), Expr::ge(Expr::col(1), Expr::lit_i(threshold)));
        let pushed = HashJoin::new(filtered_left, Scan::new(&rt), vec![0], vec![0]);
        let b = sort_rows(collect(pushed, &mut ctx2).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn join_row_count_matches_key_multiplicity(
        left in table_strategy(1, 4),
        right in table_strategy(1, 4),
    ) {
        let lt = materialize(&left, 1);
        let rt = materialize(&right, 1);
        let mut ctx = ExecContext::unlimited();
        let hj = HashJoin::new(Scan::new(&lt), Scan::new(&rt), vec![0], vec![0]);
        let rows = collect(hj, &mut ctx).unwrap();
        let expected: usize = (0..4i64)
            .map(|k| {
                let l = left.iter().filter(|r| r[0] == k).count();
                let r = right.iter().filter(|r| r[0] == k).count();
                l * r
            })
            .sum();
        prop_assert_eq!(rows.len(), expected);
    }
}
