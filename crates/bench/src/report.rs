//! Plain-text table rendering for experiment output.

use std::time::Duration;

/// Formats a duration with adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{:.1}min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Formats a `log10` search-space value (handles the empty case).
pub fn fmt_log10(v: f64) -> String {
    if v == f64::NEG_INFINITY {
        "empty".to_string()
    } else {
        format!("1e{v:.1}")
    }
}

/// A minimal fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:<w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_secs(120)), "2.0min");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.50s");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(fmt_duration(Duration::from_nanos(900)), "0.9us");
    }

    #[test]
    fn log10_formatting() {
        assert_eq!(fmt_log10(f64::NEG_INFINITY), "empty");
        assert_eq!(fmt_log10(3.25), "1e3.2");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
