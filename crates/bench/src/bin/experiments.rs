//! Regenerates every table/figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p bench --release --bin experiments -- all --scale tiny
//! cargo run -p bench --release --bin experiments -- fig6c --scale small
//! ```
//!
//! Experiments: fig6a fig6b fig6c fig6d fig6e fig6f fig7a fig7b fig7c fig7d
//! fig7e fig7f fig7g fig7h sql ablation-gamma ablation-backend
//! ablation-parallel ablation-threads ablation-query-threads
//! ablation-montecarlo ablation-plan-cache ablation-exec-cache
//! ablation-mutation ablation-shards ablation-transport ablation-trace
//! ablation-reduction serving-mix saturation all
//!
//! `--test` is shorthand for `--scale tiny` (the CI smoke mode).
//! `saturation`, `ablation-exec-cache`, `ablation-mutation`,
//! `ablation-trace`, and `ablation-reduction` additionally write their
//! machine-readable results to `BENCH_saturation.json` /
//! `BENCH_exec_cache.json` / `BENCH_mutation.json` / `BENCH_trace.json` /
//! `BENCH_reduction.json` in the working directory.

use bench::{fmt_duration, fmt_log10, Scale, Table, Workload};
use datagen::{
    dblp_like, imdb_like, pattern_query, random_query, DblpConfig, ImdbConfig, Pattern, QuerySpec,
};
use pathindex::PathIndexConfig;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegmatch::query::QueryGraph;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = Scale::Small;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(|s| s.as_str()).unwrap_or(""))
                    .expect("--scale tiny|small|paper");
            }
            "--test" => scale = Scale::Tiny,
            name => which = name.to_string(),
        }
        i += 1;
    }
    let all = which == "all";
    let run = |name: &str| all || which == name;

    println!("# pegmatch experiments — scale: {scale:?}\n");
    if run("fig6a") || run("fig6b") {
        fig6ab(scale);
    }
    if run("fig6c") {
        fig6c(scale);
    }
    if run("fig6d") {
        fig6d(scale);
    }
    if run("fig6e") {
        fig6ef(scale, &[(5, 5), (5, 9)], "fig6e");
    }
    if run("fig6f") {
        fig6ef(scale, &[(10, 20), (10, 40)], "fig6f");
    }
    if run("fig7a") {
        fig7ab(scale, &[(5, 5), (5, 9)], "fig7a");
    }
    if run("fig7b") {
        fig7ab(scale, &[(10, 20), (10, 40)], "fig7b");
    }
    if run("fig7c") {
        fig7cd(scale, &[(5, 5), (5, 9)], "fig7c");
    }
    if run("fig7d") {
        fig7cd(scale, &[(10, 20), (10, 40)], "fig7d");
    }
    if run("fig7e") {
        fig7e(scale);
    }
    if run("fig7f") {
        fig7f(scale);
    }
    if run("fig7g") {
        fig7g(scale);
    }
    if run("fig7h") {
        fig7h(scale);
    }
    if run("sql") {
        sql_baseline(scale);
    }
    if run("ablation-gamma") {
        ablation_gamma(scale);
    }
    if run("ablation-backend") {
        ablation_backend(scale);
    }
    if run("ablation-parallel") {
        ablation_parallel(scale);
    }
    if run("ablation-threads") {
        ablation_threads(scale);
    }
    if run("ablation-query-threads") {
        ablation_query_threads(scale);
    }
    if run("ablation-montecarlo") {
        ablation_montecarlo(scale);
    }
    if run("ablation-plan-cache") {
        ablation_plan_cache(scale);
    }
    if run("ablation-exec-cache") {
        ablation_exec_cache(scale);
    }
    if run("ablation-mutation") {
        ablation_mutation(scale);
    }
    if run("ablation-shards") {
        ablation_shards(scale);
    }
    if run("ablation-transport") {
        ablation_transport(scale);
    }
    if run("ablation-trace") {
        ablation_trace(scale);
    }
    if run("ablation-reduction") {
        ablation_reduction(scale);
    }
    if run("serving-mix") {
        serving_mix(scale);
    }
    if run("saturation") {
        saturation(scale);
    }
}

/// Average online time over `seeds` random queries of the given spec.
fn time_queries(
    peg: &pegmatch::Peg,
    index: &OfflineIndex,
    spec: QuerySpec,
    alpha: f64,
    opts: &QueryOptions,
    seeds: std::ops::Range<u64>,
) -> (Duration, usize) {
    let pipe = QueryPipeline::new(peg, index);
    let n_labels = peg.graph.label_table().len();
    let mut total = Duration::ZERO;
    let mut matches = 0usize;
    let mut n = 0u32;
    for seed in seeds {
        let q = random_query(spec, n_labels, seed);
        let t = Instant::now();
        let res = pipe.run(&q, alpha, opts).expect("query runs");
        total += t.elapsed();
        matches += res.matches.len();
        n += 1;
    }
    (total / n.max(1), matches)
}

/// Figures 6(a)/(b): offline running time and index size over (β, size, L).
fn fig6ab(scale: Scale) {
    println!("## Figure 6(a): offline phase running time / 6(b): index size");
    let mut t =
        Table::new(&["refs", "beta", "L", "offline time", "entries", "mem bytes", "disk bytes"]);
    for &n in &scale.graph_sizes() {
        let refs = datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper(n));
        let peg = pegmatch::model::PegBuilder::new().build(&refs).unwrap();
        for beta in [0.9, 0.7, 0.5, 0.3] {
            for l in 1..=scale.max_l() {
                let t0 = Instant::now();
                let opts = OfflineOptions {
                    index: PathIndexConfig { max_len: l, beta, ..Default::default() },
                };
                let idx = OfflineIndex::build(&peg, &opts).unwrap();
                let elapsed = t0.elapsed();
                // Disk size: persist into a BTreeStore file.
                let mut path = std::env::temp_dir();
                path.push(format!("pegmatch-fig6b-{n}-{l}-{}", (beta * 10.0) as u32));
                let disk_bytes = {
                    let mut store = kvstore::BTreeStore::create(&path).unwrap();
                    pathindex::disk::save_index(&idx.paths, &mut store).unwrap();
                    store.flush().unwrap();
                    store.file_len()
                };
                std::fs::remove_file(&path).ok();
                t.row(vec![
                    n.to_string(),
                    format!("{beta}"),
                    l.to_string(),
                    fmt_duration(elapsed),
                    idx.paths.n_entries().to_string(),
                    idx.paths.approx_bytes().to_string(),
                    disk_bytes.to_string(),
                ]);
            }
        }
    }
    t.print();
    println!();
}

/// Figure 6(c): online time vs query size.
fn fig6c(scale: Scale) {
    println!("## Figure 6(c): online time vs query size (alpha=0.7)");
    let w = Workload::synthetic(scale.default_graph(), 0.2, 0.3, scale.max_l());
    let mut t = Table::new(&["query", "OptL1", "OptL2", "OptL3", "NoSS L3", "RandDecomp L3"]);
    for (n, m) in bench::workloads::fig6c_query_sizes() {
        let spec = QuerySpec::new(n, m);
        let mut cells = vec![format!("q({n},{m})")];
        for l in 1..=3 {
            let (d, _) =
                time_queries(&w.peg, w.index(l), spec, 0.7, &QueryOptions::default(), 0..5);
            cells.push(fmt_duration(d));
        }
        let (d, _) =
            time_queries(&w.peg, w.index(3), spec, 0.7, &QueryOptions::no_reduction(), 0..5);
        cells.push(fmt_duration(d));
        let (d, _) = time_queries(
            &w.peg,
            w.index(3),
            spec,
            0.7,
            &QueryOptions::random_decomposition(1),
            0..5,
        );
        cells.push(fmt_duration(d));
        t.row(cells);
    }
    t.print();
    println!();
}

/// Figure 6(d): online time vs query density.
fn fig6d(scale: Scale) {
    println!("## Figure 6(d): online time vs query density (15 nodes, alpha=0.7)");
    let w = Workload::synthetic(scale.default_graph(), 0.2, 0.3, scale.max_l());
    let mut t = Table::new(&["query", "OptL1", "OptL2", "OptL3", "NoSS L3", "RandDecomp L3"]);
    for (n, m) in bench::workloads::fig6d_query_sizes() {
        let spec = QuerySpec::new(n, m);
        let mut cells = vec![format!("q({n},{m})")];
        for l in 1..=3 {
            let (d, _) =
                time_queries(&w.peg, w.index(l), spec, 0.7, &QueryOptions::default(), 0..5);
            cells.push(fmt_duration(d));
        }
        let (d, _) =
            time_queries(&w.peg, w.index(3), spec, 0.7, &QueryOptions::no_reduction(), 0..5);
        cells.push(fmt_duration(d));
        let (d, _) = time_queries(
            &w.peg,
            w.index(3),
            spec,
            0.7,
            &QueryOptions::random_decomposition(1),
            0..5,
        );
        cells.push(fmt_duration(d));
        t.row(cells);
    }
    t.print();
    println!();
}

/// Figures 6(e)/(f): online time vs degree of uncertainty.
fn fig6ef(scale: Scale, specs: &[(usize, usize)], name: &str) {
    println!("## Figure {name}: online time vs degree of uncertainty (alpha=0.7)");
    let mut header = vec!["uncertainty".to_string()];
    for (n, m) in specs {
        for l in 1..=3 {
            header.push(format!("L{l} q({n},{m})"));
        }
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    for u in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let w = Workload::synthetic(scale.default_graph(), u, 0.3, 3);
        let mut cells = vec![format!("{:.0}%", u * 100.0)];
        for &(n, m) in specs {
            for l in 1..=3 {
                let (d, _) = time_queries(
                    &w.peg,
                    w.index(l),
                    QuerySpec::new(n, m),
                    0.7,
                    &QueryOptions::default(),
                    0..5,
                );
                cells.push(fmt_duration(d));
            }
        }
        t.row(cells);
    }
    t.print();
    println!();
}

/// Figures 7(a)/(b): online time vs graph size.
fn fig7ab(scale: Scale, specs: &[(usize, usize)], name: &str) {
    println!("## Figure {name}: online time vs graph size (alpha=0.7)");
    let mut header = vec!["refs".to_string()];
    for (n, m) in specs {
        for l in 1..=3 {
            header.push(format!("L{l} q({n},{m})"));
        }
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    for &size in &scale.graph_sizes() {
        let w = Workload::synthetic(size, 0.2, 0.3, 3);
        let mut cells = vec![size.to_string()];
        for &(n, m) in specs {
            for l in 1..=3 {
                let (d, _) = time_queries(
                    &w.peg,
                    w.index(l),
                    QuerySpec::new(n, m),
                    0.7,
                    &QueryOptions::default(),
                    0..5,
                );
                cells.push(fmt_duration(d));
            }
        }
        t.row(cells);
    }
    t.print();
    println!();
}

/// Figures 7(c)/(d): online time vs query threshold.
fn fig7cd(scale: Scale, specs: &[(usize, usize)], name: &str) {
    println!("## Figure {name}: online time vs query threshold");
    let w = Workload::synthetic(scale.default_graph(), 0.2, 0.3, 3);
    let mut header = vec!["alpha".to_string()];
    for (n, m) in specs {
        for l in 1..=3 {
            header.push(format!("L{l} q({n},{m})"));
        }
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    for alpha in [0.3, 0.5, 0.7, 0.9] {
        let mut cells = vec![format!("{alpha}")];
        for &(n, m) in specs {
            for l in 1..=3 {
                let (d, _) = time_queries(
                    &w.peg,
                    w.index(l),
                    QuerySpec::new(n, m),
                    alpha,
                    &QueryOptions::default(),
                    0..5,
                );
                cells.push(fmt_duration(d));
            }
        }
        t.row(cells);
    }
    t.print();
    println!();
}

/// Figure 7(e): search-space progression through pruning steps.
fn fig7e(scale: Scale) {
    println!("## Figure 7(e): search space progression, q(5,7), alpha=0.7");
    let mut t = Table::new(&["uncertainty", "L", "Path", "Path+Context", "Final"]);
    for u in [0.2, 0.8] {
        let w = Workload::synthetic(scale.default_graph(), u, 0.3, 3);
        for l in 1..=3 {
            let pipe = QueryPipeline::new(&w.peg, w.index(l));
            // Average log10 sizes over 5 random q(5,7) queries.
            let (mut p, mut c, mut f) = (0.0f64, 0.0f64, 0.0f64);
            let mut counted = 0usize;
            for seed in 0..5 {
                let q = random_query(QuerySpec::new(5, 7), w.peg.graph.label_table().len(), seed);
                let res = pipe.run(&q, 0.7, &QueryOptions::default()).unwrap();
                if res.stats.log10_ss_index.is_finite() {
                    p += res.stats.log10_ss_index;
                    c += res.stats.log10_ss_context.max(0.0);
                    f += res.stats.log10_ss_final.max(0.0);
                    counted += 1;
                }
            }
            let k = counted.max(1) as f64;
            t.row(vec![
                format!("{:.0}%", u * 100.0),
                l.to_string(),
                fmt_log10(p / k),
                fmt_log10(c / k),
                fmt_log10(f / k),
            ]);
        }
    }
    t.print();
    println!();
}

/// Figure 7(f): reduction by structure vs upper bounds.
fn fig7f(scale: Scale) {
    println!("## Figure 7(f): ST vs UP reduction, 5-cycle query, alpha=0.1");
    let mut t = Table::new(&["uncertainty", "L", "log10 ST reduction", "log10 UP reduction"]);
    for u in [0.2, 0.4, 0.6, 0.8] {
        let w = Workload::synthetic(scale.default_graph(), u, 0.05, 3);
        for l in 1..=3 {
            let pipe = QueryPipeline::new(&w.peg, w.index(l));
            let n_labels = w.peg.graph.label_table().len();
            let (mut st, mut up) = (0.0f64, 0.0f64);
            let mut counted = 0usize;
            for seed in 0..5 {
                // A 5-cycle with random labels.
                let labels: Vec<graphstore::Label> = (0..5)
                    .map(|k| {
                        let q = random_query(QuerySpec::new(1, 0), n_labels, seed * 31 + k);
                        q.label(0)
                    })
                    .collect();
                let q = QueryGraph::cycle(&labels).unwrap();
                let res = pipe.run(&q, 0.1, &QueryOptions::default()).unwrap();
                let s = &res.stats;
                if s.log10_ss_context.is_finite() {
                    st += (s.log10_ss_after_structure - s.log10_ss_context).max(-12.0);
                    up += (s.log10_ss_final - s.log10_ss_context).max(-12.0);
                    counted += 1;
                }
            }
            let k = counted.max(1) as f64;
            t.row(vec![
                format!("{:.0}%", u * 100.0),
                l.to_string(),
                format!("{:.2}", st / k),
                format!("{:.2}", up / k),
            ]);
        }
    }
    t.print();
    println!();
}

/// Figure 7(g): DBLP-like pattern queries (correlated edges).
fn fig7g(scale: Scale) {
    println!("## Figure 7(g): DBLP-like pattern queries, alpha=0.1");
    let n = match scale {
        Scale::Tiny => 2_000,
        Scale::Small => 5_000,
        Scale::Paper => 16_800,
    };
    let refs = dblp_like(&DblpConfig::scaled(n));
    let w = Workload::from_refgraph(&refs, 0.05, 3);
    let lt = w.peg.graph.label_table();
    let (d, m, s) = (lt.get("D").unwrap(), lt.get("M").unwrap(), lt.get("S").unwrap());
    let mut t = Table::new(&["query", "L1", "L2", "L3", "matches(L3)"]);
    for p in Pattern::ALL {
        let q = pattern_query(p, d, m, s).unwrap();
        let mut cells = vec![p.name().to_string()];
        let mut matches = 0usize;
        for l in 1..=3 {
            let pipe = QueryPipeline::new(&w.peg, w.index(l));
            let t0 = Instant::now();
            let res = pipe.run(&q, 0.1, &QueryOptions::default()).unwrap();
            cells.push(fmt_duration(t0.elapsed()));
            matches = res.matches.len();
        }
        cells.push(matches.to_string());
        t.row(cells);
    }
    t.print();
    println!();
}

/// Figure 7(h): IMDB-like pattern queries (independent edges).
fn fig7h(scale: Scale) {
    println!("## Figure 7(h): IMDB-like pattern queries, alpha=0.1");
    let n = match scale {
        Scale::Tiny => 1_000,
        Scale::Small => 1_500,
        Scale::Paper => 90_612,
    };
    let refs = imdb_like(&ImdbConfig::scaled(n));
    let w = Workload::from_refgraph(&refs, 0.2, 3);
    // Each query uses a single genre label for all nodes (the paper's
    // co-starring-within-genre convention).
    let genre = graphstore::Label(0); // Drama
    let mut t = Table::new(&["query", "L1", "L2", "L3", "matches(L3)"]);
    for p in Pattern::ALL {
        let q = pattern_query(p, genre, genre, genre).unwrap();
        let mut cells = vec![p.name().to_string()];
        let mut matches = 0usize;
        for l in 1..=3 {
            let pipe = QueryPipeline::new(&w.peg, w.index(l));
            let t0 = Instant::now();
            let res = pipe.run(&q, 0.1, &QueryOptions::default()).unwrap();
            cells.push(fmt_duration(t0.elapsed()));
            matches = res.matches.len();
        }
        cells.push(matches.to_string());
        t.row(cells);
    }
    t.print();
    println!();
}

/// Section 6.2.1: the SQL baseline comparison.
fn sql_baseline(scale: Scale) {
    println!("## SQL baseline: q(5,7), alpha=0.7 (paper: SQL never finishes)");
    let w = Workload::synthetic(scale.default_graph(), 0.2, 0.3, 3);
    let q = random_query(QuerySpec::new(5, 7), w.peg.graph.label_table().len(), 3);
    let pipe = QueryPipeline::new(&w.peg, w.index(3));
    let t0 = Instant::now();
    let res = pipe.run(&q, 0.7, &QueryOptions::default()).unwrap();
    let opt_time = t0.elapsed();
    println!("optimized (L=3): {} — {} matches", fmt_duration(opt_time), res.matches.len());

    let tables = relbase::subgraph::tables_from_peg(&w.peg);
    let budget = 50_000_000u64;
    let t0 = Instant::now();
    match relbase::subgraph::run_relational_baseline(&w.peg, &tables, &q, 0.7, budget) {
        Ok(ms) => {
            println!("relational baseline: {} — {} matches", fmt_duration(t0.elapsed()), ms.len())
        }
        Err(e) => println!(
            "relational baseline: DID NOT FINISH after {} ({e})",
            fmt_duration(t0.elapsed())
        ),
    }

    // The paper's blow-up case: a dense co-label query (every node carries
    // the most frequent label) floods the join plan's intermediates.
    let l0 = graphstore::Label(0);
    let dense =
        QueryGraph::new(vec![l0; 5], vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)])
            .unwrap();
    let t0 = Instant::now();
    let res = pipe.run(&dense, 0.7, &QueryOptions::default()).unwrap();
    println!(
        "optimized (L=3), co-label q(5,7): {} — {} matches",
        fmt_duration(t0.elapsed()),
        res.matches.len()
    );
    let t0 = Instant::now();
    match relbase::subgraph::run_relational_baseline(&w.peg, &tables, &dense, 0.7, budget) {
        Ok(ms) => println!(
            "relational baseline, co-label q(5,7): {} — {} matches",
            fmt_duration(t0.elapsed()),
            ms.len()
        ),
        Err(e) => println!(
            "relational baseline, co-label q(5,7): DID NOT FINISH after {} ({e})",
            fmt_duration(t0.elapsed())
        ),
    }

    // Growth of the gap with graph size (the paper's non-termination at
    // 100k is the asymptote of this curve).
    println!();
    let mut t = Table::new(&["refs", "optimized L3", "relational", "ratio"]);
    for &n in &scale.graph_sizes() {
        let w = Workload::synthetic(n, 0.2, 0.3, 3);
        let q = random_query(QuerySpec::new(5, 7), w.peg.graph.label_table().len(), 3);
        let pipe = QueryPipeline::new(&w.peg, w.index(3));
        let t0 = Instant::now();
        let _ = pipe.run(&q, 0.7, &QueryOptions::default()).unwrap();
        let opt = t0.elapsed();
        let tables = relbase::subgraph::tables_from_peg(&w.peg);
        let t0 = Instant::now();
        let rel = match relbase::subgraph::run_relational_baseline(&w.peg, &tables, &q, 0.7, budget)
        {
            Ok(_) => t0.elapsed(),
            Err(_) => {
                t.row(vec![n.to_string(), fmt_duration(opt), "DNF".into(), "inf".into()]);
                continue;
            }
        };
        let ratio = rel.as_secs_f64() / opt.as_secs_f64().max(1e-9);
        t.row(vec![n.to_string(), fmt_duration(opt), fmt_duration(rel), format!("{ratio:.1}x")]);
    }
    t.print();
    println!();
}

/// Ablation: index resolution γ.
fn ablation_gamma(scale: Scale) {
    println!("## Ablation: index resolution gamma (q(5,9), alpha=0.7)");
    let refs = datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper(scale.default_graph()));
    let peg = pegmatch::model::PegBuilder::new().build(&refs).unwrap();
    let mut t = Table::new(&["gamma", "buckets", "build", "avg query"]);
    for gamma in [0.02, 0.05, 0.1, 0.25] {
        let t0 = Instant::now();
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: 2, beta: 0.3, gamma, ..Default::default() },
            },
        )
        .unwrap();
        let build = t0.elapsed();
        let (d, _) =
            time_queries(&peg, &idx, QuerySpec::new(5, 9), 0.7, &QueryOptions::default(), 0..5);
        t.row(vec![
            format!("{gamma}"),
            idx.paths.config().n_buckets().to_string(),
            fmt_duration(build),
            fmt_duration(d),
        ]);
    }
    t.print();
    println!();
}

/// Ablation: in-memory vs on-disk index lookups.
fn ablation_backend(scale: Scale) {
    println!("## Ablation: memory vs disk index backend (length-2 lookups)");
    let w = Workload::synthetic(scale.default_graph(), 0.2, 0.3, 2);
    let idx = w.index(2);
    let mut path = std::env::temp_dir();
    path.push(format!("pegmatch-ablation-backend-{}", std::process::id()));
    let mut store = kvstore::BTreeStore::create(&path).unwrap();
    pathindex::disk::save_index(&idx.paths, &mut store).unwrap();
    store.flush().unwrap();
    let disk = pathindex::disk::DiskPathIndex::open(&store).unwrap();

    let n_labels = w.peg.graph.label_table().len();
    let seqs: Vec<Vec<graphstore::Label>> = (0..n_labels as u16)
        .flat_map(|a| {
            (0..n_labels as u16).map(move |b| vec![graphstore::Label(a), graphstore::Label(b)])
        })
        .collect();
    let t0 = Instant::now();
    let mut mem_total = 0usize;
    for s in &seqs {
        mem_total += idx.paths.lookup(s, 0.5).len();
    }
    let mem_time = t0.elapsed();
    let t0 = Instant::now();
    let mut disk_total = 0usize;
    for s in &seqs {
        disk_total += disk.lookup(s, 0.5).unwrap().len();
    }
    let disk_time = t0.elapsed();
    assert_eq!(mem_total, disk_total, "backends must agree");
    println!(
        "memory: {} for {} results; disk: {} (file {} KiB)",
        fmt_duration(mem_time),
        mem_total,
        fmt_duration(disk_time),
        store.file_len() / 1024
    );
    drop(disk);
    drop(store);
    std::fs::remove_file(&path).ok();
    println!();
}

/// Ablation: sequential vs parallel k-partite reduction.
fn ablation_parallel(scale: Scale) {
    println!("## Ablation: sequential vs parallel reduction (q(10,20), alpha=0.5)");
    let w = Workload::synthetic(scale.default_graph(), 0.4, 0.2, 3);
    let spec = QuerySpec::new(10, 20);
    // `threads: 1` keeps the baseline genuinely sequential (the default of
    // 0 = all cores would parallelize both arms).
    let (seq, _) =
        time_queries(&w.peg, w.index(3), spec, 0.5, &QueryOptions::with_threads(1), 0..5);
    let par_opts = QueryOptions { parallel_reduction: true, ..Default::default() };
    let (par, _) = time_queries(&w.peg, w.index(3), spec, 0.5, &par_opts, 0..5);
    println!("sequential: {}; parallel: {}", fmt_duration(seq), fmt_duration(par));
    println!();
}

/// Ablation: index construction thread scaling.
fn ablation_threads(scale: Scale) {
    println!("## Ablation: index construction threads (L=2)");
    let refs = datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper(scale.default_graph()));
    let peg = pegmatch::model::PegBuilder::new().build(&refs).unwrap();
    let mut t = Table::new(&["threads", "build time", "entries"]);
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: 2, beta: 0.3, threads, ..Default::default() },
            },
        )
        .unwrap();
        t.row(vec![
            threads.to_string(),
            fmt_duration(t0.elapsed()),
            idx.paths.n_entries().to_string(),
        ]);
    }
    t.print();
    println!();
}

/// Ablation: online query thread scaling (the `QueryOptions::threads`
/// knob) on a generation-heavy workload. Result sets are byte-identical
/// across lane counts; only latency changes.
fn ablation_query_threads(scale: Scale) {
    println!("## Ablation: online query threads (q(6,7) and q(10,20), alpha=0.05)");
    let w = Workload::synthetic(scale.default_graph(), 0.4, 0.05, 2);
    let mut t = Table::new(&["query", "threads", "avg online time", "matches", "speedup"]);
    for (n, m) in [(6usize, 7usize), (10, 20)] {
        let spec = QuerySpec::new(n, m);
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let opts = QueryOptions { threads, ..Default::default() };
            let (d, matches) = time_queries(&w.peg, w.index(2), spec, 0.05, &opts, 0..5);
            let base_secs = *base.get_or_insert(d.as_secs_f64());
            t.row(vec![
                format!("q({n},{m})"),
                threads.to_string(),
                fmt_duration(d),
                matches.to_string(),
                format!("{:.2}x", base_secs / d.as_secs_f64().max(1e-12)),
            ]);
        }
    }
    t.print();
    println!();
}

/// Ablation: sharded scatter-gather retrieval vs the unsharded store.
///
/// One fixed graph, shard count swept over {1, 2, 3, 4}. Per shard count:
/// build-time replication overhead (replicated nodes, replication factor,
/// Σ index entries), and per-query scatter statistics — per-shard
/// candidate counts, boundary duplicates dropped at the gather, and the
/// retrieval wall time — with a bit-exactness check against the unsharded
/// pipeline on every query.
fn ablation_shards(scale: Scale) {
    use pegshard::ShardedGraphStore;

    println!("## Ablation: sharded store (q(4,4) and q(6,7), alpha=0.1)");
    let (beta, max_len) = (0.1, 2);
    let w = Workload::synthetic(scale.default_graph(), 0.3, beta, max_len);
    let n_labels = w.peg.graph.label_table().len();
    let opts = OfflineOptions { index: PathIndexConfig { max_len, beta, ..Default::default() } };
    let plain = QueryPipeline::new(&w.peg, w.index(max_len));
    let specs = [(4usize, 4usize), (6, 7)];
    let queries: Vec<QueryGraph> =
        specs.iter().map(|&(n, m)| random_query(QuerySpec::new(n, m), n_labels, 7)).collect();

    let mut build = Table::new(&[
        "shards",
        "build time",
        "replicated nodes",
        "replication",
        "Σ index entries",
        "per-shard nodes",
    ]);
    let mut retrieval = Table::new(&[
        "query",
        "shards",
        "retrieval time",
        "per-shard candidates",
        "distinct",
        "dupes dropped",
        "total online",
    ]);
    for shards in [1usize, 2, 3, 4] {
        let store = ShardedGraphStore::build(w.peg.clone(), &opts, shards).expect("sharded build");
        let s = store.stats();
        build.row(vec![
            shards.to_string(),
            fmt_duration(s.build_time),
            s.replicated_nodes.to_string(),
            format!("{:.3}x", s.replication_factor),
            s.total_index_entries.to_string(),
            format!("{:?}", s.per_shard.iter().map(|p| p.nodes).collect::<Vec<_>>()),
        ]);
        for (&(n, m), q) in specs.iter().zip(&queries) {
            let t0 = Instant::now();
            let got = store.pipeline().run(q, 0.1, &QueryOptions::default()).unwrap();
            let total = t0.elapsed();
            let want = plain.run(q, 0.1, &QueryOptions::default()).unwrap();
            bench::workloads::assert_matches_bit_identical(
                &got.matches,
                &want.matches,
                &format!("q({n},{m}) shards={shards}"),
            );
            let sc = store.last_scatter();
            retrieval.row(vec![
                format!("q({n},{m})"),
                shards.to_string(),
                fmt_duration(sc.retrieve_time),
                format!("{:?}", sc.per_shard_pruned),
                sc.pruned_distinct.to_string(),
                sc.duplicates_dropped.to_string(),
                fmt_duration(total),
            ]);
        }
    }
    build.print();
    println!();
    retrieval.print();
    println!("(every row bit-exact vs the unsharded pipeline)");
    println!();
}

/// Ablation: in-process vs loopback-TCP shard transport.
///
/// The same graph, the same 2-shard partition, the same queries — once
/// through `InProcessTransport` (pool fan-out) and once through
/// `TcpTransport` against two in-process worker servers on loopback
/// ports. Per query: retrieval wall time under both transports, the
/// delta (the serialization tax the ROADMAP predicted the multi-process
/// shard server would pay), and the bytes on the wire. Every row is
/// checked bit-exact against the unsharded pipeline — the transport may
/// only change latency, never a bit of the answer.
fn ablation_transport(scale: Scale) {
    use pegserve::{obj, Client, GraphSpec, Server, ServerConfig};
    use pegshard::{ShardedGraphStore, TcpTransport, TcpTransportConfig};

    println!("## Ablation: shard transport — in-process vs loopback TCP (2 shards, alpha=0.1)");
    let (beta, max_len, uncertainty) = (0.1, 2, 0.3);
    let size = scale.default_graph();
    let w = Workload::synthetic(size, uncertainty, beta, max_len);
    let n_labels = w.peg.graph.label_table().len();
    let opts = OfflineOptions { index: PathIndexConfig { max_len, beta, ..Default::default() } };
    let plain = QueryPipeline::new(&w.peg, w.index(max_len));
    let specs = [(4usize, 4usize), (6, 7)];
    let queries: Vec<QueryGraph> =
        specs.iter().map(|&(n, m)| random_query(QuerySpec::new(n, m), n_labels, 7)).collect();

    let n_shards = 2usize;
    let inproc =
        ShardedGraphStore::build(w.peg.clone(), &opts, n_shards).expect("in-process build");

    // Two worker servers on loopback; the distributed store's workers
    // rebuild their shard from the same generator spec `Workload` used
    // (seed 42 is the generator default both paths share).
    let handles: Vec<_> = (0..n_shards)
        .map(|_| Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn())
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr.to_string()).collect();
    let spec = GraphSpec { kind: "synthetic".into(), size, seed: 42, uncertainty };
    let transport = TcpTransport::connect("ablate", &addrs, TcpTransportConfig::default())
        .expect("loopback workers reachable");
    let dist = ShardedGraphStore::connect(w.peg.clone(), &opts, transport, |s, n| {
        spec.shard_load_json("ablate", &opts.index, s, n)
    })
    .expect("distributed connect");

    let mut t = Table::new(&[
        "query",
        "transport",
        "retrieval",
        "Δ vs in-proc",
        "bytes/query",
        "total online",
    ]);
    for (&(n, m), q) in specs.iter().zip(&queries) {
        let want = plain.run(q, 0.1, &QueryOptions::default()).unwrap();

        let t0 = Instant::now();
        let got = inproc.pipeline().run(q, 0.1, &QueryOptions::default()).unwrap();
        let total_inproc = t0.elapsed();
        bench::workloads::assert_matches_bit_identical(
            &got.matches,
            &want.matches,
            &format!("q({n},{m}) in-process"),
        );
        let rt_in = inproc.last_scatter().retrieve_time;
        t.row(vec![
            format!("q({n},{m})"),
            "in-process".into(),
            fmt_duration(rt_in),
            "—".into(),
            "0".into(),
            fmt_duration(total_inproc),
        ]);

        let wire_before: u64 =
            dist.worker_stats().unwrap().iter().map(|ws| ws.bytes_tx + ws.bytes_rx).sum();
        let t0 = Instant::now();
        let got = dist.pipeline().run(q, 0.1, &QueryOptions::default()).unwrap();
        let total_tcp = t0.elapsed();
        bench::workloads::assert_matches_bit_identical(
            &got.matches,
            &want.matches,
            &format!("q({n},{m}) loopback-tcp"),
        );
        let wire_after: u64 =
            dist.worker_stats().unwrap().iter().map(|ws| ws.bytes_tx + ws.bytes_rx).sum();
        let rt_tcp = dist.last_scatter().retrieve_time;
        t.row(vec![
            format!("q({n},{m})"),
            "loopback-tcp".into(),
            fmt_duration(rt_tcp),
            format!("+{}", fmt_duration(rt_tcp.saturating_sub(rt_in))),
            (wire_after - wire_before).to_string(),
            fmt_duration(total_tcp),
        ]);
    }
    t.print();
    println!(
        "(every row bit-exact vs the unsharded pipeline; bytes = request + reply lines \
         across both workers)"
    );

    // Socket-hygiene ceiling: ~200 control-op round trips against one
    // worker. Every peg socket runs TCP_NODELAY with exactly one framed
    // write per message; a regression on either side reintroduces the
    // Nagle + delayed-ACK interaction (~40ms per exchange), which this
    // 10ms mean ceiling fails loudly.
    let mut ping = Client::connect(handles[0].addr).unwrap();
    let stats_req = obj().field("op", "stats").build();
    let t0 = Instant::now();
    let pings = 200u32;
    for _ in 0..pings {
        let reply = ping.request(&stats_req).unwrap();
        assert_eq!(reply.get("ok"), Some(&pegserve::Json::Bool(true)), "{reply}");
    }
    let mean = t0.elapsed() / pings;
    drop(ping);
    println!("socket hygiene: {pings} loopback round trips, mean {}", fmt_duration(mean));
    assert!(
        mean < Duration::from_millis(10),
        "loopback exchange mean {mean:?} breaches the no-Nagle latency ceiling"
    );
    dist.release_workers();
    for h in handles {
        let _ = h.shutdown();
    }
    println!();
}

/// Ablation: the shape-keyed plan cache on repeated-shape workloads.
///
/// A workload of `shapes × repeats` queries where each repeat is an
/// isomorphic renumbering of its shape (a different query text, same
/// canonical form — exactly what a multi-user serving mix looks like).
/// Reports end-to-end time without and with a shared
/// [`pegmatch::online::PlanCache`], the hit rate, and the per-stage
/// planning time the cache saved.
fn ablation_plan_cache(scale: Scale) {
    use bench::workloads::permuted_query as permuted;
    use pegmatch::online::PlanCache;
    use std::sync::Arc;

    println!("## Ablation: plan cache on repeated-shape workloads (alpha=0.5)");
    let w = Workload::synthetic(scale.default_graph(), 0.2, 0.3, 2);
    let n_labels = w.peg.graph.label_table().len();
    let alpha = 0.5;
    let mut t = Table::new(&[
        "shapes",
        "queries",
        "no cache",
        "with cache",
        "hit rate",
        "plan time saved",
        "avg plan (miss/hit)",
    ]);
    for (n_shapes, repeats) in [(2usize, 8usize), (4, 8), (8, 4)] {
        // Repeated-shape mix: each shape appears `repeats` times under
        // different variable numberings.
        let queries: Vec<QueryGraph> = (0..n_shapes as u64)
            .flat_map(|s| {
                let base = random_query(QuerySpec::new(5, 6), n_labels, s);
                (0..repeats as u64).map(move |r| permuted(&base, s * 1000 + r)).collect::<Vec<_>>()
            })
            .collect();

        let plain = QueryPipeline::new(&w.peg, w.index(2));
        let t0 = Instant::now();
        let mut miss_plan = Duration::ZERO;
        for q in &queries {
            let res = plain.run(q, alpha, &QueryOptions::default()).expect("query runs");
            miss_plan += res.stats.decompose_time;
        }
        let cold = t0.elapsed();

        let cache = Arc::new(PlanCache::new());
        let cached =
            QueryPipeline::builder(&w.peg).index(w.index(2)).plan_cache(cache.clone()).build();
        let t0 = Instant::now();
        let mut hit_plan = Duration::ZERO;
        for q in &queries {
            let res = cached.run(q, alpha, &QueryOptions::default()).expect("query runs");
            hit_plan += res.stats.decompose_time;
        }
        let warm = t0.elapsed();
        let s = cache.stats();
        let n_q = queries.len() as u32;
        t.row(vec![
            n_shapes.to_string(),
            queries.len().to_string(),
            fmt_duration(cold),
            fmt_duration(warm),
            format!("{:.0}%", s.hit_rate() * 100.0),
            fmt_duration(s.saved),
            format!("{} / {}", fmt_duration(miss_plan / n_q), fmt_duration(hit_plan / n_q)),
        ]);
    }
    t.print();
    println!();
}

/// Ablation: the shape-keyed execution cache on repeated-shape workloads.
///
/// The same shapes×repeats mixes as `ablation-plan-cache`, each query run
/// at two alphas sharing a quantization bucket (0.5 and 0.55, so the
/// second alpha hits the floor retrieval cached by the first). Both the
/// cold and warm pipelines carry a plan cache — the variable under test
/// is candidate reuse, not plan choice — and every warm answer is checked
/// bit-exact against its cold twin. Reports end-to-end and
/// retrieval-phase time without and with an [`pegmatch::online::ExecCache`],
/// the hit rate, and the bytes held; a distributed section over a 3-shard
/// store counts the scatter round trips a hit skips entirely. Results
/// also land in `BENCH_exec_cache.json` (working directory).
fn ablation_exec_cache(scale: Scale) {
    use bench::workloads::permuted_query as permuted;
    use pegmatch::online::{ExecCache, PlanCache};
    use pegserve::{obj, Json};
    use pegshard::ShardedGraphStore;
    use std::sync::Arc;

    println!("## Ablation: execution cache on repeated-shape workloads (alpha=0.5/0.55/0.6)");
    let (beta, max_len) = (0.3, 2);
    let w = Workload::synthetic(scale.default_graph(), 0.2, beta, max_len);
    let n_labels = w.peg.graph.label_table().len();
    // 0.55 and 0.6 floor to 0.5's quantization bucket: after the first
    // pass over the mix every run re-prunes the cached floor retrieval
    // instead of probing again.
    let alphas = [0.5f64, 0.55, 0.6];
    let mix = |n_shapes: u64, repeats: u64| -> Vec<QueryGraph> {
        (0..n_shapes)
            .flat_map(|s| {
                let base = random_query(QuerySpec::new(5, 6), n_labels, s);
                (0..repeats).map(move |r| permuted(&base, s * 1000 + r)).collect::<Vec<_>>()
            })
            .collect()
    };
    // Replays the mix (each query at each alpha) through `pipe`, checking
    // every answer bit-exact against `reference` when given. Returns
    // (wall time, summed retrieval-phase time); the reference reruns are
    // excluded from both timers.
    let replay = |pipe: &QueryPipeline<'_>,
                  reference: Option<&QueryPipeline<'_>>,
                  queries: &[QueryGraph],
                  ctx: &str|
     -> (Duration, Duration) {
        let mut wall = Duration::ZERO;
        let mut retrieval = Duration::ZERO;
        for (k, q) in queries.iter().enumerate() {
            for &alpha in &alphas {
                let t0 = Instant::now();
                let res = pipe.run(q, alpha, &QueryOptions::default()).expect("query runs");
                wall += t0.elapsed();
                retrieval += res.stats.candidates_time;
                if let Some(r) = reference {
                    let want = r.run(q, alpha, &QueryOptions::default()).expect("query runs");
                    bench::workloads::assert_matches_bit_identical(
                        &res.matches,
                        &want.matches,
                        &format!("{ctx} query {k} alpha {alpha}"),
                    );
                }
            }
        }
        (wall, retrieval)
    };

    let mut t = Table::new(&[
        "shapes",
        "runs",
        "no cache",
        "with cache",
        "retrieval (cold/warm)",
        "speedup",
        "hit rate",
        "bytes held",
    ]);
    let mut json_local: Vec<Json> = Vec::new();
    for (n_shapes, repeats) in [(2u64, 8u64), (4, 8), (8, 4)] {
        let queries = mix(n_shapes, repeats);
        let cold = QueryPipeline::builder(&w.peg)
            .index(w.index(max_len))
            .plan_cache(Arc::new(PlanCache::new()))
            .build();
        let (cold_wall, cold_retrieval) = replay(&cold, None, &queries, "cold");

        let exec = Arc::new(ExecCache::new(32 << 20));
        let warm = QueryPipeline::builder(&w.peg)
            .index(w.index(max_len))
            .plan_cache(Arc::new(PlanCache::new()))
            .exec_cache(exec.clone(), exec.next_epoch())
            .build();
        let (warm_wall, warm_retrieval) =
            replay(&warm, Some(&cold), &queries, &format!("local {n_shapes} shapes"));

        let s = exec.stats();
        let speedup = cold_retrieval.as_secs_f64() / warm_retrieval.as_secs_f64().max(1e-12);
        let runs = queries.len() * alphas.len();
        t.row(vec![
            n_shapes.to_string(),
            runs.to_string(),
            fmt_duration(cold_wall),
            fmt_duration(warm_wall),
            format!("{} / {}", fmt_duration(cold_retrieval), fmt_duration(warm_retrieval)),
            format!("{speedup:.1}x"),
            format!("{:.0}%", s.hit_rate() * 100.0),
            s.bytes.to_string(),
        ]);
        json_local.push(
            obj()
                .field("shapes", n_shapes)
                .field("runs", runs)
                .field("cold_total_us", cold_wall.as_micros() as u64)
                .field("warm_total_us", warm_wall.as_micros() as u64)
                .field("cold_retrieval_us", cold_retrieval.as_micros() as u64)
                .field("warm_retrieval_us", warm_retrieval.as_micros() as u64)
                .field("retrieval_speedup", speedup)
                .field("hits", s.hits)
                .field("misses", s.misses)
                .field("hit_rate", s.hit_rate())
                .field("bytes", s.bytes)
                .field("bit_exact", true)
                .build(),
        );
    }
    t.print();
    println!("(every warm row bit-exact vs the cache-free pipeline)");
    println!();

    // Distributed: over a sharded store a hit doesn't just skip index
    // probes — it skips the whole scatter-gather round across the shards.
    let shards = 3usize;
    let opts = OfflineOptions { index: PathIndexConfig { max_len, beta, ..Default::default() } };
    let store = ShardedGraphStore::build(w.peg.clone(), &opts, shards).expect("sharded build");
    let queries = mix(4, 8);
    let cold = QueryPipeline::builder(store.peg())
        .source(&store)
        .plan_cache(Arc::new(PlanCache::new()))
        .build();
    let (cold_wall, cold_retrieval) = replay(&cold, None, &queries, "distributed cold");
    let exec = Arc::new(ExecCache::new(32 << 20));
    let warm = QueryPipeline::builder(store.peg())
        .source(&store)
        .plan_cache(Arc::new(PlanCache::new()))
        .exec_cache(exec.clone(), exec.next_epoch())
        .build();
    let (warm_wall, warm_retrieval) = replay(&warm, Some(&cold), &queries, "distributed");
    let s = exec.stats();
    let speedup = cold_retrieval.as_secs_f64() / warm_retrieval.as_secs_f64().max(1e-12);
    let runs = queries.len() * alphas.len();
    println!(
        "distributed ({shards} shards, 4 shapes x 8 renumberings x 3 alphas): \
         {runs} runs, {} scatter round trips skipped ({:.0}% hit rate)",
        s.hits,
        s.hit_rate() * 100.0
    );
    println!(
        "  retrieval cold {} vs warm {} ({speedup:.1}x), end-to-end {} vs {}, all bit-exact",
        fmt_duration(cold_retrieval),
        fmt_duration(warm_retrieval),
        fmt_duration(cold_wall),
        fmt_duration(warm_wall),
    );
    println!();

    let report = obj()
        .field("experiment", "ablation-exec-cache")
        .field("scale", format!("{scale:?}").to_lowercase())
        .field("graph_size", scale.default_graph())
        .field("alphas", Json::Arr(alphas.iter().map(|&a| Json::Num(a)).collect()))
        .field("local", Json::Arr(json_local))
        .field(
            "distributed",
            obj()
                .field("shards", shards)
                .field("runs", runs)
                .field("scatters_saved", s.hits)
                .field("cold_retrieval_us", cold_retrieval.as_micros() as u64)
                .field("warm_retrieval_us", warm_retrieval.as_micros() as u64)
                .field("retrieval_speedup", speedup)
                .field("hit_rate", s.hit_rate())
                .field("bytes", s.bytes)
                .field("bit_exact", true)
                .build(),
        )
        .build();
    std::fs::write("BENCH_exec_cache.json", format!("{report}\n")).expect("write BENCH json");
    println!("(wrote BENCH_exec_cache.json)");
    println!();
}

/// Tracing overhead: the same query mix run with the tracer off and on
/// (the `query` op's configuration vs the `explain` op's), through the
/// identical prepare/session path, over three configurations — local
/// sequential, local parallel, and a 3-shard in-process scatter. Every
/// traced answer is checked **bit-exact** against its untraced twin
/// (tracing must never perturb a result), wall times are min-of-trials
/// (alternating modes, robust to scheduler noise), and the experiment
/// panics if any row's overhead exceeds the 5% budget — the whole point
/// of gating `Span::is_recording()` before every clock read. Results
/// also land in `BENCH_trace.json` (working directory).
fn ablation_trace(scale: Scale) {
    use pegserve::{obj, Json};
    use pegshard::ShardedGraphStore;
    use pegtrace::Tracer;

    const MAX_OVERHEAD: f64 = 0.05;
    println!("## Ablation: request tracing overhead (tracer off vs on, bit-exact)");
    let (beta, max_len) = (0.3, 2);
    let w = Workload::synthetic(scale.default_graph(), 0.2, beta, max_len);
    let n_labels = w.peg.graph.label_table().len();
    let alpha = 0.5f64;
    let queries: Vec<QueryGraph> =
        (0..4u64).map(|s| random_query(QuerySpec::new(5, 6), n_labels, s)).collect();
    let trials = 5usize;

    let mut t = Table::new(&[
        "configuration",
        "runs",
        "tracer off",
        "tracer on",
        "overhead",
        "spans/query",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    let mut measure = |name: &str, pipe: &QueryPipeline<'_>, threads: usize| {
        let opts = QueryOptions { threads, ..Default::default() };
        // One pass of each query (retrieval caches, allocator, branch
        // predictors) before anything is timed.
        for q in &queries {
            pipe.run(q, alpha, &opts).expect("query runs");
        }
        // Runs the whole mix once; when traced, each request gets a
        // fresh enabled tracer and its spans are drained inside the
        // timed region — exactly the server's `explain` cost shape.
        let run_mix = |traced: bool| -> (Duration, Vec<pegmatch::online::QueryResult>, u64) {
            let mut results = Vec::new();
            let mut spans = 0u64;
            let t0 = Instant::now();
            for (i, q) in queries.iter().enumerate() {
                let prepared = pipe.prepare(q, alpha, &opts).expect("prepare");
                let mut session = pipe.session(&prepared, &opts);
                let tracer =
                    if traced { Tracer::enabled(i as u64 + 1) } else { Tracer::disabled() };
                session.set_tracer(tracer.clone());
                let res = session.run_at(alpha, None).expect("query runs");
                if traced {
                    spans += tracer.take().iter().map(|n| n.span_count() as u64).sum::<u64>();
                }
                results.push(res);
            }
            (t0.elapsed(), results, spans)
        };
        let mut off_best = Duration::MAX;
        let mut on_best = Duration::MAX;
        let mut off_results = None;
        let mut on_results = None;
        let mut spans_per_mix = 0u64;
        for _ in 0..trials {
            let (off_wall, off_res, _) = run_mix(false);
            let (on_wall, on_res, spans) = run_mix(true);
            off_best = off_best.min(off_wall);
            on_best = on_best.min(on_wall);
            off_results.get_or_insert(off_res);
            on_results.get_or_insert(on_res);
            spans_per_mix = spans;
        }
        let (off_results, on_results) = (off_results.unwrap(), on_results.unwrap());
        for (k, (traced, plain)) in on_results.iter().zip(&off_results).enumerate() {
            bench::workloads::assert_matches_bit_identical(
                &traced.matches,
                &plain.matches,
                &format!("{name} query {k}"),
            );
        }
        let overhead = on_best.as_secs_f64() / off_best.as_secs_f64().max(1e-12) - 1.0;
        let spans_per_query = spans_per_mix as f64 / queries.len() as f64;
        t.row(vec![
            name.to_string(),
            queries.len().to_string(),
            fmt_duration(off_best),
            fmt_duration(on_best),
            format!("{:+.1}%", overhead * 100.0),
            format!("{spans_per_query:.0}"),
        ]);
        rows.push(
            obj()
                .field("configuration", name)
                .field("runs", queries.len())
                .field("tracer_off_us", off_best.as_micros() as u64)
                .field("tracer_on_us", on_best.as_micros() as u64)
                .field("overhead", overhead)
                .field("spans_per_query", spans_per_query)
                .field("bit_exact", true)
                .build(),
        );
        assert!(
            overhead <= MAX_OVERHEAD,
            "{name}: tracing overhead {:.1}% exceeds the {:.0}% budget \
             (tracer off {off_best:?}, on {on_best:?})",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0,
        );
    };

    let local = QueryPipeline::builder(&w.peg).index(w.index(max_len)).build();
    measure("local threads=1", &local, 1);
    measure("local threads=0", &local, 0);
    let opts = OfflineOptions { index: PathIndexConfig { max_len, beta, ..Default::default() } };
    let store = ShardedGraphStore::build(w.peg.clone(), &opts, 3).expect("sharded build");
    let sharded = QueryPipeline::builder(store.peg()).source(&store).build();
    measure("sharded x3 in-process", &sharded, 0);

    t.print();
    println!("(every traced row bit-exact vs its untraced twin; gate: overhead <= 5%)");
    println!();

    let report = obj()
        .field("experiment", "ablation-trace")
        .field("scale", format!("{scale:?}").to_lowercase())
        .field("graph_size", scale.default_graph())
        .field("alpha", alpha)
        .field("queries", queries.len())
        .field("trials", trials)
        .field("max_overhead", MAX_OVERHEAD)
        .field("rows", Json::Arr(rows))
        .build();
    std::fs::write("BENCH_trace.json", format!("{report}\n")).expect("write BENCH json");
    println!("(wrote BENCH_trace.json)");
    println!();
}

/// Active-frontier reduction: full-sweep vs delta-driven rounds, per query
/// shape and threshold.
///
/// Every row first asserts the two schedules answer **bit-identically**
/// (match sets, round counts, kill counts, per-partition survivors) —
/// only then do its timings count. Timed quantity is the all-in reduce
/// (`PipelineStats::reduction_time`: structure fixpoints, message rounds,
/// and prune scans), min over trials, single-core. "Late avoided" is the
/// fraction of full-sweep evaluations the frontier skipped on rounds
/// after the (identical-by-construction) seeded first round. Results also
/// land in `BENCH_reduction.json` (working directory). At non-tiny scales
/// the q(5,5) gate enforces the frontier win: ≥1.5x on the best row with
/// >50% of late-round evals avoided.
fn ablation_reduction(scale: Scale) {
    use pegserve::{obj, Json};

    println!("## Ablation: active-frontier reduction (full sweep vs frontier, bit-exact)");
    // L = 1 decomposition: one partition per query edge, the deepest
    // message-propagation diameter a shape admits — the regime where round
    // count (and so the frontier's late-round skipping) matters most.
    let (beta, max_len, uncertainty) = (0.3, 1, 0.6);
    let w = Workload::synthetic(scale.default_graph(), uncertainty, beta, max_len);
    let n_labels = w.peg.graph.label_table().len();
    let pipe = QueryPipeline::builder(&w.peg).index(w.index(max_len)).build();
    let trials = if scale == Scale::Tiny { 3usize } else { 5 };
    let specs = [(4usize, 4usize), (5, 5)];
    let alphas = [0.1f64, 0.03, 0.01];
    let full_opts = QueryOptions { threads: 1, use_frontier: false, ..Default::default() };
    let frontier_opts = QueryOptions::with_threads(1);

    let mut t = Table::new(&[
        "query",
        "alpha",
        "rounds",
        "full reduce",
        "frontier reduce",
        "speedup",
        "evals full",
        "evals frontier",
        "late avoided",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    // Best q(5,5) row feeds the gate: (speedup, late-round avoided share).
    let mut q55_best: Option<(f64, f64)> = None;
    for &(n, e) in &specs {
        let q = random_query(QuerySpec::new(n, e), n_labels, 1);
        for &alpha in &alphas {
            let name = format!("q({n},{e})");
            let ctx = format!("{name} alpha={alpha}");
            // Bit-exactness gate before any timing: the frontier schedule
            // must be invisible in everything but the eval counts.
            let rf = pipe.run(&q, alpha, &frontier_opts).expect("frontier run");
            let rs = pipe.run(&q, alpha, &full_opts).expect("full-sweep run");
            bench::workloads::assert_matches_bit_identical(&rf.matches, &rs.matches, &ctx);
            assert_eq!(rf.stats.message_rounds, rs.stats.message_rounds, "{ctx}: rounds");
            assert_eq!(rf.stats.removed_structure, rs.stats.removed_structure, "{ctx}");
            assert_eq!(rf.stats.removed_upperbound, rs.stats.removed_upperbound, "{ctx}");
            assert_eq!(rf.stats.final_counts, rs.stats.final_counts, "{ctx}: survivors");
            assert_eq!(rs.stats.full_evals_avoided, 0, "{ctx}: sweep must not skip");

            let mut frontier_best = Duration::MAX;
            let mut full_best = Duration::MAX;
            for _ in 0..trials {
                let f = pipe.run(&q, alpha, &frontier_opts).expect("frontier run");
                let s = pipe.run(&q, alpha, &full_opts).expect("full-sweep run");
                frontier_best = frontier_best.min(f.stats.reduction_time);
                full_best = full_best.min(s.stats.reduction_time);
            }
            let speedup = full_best.as_secs_f64() / frontier_best.as_secs_f64().max(1e-12);
            // Rounds after the all-dirty seed round: what a full sweep
            // evaluates there is exactly the alive count, so the skipped
            // share falls straight out of the two runs' round frontiers.
            let late_full: usize = rs.stats.round_frontiers.iter().skip(1).sum();
            let late_frontier: usize = rf.stats.round_frontiers.iter().skip(1).sum();
            let late_avoided =
                if late_full == 0 { 0.0 } else { 1.0 - late_frontier as f64 / late_full as f64 };
            if (n, e) == (5, 5) {
                let best = q55_best.get_or_insert((speedup, late_avoided));
                if speedup > best.0 {
                    *best = (speedup, late_avoided);
                }
            }
            t.row(vec![
                name.clone(),
                format!("{alpha}"),
                rf.stats.message_rounds.to_string(),
                fmt_duration(full_best),
                fmt_duration(frontier_best),
                format!("{speedup:.2}x"),
                rs.stats.frontier_evals.to_string(),
                rf.stats.frontier_evals.to_string(),
                format!("{:.0}%", late_avoided * 100.0),
            ]);
            rows.push(
                obj()
                    .field("query", name.as_str())
                    .field("alpha", alpha)
                    .field("rounds", rf.stats.message_rounds)
                    .field("full_reduce_us", full_best.as_micros() as u64)
                    .field("frontier_reduce_us", frontier_best.as_micros() as u64)
                    .field("speedup", speedup)
                    .field("evals_full", rs.stats.frontier_evals)
                    .field("evals_frontier", rf.stats.frontier_evals)
                    .field("evals_avoided", rf.stats.full_evals_avoided)
                    .field("late_rounds_avoided", late_avoided)
                    .field(
                        "round_frontiers",
                        Json::Arr(
                            rf.stats.round_frontiers.iter().map(|&c| Json::Num(c as f64)).collect(),
                        ),
                    )
                    .field("bit_exact", true)
                    .build(),
            );
        }
    }
    t.print();
    println!("(every frontier row bit-exact vs its full-sweep twin before timings count)");
    println!();

    if scale != Scale::Tiny {
        let (speedup, late_avoided) = q55_best.expect("q(5,5) rows ran");
        assert!(
            speedup >= 1.5 && late_avoided > 0.5,
            "q(5,5) frontier gate: best speedup {speedup:.2}x (need >= 1.5x) with \
             {:.0}% late-round evals avoided (need > 50%)",
            late_avoided * 100.0,
        );
    }

    let report = obj()
        .field("experiment", "ablation-reduction")
        .field("scale", format!("{scale:?}").to_lowercase())
        .field("graph_size", scale.default_graph())
        .field("uncertainty", uncertainty)
        .field("trials", trials)
        .field("threads", 1u64)
        .field("rows", Json::Arr(rows))
        .build();
    std::fs::write("BENCH_reduction.json", format!("{report}\n")).expect("write BENCH json");
    println!("(wrote BENCH_reduction.json)");
    println!();
}

/// Live mutation: incremental maintenance vs. full rebuild, per batch size.
///
/// For each mutation batch size, draws a random valid op batch against the
/// synthetic graph and applies it twice: once through
/// [`pegmatch::live::apply_ops`] (incremental recompile + index patch) and
/// once by rebuilding the mutated reference network from scratch. Every row
/// asserts the two paths answer a query mix **bit-identically** before its
/// timings are reported — a row that drifts panics the experiment. A
/// distributed section does the same through
/// [`pegshard::ShardedGraphStore::apply_update`] over a 3-shard store,
/// counting how many shards the dirty ball actually touched. Results also
/// land in `BENCH_mutation.json` (working directory).
fn ablation_mutation(scale: Scale) {
    use graphstore::{GraphOp, RefGraph, RefId};
    use pegmatch::model::PegBuilder;
    use pegserve::{obj, Json};
    use pegshard::ShardedGraphStore;

    // SplitMix64 — deterministic op drawing, so rows reproduce exactly.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
        fn prob(&mut self) -> f64 {
            0.05 + 0.9 * (self.next() % 1000) as f64 / 1000.0
        }
    }

    // Draws `n` ops, each valid against the state the preceding ops
    // produce: refs come from the live set, edge deletions only target
    // edges this batch added, sets use distinct live members.
    fn random_ops(refs: &RefGraph, rng: &mut Rng, n: usize) -> Vec<GraphOp> {
        let mut alive: Vec<u32> =
            (0..refs.n_refs() as u32).filter(|&i| refs.ref_is_alive(RefId(i))).collect();
        let n_labels = refs.label_table().len();
        let mut added: Vec<(u32, u32)> = Vec::new();
        let mut ops = Vec::with_capacity(n);
        while ops.len() < n {
            let op = match rng.below(8) {
                0 => GraphOp::UpsertRef {
                    r: None,
                    labels: vec![(rng.below(n_labels) as u16, rng.prob())],
                },
                1 => {
                    let r = alive[rng.below(alive.len())];
                    GraphOp::UpsertRef {
                        r: Some(RefId(r)),
                        labels: vec![(rng.below(n_labels) as u16, rng.prob())],
                    }
                }
                2 if alive.len() > 8 => {
                    let r = alive.swap_remove(rng.below(alive.len()));
                    added.retain(|&(a, b)| a != r && b != r);
                    GraphOp::DeleteRef { r: RefId(r) }
                }
                3 => {
                    let a = alive[rng.below(alive.len())];
                    let b = alive[rng.below(alive.len())];
                    if a == b {
                        continue;
                    }
                    let key = (a.min(b), a.max(b));
                    if !added.contains(&key) {
                        added.push(key);
                    }
                    GraphOp::UpsertEdge { a: RefId(a), b: RefId(b), p: rng.prob() }
                }
                4 if !added.is_empty() => {
                    let (a, b) = added.swap_remove(rng.below(added.len()));
                    GraphOp::DeleteEdge { a: RefId(a), b: RefId(b) }
                }
                5 => {
                    let r = alive[rng.below(alive.len())];
                    GraphOp::SetSingletonWeight { r: RefId(r), weight: rng.prob() }
                }
                6 => {
                    let a = alive[rng.below(alive.len())];
                    let b = alive[rng.below(alive.len())];
                    if a == b {
                        continue;
                    }
                    GraphOp::PairPosterior { a: RefId(a), b: RefId(b), q: rng.prob() }
                }
                _ => {
                    let a = alive[rng.below(alive.len())];
                    let b = alive[rng.below(alive.len())];
                    let c = alive[rng.below(alive.len())];
                    if a == b || b == c || a == c {
                        continue;
                    }
                    GraphOp::UpsertSet {
                        members: vec![RefId(a), RefId(b), RefId(c)],
                        weight: rng.prob(),
                    }
                }
            };
            ops.push(op);
        }
        ops
    }

    println!("## Ablation: incremental mutation vs full rebuild");
    let (beta, max_len) = (0.3, 2);
    let refs0 = datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper_with_uncertainty(
        scale.default_graph(),
        0.2,
    ));
    let builder = PegBuilder::new();
    let opts = OfflineOptions { index: PathIndexConfig { max_len, beta, ..Default::default() } };
    let peg0 = builder.build(&refs0).expect("PEG builds");
    let index0 = OfflineIndex::build(&peg0, &opts).expect("offline phase");
    let n_labels = peg0.graph.label_table().len();
    let queries: Vec<QueryGraph> =
        (0..3).map(|s| random_query(QuerySpec::new(3, 3), n_labels, s)).collect();
    let alphas = [0.1f64, 0.3];

    // Bit-exactness gate: the incrementally maintained generation and the
    // from-scratch rebuild must answer the whole mix identically.
    let assert_row_bit_exact = |inc: &QueryPipeline<'_>, fresh: &QueryPipeline<'_>, ctx: &str| {
        for (k, q) in queries.iter().enumerate() {
            for &alpha in &alphas {
                let got = inc.run(q, alpha, &QueryOptions::default()).expect("query runs");
                let want = fresh.run(q, alpha, &QueryOptions::default()).expect("query runs");
                bench::workloads::assert_matches_bit_identical(
                    &got.matches,
                    &want.matches,
                    &format!("{ctx} query {k} alpha {alpha}"),
                );
            }
        }
    };

    let mut t = Table::new(&[
        "batch ops",
        "incremental",
        "full rebuild",
        "speedup",
        "dirty nodes",
        "reused comps",
    ]);
    let mut json_local: Vec<Json> = Vec::new();
    for batch in [1usize, 4, 16, 64] {
        // Each row mutates the same baseline: the variable is batch size,
        // not accumulated drift.
        let ops = random_ops(&refs0, &mut Rng(batch as u64 ^ 0xfeed), batch);

        let t0 = Instant::now();
        let up = pegmatch::live::apply_ops(&builder, &opts, &refs0, &peg0, &index0, &ops)
            .expect("incremental apply");
        let inc_time = t0.elapsed();

        let t0 = Instant::now();
        let fresh_peg = builder.build(&up.refs).expect("rebuild");
        let fresh_index = OfflineIndex::build(&fresh_peg, &opts).expect("rebuild index");
        let rebuild_time = t0.elapsed();

        let inc_pipe = QueryPipeline::new(&up.peg, &up.index);
        let fresh_pipe = QueryPipeline::new(&fresh_peg, &fresh_index);
        assert_row_bit_exact(&inc_pipe, &fresh_pipe, &format!("batch {batch}"));

        let speedup = rebuild_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-12);
        t.row(vec![
            batch.to_string(),
            fmt_duration(inc_time),
            fmt_duration(rebuild_time),
            format!("{speedup:.1}x"),
            up.n_dirty().to_string(),
            up.reused_components.to_string(),
        ]);
        json_local.push(
            obj()
                .field("batch_ops", batch)
                .field("incremental_us", inc_time.as_micros() as u64)
                .field("rebuild_us", rebuild_time.as_micros() as u64)
                .field("speedup", speedup)
                .field("dirty_nodes", up.n_dirty())
                .field("reused_components", up.reused_components)
                .field("bit_exact", true)
                .build(),
        );
    }
    t.print();
    println!("(every row bit-exact vs the from-scratch rebuild before timings count)");
    println!();

    // Distributed: the same contract through the sharded store, where the
    // win is recompiling only the shards the dirty ball touches.
    let shards = 3usize;
    let store = ShardedGraphStore::build(peg0.clone(), &opts, shards).expect("sharded build");
    let batch = 16usize;
    let ops = random_ops(&refs0, &mut Rng(batch as u64 ^ 0xdead), batch);

    let t0 = Instant::now();
    let (next, _next_refs, update) =
        store.apply_update(&refs0, &builder, &ops).expect("sharded incremental apply");
    let inc_time = t0.elapsed();

    let t0 = Instant::now();
    let mut fresh_refs = refs0.clone();
    fresh_refs.apply_all(&ops).expect("ops replay");
    let fresh_store =
        ShardedGraphStore::build(builder.build(&fresh_refs).expect("rebuild"), &opts, shards)
            .expect("sharded rebuild");
    let rebuild_time = t0.elapsed();

    assert_row_bit_exact(&next.pipeline(), &fresh_store.pipeline(), "sharded batch");
    let speedup = rebuild_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-12);
    println!(
        "distributed ({shards} shards, {batch}-op batch): incremental {} vs rebuild {} \
         ({speedup:.1}x), {}/{shards} shards recompiled, all bit-exact",
        fmt_duration(inc_time),
        fmt_duration(rebuild_time),
        update.rebuilt_shards,
    );
    println!();

    let report = obj()
        .field("experiment", "ablation-mutation")
        .field("scale", format!("{scale:?}").to_lowercase())
        .field("graph_size", scale.default_graph())
        .field("alphas", Json::Arr(alphas.iter().map(|&a| Json::Num(a)).collect()))
        .field("local", Json::Arr(json_local))
        .field(
            "distributed",
            obj()
                .field("shards", shards)
                .field("batch_ops", batch)
                .field("incremental_us", inc_time.as_micros() as u64)
                .field("rebuild_us", rebuild_time.as_micros() as u64)
                .field("speedup", speedup)
                .field("rebuilt_shards", update.rebuilt_shards)
                .field("n_dirty", update.n_dirty)
                .field("reused_components", update.reused_components)
                .field("bit_exact", true)
                .build(),
        )
        .build();
    std::fs::write("BENCH_mutation.json", format!("{report}\n")).expect("write BENCH json");
    println!("(wrote BENCH_mutation.json)");
    println!();
}

/// Serving: a repeated-shape query mix replayed by concurrent clients
/// against a live `pegserve` server.
///
/// Boots a server on a loopback port, loads a synthetic graph, and drives
/// `clients` threads each replaying its slice of a shapes×repeats mix of
/// isomorphic renumberings (the workload a multi-user front end produces).
/// Reports the per-graph plan-cache hit rate, admission counters, and
/// client-observed p50/p99 latency; then a deliberate overload burst
/// (admission-held slow queries beyond the session bound) shows that the
/// server answers every request with a structured `overloaded`/`timeout`
/// reply instead of hanging.
fn serving_mix(scale: Scale) {
    use bench::workloads::permuted_query;
    use pegserve::{obj, Client, Json, Server, ServerConfig};

    println!("## Serving: repeated-shape mix against a live server (alpha=0.5)");
    let refs = datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper_with_uncertainty(
        scale.default_graph(),
        0.2,
    ));
    let peg = pegmatch::model::PegBuilder::new().build(&refs).unwrap();
    let offline = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.3, ..Default::default() } },
    )
    .unwrap();
    let n_labels = peg.graph.label_table().len();

    // The mix: `shapes` distinct canonical shapes, each repeated as
    // isomorphic renumberings. Pattern text is rendered against the
    // graph's own label table before the graph moves into the server.
    let (n_shapes, repeats, clients) = (4usize, 16usize, 4usize);
    let shapes: Vec<QueryGraph> =
        (0..n_shapes as u64).map(|s| random_query(QuerySpec::new(5, 6), n_labels, s)).collect();
    let pattern_text =
        |q: &QueryGraph| pegmatch::pattern::format_pattern(q, peg.graph.label_table());
    let shape_patterns: Vec<String> = shapes.iter().map(&pattern_text).collect();
    let mix: Vec<String> = (0..n_shapes as u64)
        .flat_map(|s| {
            let base = &shapes[s as usize];
            (0..repeats as u64)
                .map(|r| pattern_text(&permuted_query(base, s * 1000 + r)))
                .collect::<Vec<_>>()
        })
        .collect();

    let config = ServerConfig {
        max_sessions: 4,
        queue_depth: 16,
        deadline: Duration::from_secs(10),
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    server.insert_graph("mix", peg, offline);
    let handle = server.spawn();
    let addr = handle.addr;

    // One warmup query per shape makes the steady-state hit rate
    // deterministic even under client concurrency.
    let mut warm = Client::connect(addr).unwrap();
    for pattern in &shape_patterns {
        let req = obj()
            .field("op", "query")
            .field("pattern", pattern.as_str())
            .field("alpha", 0.5)
            .build();
        let reply = warm.request(&req).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "warmup failed: {reply}");
    }
    let per_client = mix.len().div_ceil(clients);
    let t0 = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = mix
            .chunks(per_client)
            .map(|slice| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut out = Vec::with_capacity(slice.len());
                    for pattern in slice {
                        let req = obj()
                            .field("op", "query")
                            .field("pattern", pattern.as_str())
                            .field("alpha", 0.5)
                            .build();
                        let t = Instant::now();
                        let reply = client.request(&req).unwrap();
                        out.push(t.elapsed());
                        assert_eq!(
                            reply.get("ok"),
                            Some(&Json::Bool(true)),
                            "mix query failed: {reply}"
                        );
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();

    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
    let stats =
        Client::connect(addr).unwrap().request(&obj().field("op", "stats").build()).unwrap();
    let cache = stats.get("graphs").unwrap().as_arr().unwrap()[0].get("plan_cache").unwrap();
    let hit_rate = cache.get("hit_rate").unwrap().as_f64().unwrap();
    let admission = stats.get("admission").unwrap();

    let mut t = Table::new(&[
        "shapes",
        "queries",
        "clients",
        "wall",
        "p50",
        "p99",
        "plan-cache hit rate",
        "admitted",
        "peak sessions",
    ]);
    t.row(vec![
        n_shapes.to_string(),
        (mix.len() + n_shapes).to_string(),
        clients.to_string(),
        fmt_duration(wall),
        fmt_duration(pct(0.50)),
        fmt_duration(pct(0.99)),
        format!("{:.0}%", hit_rate * 100.0),
        admission.get("admitted").unwrap().as_u64().unwrap().to_string(),
        admission.get("peak_running").unwrap().as_u64().unwrap().to_string(),
    ]);
    t.print();
    assert!(
        hit_rate >= 0.80,
        "repeated-shape mix must hit the plan cache ≥80% (got {:.0}%)",
        hit_rate * 100.0
    );

    // Overload burst: 8 clients send admission-held queries at a server
    // bound of 4 sessions + 2 queue slots — at least two must be rejected
    // with a structured reply, and every client gets *some* reply.
    let burst_config = ServerConfig {
        max_sessions: 4,
        queue_depth: 2,
        deadline: Duration::from_millis(300),
        allow_debug_sleep: true,
        ..Default::default()
    };
    let burst_server = Server::bind("127.0.0.1:0", burst_config).unwrap();
    let refs =
        datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper_with_uncertainty(400, 0.2));
    let peg = pegmatch::model::PegBuilder::new().build(&refs).unwrap();
    let offline = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 1, beta: 0.3, ..Default::default() } },
    )
    .unwrap();
    burst_server.insert_graph("burst", peg, offline);
    let burst_handle = burst_server.spawn();
    let burst_addr = burst_handle.addr;
    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(burst_addr).unwrap();
                    let req = obj()
                        .field("op", "query")
                        .field("pattern", "(x:l0)-(y:l1)")
                        .field("alpha", 0.5)
                        .field("debug_sleep_ms", 600u64)
                        .build();
                    let reply = client.request(&req).unwrap();
                    match reply.get("error").and_then(Json::as_str) {
                        Some(code) => code.to_string(),
                        None => "ok".to_string(),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = outcomes.iter().filter(|o| *o == "ok").count();
    let rejected = outcomes.len() - ok;
    println!(
        "overload burst: {} requests -> {} served, {} rejected ({})",
        outcomes.len(),
        ok,
        rejected,
        {
            let mut codes: Vec<&str> =
                outcomes.iter().filter(|o| *o != "ok").map(String::as_str).collect();
            codes.sort_unstable();
            codes.dedup();
            codes.join("/")
        }
    );
    assert!(rejected >= 2, "overload must produce structured rejections, got {outcomes:?}");
    assert!(
        outcomes.iter().all(|o| matches!(o.as_str(), "ok" | "overloaded" | "timeout")),
        "unexpected outcome in {outcomes:?}"
    );
    burst_handle.shutdown().unwrap();
    handle.shutdown().unwrap();
    println!();
}

/// One match as `(nodes, prle bits, prn bits)` — the bit-exact contract
/// every serving front end must reproduce through the JSON round trip
/// (same triple the `serve_concurrent` integration test pins).
type MatchTriple = (Vec<u64>, u64, u64);

fn match_triples(result: &[pegmatch::matcher::Match]) -> Vec<MatchTriple> {
    result
        .iter()
        .map(|m| (m.nodes.iter().map(|e| e.0 as u64).collect(), m.prle.to_bits(), m.prn.to_bits()))
        .collect()
}

fn reply_match_triples(reply: &pegserve::Json) -> Vec<MatchTriple> {
    use pegserve::Json;
    reply
        .get("matches")
        .and_then(Json::as_arr)
        .expect("matches array")
        .iter()
        .map(|m| {
            (
                m.get("nodes")
                    .unwrap()
                    .as_arr()
                    .unwrap()
                    .iter()
                    .map(|n| n.as_u64().unwrap())
                    .collect(),
                m.get("prle").unwrap().as_f64().unwrap().to_bits(),
                m.get("prn").unwrap().as_f64().unwrap().to_bits(),
            )
        })
        .collect()
}

/// Nearest-rank percentile over a sorted latency list.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Saturation: concurrent-client sweeps over both serving front ends,
/// batched queries, and distributed scatter overlap.
///
/// Four sections, all checked bit-exact against the direct pipeline:
///
/// 1. **Front-end sweep** — N concurrent clients replay a repeated-shape
///    mix against a live server, once per front end (`threads`, and
///    `epoll` on Linux), reporting queries/sec and client-observed
///    p50/p99.
/// 2. **Connection ceiling** — a burst of 4× the thread front end's
///    `max_connections` held open at once: thread mode must shed the
///    overflow with structured `overloaded` replies, the epoll loop must
///    serve every one (the ≥4× concurrent-connection claim).
/// 3. **Batching** — the same queries shipped 1, 8, and 32 per round
///    trip via `query_batch`, amortizing the per-query wire tax.
/// 4. **Distributed overlap** — a coordinator + 2 loopback shard workers;
///    4 concurrent sessions on one graph must not serialize their
///    scatters per worker now that the worker wire is request-id
///    multiplexed (mean latency < 2× single-session when enough cores
///    exist for compute not to be the bottleneck).
///
/// Results also land in `BENCH_saturation.json` (working directory).
fn saturation(scale: Scale) {
    use pegserve::{obj, Client, Json, ServeMode, Server, ServerConfig};
    use std::net::SocketAddr;
    use std::sync::Barrier;

    println!("## Saturation: concurrent clients, front ends, batching (alpha=0.5)");
    let (size, thread_cap, sweep_threads, sweep_epoll, exchanges, batch_rounds): (
        usize,
        usize,
        Vec<usize>,
        Vec<usize>,
        usize,
        usize,
    ) = match scale {
        Scale::Tiny => (300, 16, vec![1, 4, 16], vec![1, 4, 16, 64], 4, 4),
        Scale::Small => (800, 64, vec![1, 4, 16, 64], vec![1, 4, 16, 64, 256], 6, 8),
        Scale::Paper => (2000, 64, vec![1, 4, 16, 64], vec![1, 4, 16, 64, 256], 10, 16),
    };
    let (beta, max_len, uncertainty) = (0.3, 2, 0.2);
    let w = Workload::synthetic(size, uncertainty, beta, max_len);
    let direct = QueryPipeline::new(&w.peg, w.index(max_len));
    let n_labels = w.peg.graph.label_table().len();
    let alpha = 0.5;

    // The mix: distinct shapes rendered to pattern text, with ground-truth
    // triples from the direct pipeline at the same thread count the server
    // is asked for (`threads: 1` keeps rows comparable across loads).
    let qopts = QueryOptions::with_threads(1);
    let mix: Vec<(String, Vec<MatchTriple>)> = (0..4u64)
        .map(|s| {
            let q = random_query(QuerySpec::new(4, 4), n_labels, s);
            let pattern = pegmatch::pattern::format_pattern(&q, w.peg.graph.label_table());
            let expected = match_triples(&direct.run(&q, alpha, &qopts).unwrap().matches);
            (pattern, expected)
        })
        .collect();

    // One concurrent sweep: N clients all start behind a barrier, each
    // replays `exchanges` queries off the shared mix, asserting every
    // reply ok and bit-identical. Returns (wall, sorted latencies).
    let run_sweep = |addr: SocketAddr, clients: usize| -> (Duration, Vec<Duration>) {
        let barrier = Barrier::new(clients);
        let t0 = Instant::now();
        let mut lat: Vec<Duration> = std::thread::scope(|scope| {
            let (barrier, mix) = (&barrier, &mix);
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        barrier.wait();
                        let mut out = Vec::with_capacity(exchanges);
                        for k in 0..exchanges {
                            let (pattern, expected) = &mix[(c + k) % mix.len()];
                            let req = obj()
                                .field("op", "query")
                                .field("pattern", pattern.as_str())
                                .field("alpha", alpha)
                                .field("threads", 1usize)
                                .build();
                            let t = Instant::now();
                            let reply = client.request(&req).unwrap();
                            out.push(t.elapsed());
                            assert_eq!(
                                reply.get("ok"),
                                Some(&Json::Bool(true)),
                                "saturation query failed: {reply}"
                            );
                            assert_eq!(
                                &reply_match_triples(&reply),
                                expected,
                                "saturation reply must be bit-identical"
                            );
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let wall = t0.elapsed();
        lat.sort_unstable();
        (wall, lat)
    };

    let config_for = |mode: ServeMode| ServerConfig {
        max_sessions: 4,
        queue_depth: 4 * thread_cap,
        deadline: Duration::from_secs(60),
        max_connections: match mode {
            ServeMode::Threads => thread_cap,
            ServeMode::Epoll => 1024,
        },
        serve_mode: mode,
        ..Default::default()
    };
    if !cfg!(target_os = "linux") {
        println!("(epoll front end is linux-only; sweeping threads mode alone)");
    }

    // One long-lived server per front end, sharing the same graph copy —
    // the sweep, the connection-ceiling burst, and the batch rows all run
    // against these two.
    let offline = w.index(max_len).clone();
    let threads_server = {
        let s = Server::bind("127.0.0.1:0", config_for(ServeMode::Threads)).unwrap();
        s.insert_graph("sat", w.peg.clone(), offline.clone());
        s.spawn()
    };
    let epoll_server = if cfg!(target_os = "linux") {
        let s = Server::bind("127.0.0.1:0", config_for(ServeMode::Epoll)).unwrap();
        s.insert_graph("sat", w.peg.clone(), offline.clone());
        Some(s.spawn())
    } else {
        None
    };

    let mut t =
        Table::new(&["front end", "clients", "queries", "wall", "qps", "p50", "p99", "max"]);
    let mut json_sweep: Vec<Json> = Vec::new();
    let sweeps: Vec<(&str, SocketAddr, &Vec<usize>)> = {
        let mut v = vec![("threads", threads_server.addr, &sweep_threads)];
        if let Some(h) = &epoll_server {
            v.push(("epoll", h.addr, &sweep_epoll));
        }
        v
    };
    for &(mode_name, addr, sweep) in &sweeps {
        for &clients in sweep {
            let (wall, lat) = run_sweep(addr, clients);
            let queries = clients * exchanges;
            let qps = queries as f64 / wall.as_secs_f64().max(1e-9);
            t.row(vec![
                mode_name.into(),
                clients.to_string(),
                queries.to_string(),
                fmt_duration(wall),
                format!("{qps:.0}"),
                fmt_duration(percentile(&lat, 50.0)),
                fmt_duration(percentile(&lat, 99.0)),
                fmt_duration(*lat.last().unwrap()),
            ]);
            json_sweep.push(
                obj()
                    .field("mode", mode_name)
                    .field("clients", clients)
                    .field("queries", queries)
                    .field("wall_us", wall.as_micros() as u64)
                    .field("qps", qps)
                    .field("p50_us", percentile(&lat, 50.0).as_micros() as u64)
                    .field("p99_us", percentile(&lat, 99.0).as_micros() as u64)
                    .build(),
            );
        }
    }
    t.print();
    println!("(every reply bit-exact vs the direct pipeline)");
    println!();

    // Connection ceiling: hold `burst` connections open at once and send
    // one query on each. The thread front end sheds everything past its
    // `max_connections` with a structured `overloaded` line; the epoll
    // loop serves the whole burst through the same admission bounds.
    let burst = 4 * thread_cap;
    let hold_burst = |addr: SocketAddr, n: usize| -> (usize, usize) {
        let start = Barrier::new(n);
        let done = Barrier::new(n);
        let outcomes: Vec<bool> = std::thread::scope(|scope| {
            let (start, done, mix) = (&start, &done, &mix);
            let handles: Vec<_> = (0..n)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).ok();
                        start.wait();
                        let ok = match client.as_mut() {
                            Some(client) => {
                                let (pattern, _) = &mix[c % mix.len()];
                                let req = obj()
                                    .field("op", "query")
                                    .field("pattern", pattern.as_str())
                                    .field("alpha", alpha)
                                    .field("threads", 1usize)
                                    .build();
                                match client.request(&req) {
                                    Ok(reply) => reply.get("ok") == Some(&Json::Bool(true)),
                                    Err(_) => false,
                                }
                            }
                            None => false,
                        };
                        // Hold the connection (borrowed, not consumed, by the
                        // request above) until the whole burst has its reply:
                        // a client that closed early would free its handler
                        // slot and let the server admit past the cap.
                        done.wait();
                        drop(client);
                        ok
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let served = outcomes.iter().filter(|&&ok| ok).count();
        (served, n - served)
    };

    let mut json_ceiling = obj().field("burst", burst).field("threads_cap", thread_cap);
    {
        let (served, shed) = hold_burst(threads_server.addr, burst);
        println!(
            "connection ceiling, threads (cap {thread_cap}): burst {burst} -> \
             {served} served, {shed} shed with structured overload"
        );
        assert!(
            served <= thread_cap,
            "thread front end must cap concurrent connections at {thread_cap}, served {served}"
        );
        json_ceiling = json_ceiling.field("threads_served", served);
    }
    if let Some(h) = &epoll_server {
        let (served, shed) = hold_burst(h.addr, burst);
        println!(
            "connection ceiling, epoll (cap 1024): burst {burst} -> {served} served, {shed} shed"
        );
        assert_eq!(
            served, burst,
            "epoll front end must hold 4x the thread mode's concurrent connections"
        );
        json_ceiling = json_ceiling.field("epoll_served", served);
    }
    println!();

    // Batching: the same mix shipped 1 (plain `query`), 8, and 32 per
    // round trip. The per-query wire tax — one request line, one reply
    // line, two syscalls each way — amortizes across the batch.
    let mut client = Client::connect(threads_server.addr).unwrap();
    let mut t = Table::new(&["batch", "round trips", "queries", "wall", "per query"]);
    let mut json_batch: Vec<Json> = Vec::new();
    for batch in [1usize, 8, 32] {
        let t0 = Instant::now();
        let mut queries = 0usize;
        for round in 0..batch_rounds {
            if batch == 1 {
                let (pattern, expected) = &mix[round % mix.len()];
                let req = obj()
                    .field("op", "query")
                    .field("pattern", pattern.as_str())
                    .field("alpha", alpha)
                    .field("threads", 1usize)
                    .build();
                let reply = client.request(&req).unwrap();
                assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
                assert_eq!(&reply_match_triples(&reply), expected, "batch=1 bit-exact");
                queries += 1;
            } else {
                let items: Vec<Json> = (0..batch)
                    .map(|k| {
                        let (pattern, _) = &mix[(round + k) % mix.len()];
                        obj().field("pattern", pattern.as_str()).field("alpha", alpha).build()
                    })
                    .collect();
                let req = obj()
                    .field("op", "query_batch")
                    .field("queries", Json::Arr(items))
                    .field("threads", 1usize)
                    .build();
                let reply = client.request(&req).unwrap();
                assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
                let results = reply.get("results").and_then(Json::as_arr).unwrap();
                assert_eq!(results.len(), batch, "{reply}");
                for (k, item) in results.iter().enumerate() {
                    let (_, expected) = &mix[(round + k) % mix.len()];
                    assert_eq!(
                        &reply_match_triples(item),
                        expected,
                        "batch={batch} item {k} bit-exact"
                    );
                }
                queries += batch;
            }
        }
        let wall = t0.elapsed();
        let per_query = wall / queries.max(1) as u32;
        t.row(vec![
            batch.to_string(),
            batch_rounds.to_string(),
            queries.to_string(),
            fmt_duration(wall),
            fmt_duration(per_query),
        ]);
        json_batch.push(
            obj()
                .field("batch", batch)
                .field("queries", queries)
                .field("wall_us", wall.as_micros() as u64)
                .field("per_query_us", per_query.as_micros() as u64)
                .build(),
        );
    }
    // Handler threads block on their connection reads; drop the client
    // before joining the thread front end.
    drop(client);
    threads_server.shutdown().unwrap();
    if let Some(h) = epoll_server {
        h.shutdown().unwrap();
    }
    t.print();
    println!("(every batched result bit-exact vs the direct pipeline)");
    println!();

    // Distributed overlap: coordinator + 2 loopback shard workers, graph
    // loaded over the wire. 4 concurrent sessions share the multiplexed
    // worker connections, so their scatters interleave in flight instead
    // of queueing behind a per-worker exchange lock.
    let workers: Vec<_> = (0..2)
        .map(|_| Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn())
        .collect();
    let worker_addrs: Vec<Json> = workers.iter().map(|h| Json::Str(h.addr.to_string())).collect();
    let coord = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 4,
            queue_depth: 16,
            deadline: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .unwrap()
    .spawn();
    let mut admin = Client::connect(coord.addr).unwrap();
    let reply = admin
        .request(
            &obj()
                .field("op", "load_graph")
                .field("name", "dist")
                .field("kind", "synthetic")
                .field("size", size)
                .field("seed", 42u64)
                .field("uncertainty", uncertainty)
                .field("max_len", max_len)
                .field("beta", beta)
                .field("workers", Json::Arr(worker_addrs))
                .build(),
        )
        .unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "distributed load failed: {reply}");

    let dist_exchanges = mix.len() * 2;
    let run_session = |client: &mut Client| -> Vec<Duration> {
        let mut out = Vec::with_capacity(dist_exchanges);
        for k in 0..dist_exchanges {
            let (pattern, expected) = &mix[k % mix.len()];
            let req = obj()
                .field("op", "query")
                .field("graph", "dist")
                .field("pattern", pattern.as_str())
                .field("alpha", alpha)
                .field("threads", 1usize)
                .build();
            let t = Instant::now();
            let reply = client.request(&req).unwrap();
            out.push(t.elapsed());
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
            assert_eq!(&reply_match_triples(&reply), expected, "distributed bit-exact");
        }
        out
    };
    let single: Vec<Duration> = run_session(&mut Client::connect(coord.addr).unwrap());
    let avg =
        |lat: &[Duration]| -> Duration { lat.iter().sum::<Duration>() / lat.len().max(1) as u32 };
    let avg_single = avg(&single);
    let coord_addr = coord.addr;
    let concurrent: Vec<Duration> = std::thread::scope(|scope| {
        let run_session = &run_session;
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(move || run_session(&mut Client::connect(coord_addr).unwrap())))
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let avg_concurrent = avg(&concurrent);
    let ratio = avg_concurrent.as_secs_f64() / avg_single.as_secs_f64().max(1e-9);
    println!(
        "distributed (2 workers): single-session avg {}, 4-session avg {} ({ratio:.2}x)",
        fmt_duration(avg_single),
        fmt_duration(avg_concurrent),
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores >= 4 {
        assert!(
            ratio < 2.0,
            "multiplexed scatters must overlap: 4 concurrent sessions ran at {ratio:.2}x \
             single-session latency"
        );
    } else {
        println!("({cores} core(s): compute serializes, the <2x overlap bound is not enforced)");
    }

    // One distributed query_batch round trip — prefetched scatters feed
    // the per-item sessions, every item still bit-exact.
    let items: Vec<Json> = mix
        .iter()
        .map(|(pattern, _)| obj().field("pattern", pattern.as_str()).field("alpha", alpha).build())
        .collect();
    let reply = admin
        .request(
            &obj()
                .field("op", "query_batch")
                .field("graph", "dist")
                .field("queries", Json::Arr(items))
                .field("threads", 1usize)
                .build(),
        )
        .unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    let results = reply.get("results").and_then(Json::as_arr).unwrap();
    for (k, item) in results.iter().enumerate() {
        assert_eq!(&reply_match_triples(item), &mix[k].1, "distributed batch item {k}");
    }
    println!("distributed query_batch: {} queries in one round trip, all bit-exact", mix.len());
    // Unloading drops the coordinator's worker transport (closing the
    // multiplexed connections), so the workers' handler threads see EOF
    // and their accept loops can join cleanly.
    let reply =
        admin.request(&obj().field("op", "unload_graph").field("graph", "dist").build()).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    drop(admin);
    coord.shutdown().unwrap();
    for h in workers {
        let _ = h.shutdown();
    }
    println!();

    let report = obj()
        .field("experiment", "saturation")
        .field("scale", format!("{scale:?}").to_lowercase())
        .field("graph_size", size)
        .field("sweep", Json::Arr(json_sweep))
        .field("connection_ceiling", json_ceiling.build())
        .field("batching", Json::Arr(json_batch))
        .field(
            "distributed",
            obj()
                .field("workers", 2usize)
                .field("single_session_avg_us", avg_single.as_micros() as u64)
                .field("concurrent4_avg_us", avg_concurrent.as_micros() as u64)
                .field("overlap_ratio", ratio)
                .field("cores", cores)
                .build(),
        )
        .build();
    std::fs::write("BENCH_saturation.json", format!("{report}\n")).expect("write BENCH json");
    println!("(wrote BENCH_saturation.json)");
    println!();
}

/// Ablation: the exact pipeline vs Monte Carlo possible-world sampling.
fn ablation_montecarlo(scale: Scale) {
    use pegmatch::baseline::{match_montecarlo, McOptions};
    println!("## Ablation: exact pipeline vs Monte Carlo sampling (q(4,4), alpha=0.3)");
    let w = Workload::synthetic(scale.default_graph(), 0.4, 0.3, 2);
    let n_labels = w.peg.graph.label_table().len();
    let q = random_query(QuerySpec::new(4, 4), n_labels, 2);

    let pipe = QueryPipeline::new(&w.peg, w.index(2));
    let t0 = Instant::now();
    let exact = pipe.run(&q, 0.3, &QueryOptions::default()).unwrap().matches;
    let exact_time = t0.elapsed();
    println!("exact pipeline: {} matches in {}", exact.len(), fmt_duration(exact_time));

    let mut t = Table::new(&["samples", "time", "matches", "max |err|", "max stderr"]);
    for samples in [100usize, 1_000, 10_000] {
        let t0 = Instant::now();
        let est = match_montecarlo(&w.peg, &q, 0.3, &McOptions { samples, seed: 1 });
        let elapsed = t0.elapsed();
        // Compare estimates against the exact probabilities where both agree.
        let mut max_err = 0.0f64;
        let mut max_se = 0.0f64;
        for e in &est {
            if let Some(m) = exact.iter().find(|m| m.nodes == e.nodes) {
                max_err = max_err.max((e.estimate - m.prob()).abs());
            }
            max_se = max_se.max(e.std_error);
        }
        t.row(vec![
            samples.to_string(),
            fmt_duration(elapsed),
            est.len().to_string(),
            format!("{max_err:.4}"),
            format!("{max_se:.4}"),
        ]);
    }
    t.print();
    println!();
}
