//! `pegcli` — command-line front end for the pegmatch system.
//!
//! ```text
//! pegcli generate --kind synthetic --size 2000 --out graph.kv
//! pegcli index --graph graph.kv --out index.kv --max-len 2 --beta 0.3
//! pegcli query --graph graph.kv --index index.kv \
//!              --pattern '(x:l0)-(y:l1), (y)-(z:l0)' --alpha 0.4
//! pegcli topk  --graph graph.kv --index index.kv \
//!              --pattern '(x:l0)-(y:l1)' --k 5
//! ```
//!
//! Graphs and indexes persist in kvstore B+-tree files, mirroring the
//! paper's offline/online split. Note: the persisted graph is the *entity*
//! graph; identity marginals are rebuilt from reference sets only when the
//! graph is generated in-process, so `query` recomputes the existence model
//! from the generator (same seed) for `--kind` workloads.

use datagen::{dblp_like, imdb_like, synthetic_refgraph, DblpConfig, ImdbConfig, SyntheticConfig};
use graphstore::persist::save_entity_graph;
use graphstore::RefGraph;
use kvstore::BTreeStore;
use pathindex::disk::{load_index, save_index};
use pathindex::PathIndexConfig;
use pegmatch::model::{Peg, PegBuilder};
use pegmatch::offline::{ContextInfo, OfflineIndex, OfflineOptions, OfflineStats};
use pegmatch::online::{ExecCache, PlanCache, QueryOptions, QueryPipeline};
use pegmatch::query::{QNode, QueryGraph};
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "index" => cmd_index(&flags),
        "query" => cmd_query(&flags, false),
        "topk" => cmd_query(&flags, true),
        "stats" => cmd_stats(&flags),
        "serve" => cmd_serve(&flags),
        "shard-worker" => cmd_shard_worker(&flags),
        "client" => cmd_client(&flags),
        "explain" => cmd_explain(&flags),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "pegcli — subgraph pattern matching over uncertain graphs\n\
         \n\
         commands:\n\
         \x20 generate --kind synthetic|dblp|imdb --size N --out FILE [--seed S] [--uncertainty F]\n\
         \x20 index    --kind ... --size N [--seed S] --out FILE [--max-len L] [--beta B]\n\
         \x20 query    --kind ... --size N [--seed S] [--index FILE]\n\
         \x20          --pattern '(x:a)-(y:b), (y)-(z:a)' [--alpha A]\n\
         \x20          [--explain] [--limit N] [--threads T] [--shards N]\n\
         \x20          [--repeat N] [--plan-cache-stats] [--exec-cache-bytes N]\n\
         \x20          (exec cache is off by default for one-shot runs; a nonzero byte\n\
         \x20          budget reuses floor-threshold retrievals across --repeat runs)\n\
         \x20          (or: --labels a,b,c --edges 0-1,1-2)\n\
         \x20 topk     (same as query, plus --k K)\n\
         \x20 stats    --kind ... --size N [--seed S]\n\
         \x20 serve    --addr HOST:PORT [--kind ... --size N [--seed S] [--max-len L] [--beta B]\n\
         \x20          [--shards N] [--name G]] [--max-sessions N] [--queue-depth N]\n\
         \x20          [--deadline-ms MS] [--max-connections N]\n\
         \x20          [--serve-mode threads|epoll]   (connection front end; epoll scales\n\
         \x20          idle-connection count far past thread-per-connection, Linux only)\n\
         \x20          [--workers A1,A2,...]  (distribute retrieval across shard-worker\n\
         \x20          processes, one shard per worker; needs --kind)\n\
         \x20          [--worker-timeout-ms MS]   (wire deadline per worker exchange)\n\
         \x20          [--exec-cache-bytes N]   (execution-cache byte budget; default 64 MiB,\n\
         \x20          0 disables; per-graph opt-out via load_graph \"exec_cache\":false)\n\
         \x20          [--slow-query-ms MS]   (log a structured JSON line to stderr for every\n\
         \x20          query slower than MS, and count it in the metrics registry)\n\
         \x20          [--debug-sleep]   (honor debug_sleep_ms requests — admission drills)\n\
         \x20 shard-worker --addr HOST:PORT [--max-sessions N] [--queue-depth N]\n\
         \x20          [--serve-mode threads|epoll]\n\
         \x20          (a shard-worker process; a coordinator assigns it a shard via\n\
         \x20          load_graph workers=[...] and scatters shard_retrieve requests to it)\n\
         \x20 client   --addr HOST:PORT [--json REQUEST] [--pretty]   (no --json: one request\n\
         \x20          line per stdin line; replies print to stdout; --json exits non-zero on\n\
         \x20          a structured error reply; --pretty renders stats replies' per-worker\n\
         \x20          counters as a table on stderr)\n\
         \x20 client   --addr HOST:PORT --clients N [--duration-ms MS] [--batch B]\n\
         \x20          [--pattern P] [--alpha A] [--pretty]   (load generator: N connections\n\
         \x20          fire the query — batched B-per-line when B>1 — for MS; prints q/s and\n\
         \x20          p50/p99, --pretty adds a per-client latency percentile table)\n\
         \x20 client   --addr HOST:PORT --metrics [--poll N] [--interval-ms MS]   (fetch the\n\
         \x20          server's metrics registry — counters + latency histograms — and render\n\
         \x20          it as tables; --poll repeats N times, MS apart)\n\
         \x20 explain  --addr HOST:PORT --pattern P [--graph G] [--alpha A] [--limit N]\n\
         \x20          [--threads T]   (run the query traced on the server and pretty-print\n\
         \x20          the plan summary plus the full span tree, flame-style; on a\n\
         \x20          distributed graph the tree includes worker-side scatter spans)"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // A flag followed by another flag (or nothing) is boolean.
            match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(value) => {
                    out.insert(name.to_string(), value.clone());
                    i += 2;
                }
                None => {
                    out.insert(name.to_string(), String::new());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(|s| s.as_str()).ok_or_else(|| format!("missing --{key}"))
}

fn refgraph_from_flags(flags: &HashMap<String, String>) -> Result<RefGraph, String> {
    let kind = get(flags, "kind")?;
    let size: usize = get(flags, "size")?.parse().map_err(|_| "bad --size".to_string())?;
    let seed: u64 = flags.get("seed").map(|s| s.parse().unwrap_or(42)).unwrap_or(42);
    let uncertainty: f64 =
        flags.get("uncertainty").map(|s| s.parse().unwrap_or(0.2)).unwrap_or(0.2);
    Ok(match kind {
        "synthetic" => synthetic_refgraph(&SyntheticConfig {
            seed,
            ..SyntheticConfig::paper_with_uncertainty(size, uncertainty)
        }),
        "dblp" => dblp_like(&DblpConfig { seed, ..DblpConfig::scaled(size) }),
        "imdb" => imdb_like(&ImdbConfig { seed, ..ImdbConfig::scaled(size) }),
        other => return Err(format!("unknown --kind {other}")),
    })
}

fn peg_from_flags(flags: &HashMap<String, String>) -> Result<Peg, String> {
    let refs = refgraph_from_flags(flags)?;
    PegBuilder::new().build(&refs).map_err(|e| e.to_string())
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = get(flags, "out")?;
    let peg = peg_from_flags(flags)?;
    let mut store = BTreeStore::create(std::path::Path::new(out)).map_err(|e| e.to_string())?;
    save_entity_graph(&peg.graph, &mut store).map_err(|e| e.to_string())?;
    store.flush().map_err(|e| e.to_string())?;
    println!(
        "wrote entity graph: {} nodes, {} edges -> {} ({} KiB)",
        peg.graph.n_nodes(),
        peg.graph.n_edges(),
        out,
        store.file_len() / 1024
    );
    Ok(())
}

fn offline_opts(flags: &HashMap<String, String>) -> OfflineOptions {
    let max_len: usize = flags.get("max-len").map(|s| s.parse().unwrap_or(2)).unwrap_or(2);
    let beta: f64 = flags.get("beta").map(|s| s.parse().unwrap_or(0.3)).unwrap_or(0.3);
    OfflineOptions { index: PathIndexConfig { max_len, beta, ..Default::default() } }
}

fn cmd_index(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = get(flags, "out")?;
    let peg = peg_from_flags(flags)?;
    let offline = OfflineIndex::build(&peg, &offline_opts(flags)).map_err(|e| e.to_string())?;
    let mut store = BTreeStore::create(std::path::Path::new(out)).map_err(|e| e.to_string())?;
    save_index(&offline.paths, &mut store).map_err(|e| e.to_string())?;
    store.flush().map_err(|e| e.to_string())?;
    println!(
        "wrote path index: {} entries across {} sequences in {} -> {} ({} KiB)",
        offline.paths.n_entries(),
        offline.paths.n_sequences(),
        bench::fmt_duration(offline.stats.index_time),
        out,
        store.file_len() / 1024
    );
    Ok(())
}

fn parse_query(flags: &HashMap<String, String>, peg: &Peg) -> Result<QueryGraph, String> {
    let table = peg.graph.label_table();
    // Preferred form: the textual pattern syntax.
    if let Some(pattern) = flags.get("pattern") {
        return pegmatch::pattern::parse_pattern(pattern, table).map_err(|e| e.to_string());
    }
    // Legacy form: --labels a,b,c --edges 0-1,1-2.
    let label_names: Vec<&str> = get(flags, "labels")?.split(',').collect();
    let labels = label_names
        .iter()
        .map(|n| {
            table.get(n).ok_or_else(|| format!("unknown label '{n}' (have {:?})", table.names()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut edges: Vec<(QNode, QNode)> = Vec::new();
    if let Some(spec) = flags.get("edges") {
        for pair in spec.split(',').filter(|s| !s.is_empty()) {
            let (a, b) =
                pair.split_once('-').ok_or_else(|| format!("bad edge '{pair}', expected A-B"))?;
            let a: QNode = a.parse().map_err(|_| format!("bad edge endpoint '{a}'"))?;
            let b: QNode = b.parse().map_err(|_| format!("bad edge endpoint '{b}'"))?;
            edges.push((a, b));
        }
    }
    QueryGraph::new(labels, edges).map_err(|e| e.to_string())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let peg = peg_from_flags(flags)?;
    let s = graphstore::GraphStats::compute(&peg.graph);
    println!("entity graph statistics");
    println!("  nodes:              {}", s.n_nodes);
    println!("  edges:              {}", s.n_edges);
    println!("  avg degree:         {:.2}", s.avg_degree);
    println!("  max degree:         {}", s.max_degree);
    println!("  components:         {} (largest {})", s.n_components, s.largest_component);
    println!("  uncertain nodes:    {}", s.uncertain_nodes);
    println!("  uncertain edges:    {}", s.uncertain_edges);
    println!("  merged entities:    {}", s.merged_entities);
    println!("  identity components: {}", peg.existence.n_components());
    Ok(())
}

/// Online options from flags: `--threads 0` (default) = all cores,
/// `--threads 1` = sequential; results are identical either way.
fn query_opts(flags: &HashMap<String, String>) -> QueryOptions {
    let threads: usize = flags.get("threads").map(|s| s.parse().unwrap_or(0)).unwrap_or(0);
    QueryOptions { threads, ..Default::default() }
}

fn server_config(flags: &HashMap<String, String>) -> Result<pegserve::ServerConfig, String> {
    let serve_mode = match flags.get("serve-mode") {
        None => pegserve::ServeMode::default(),
        Some(s) => s.parse()?,
    };
    Ok(pegserve::ServerConfig {
        max_sessions: flags.get("max-sessions").and_then(|s| s.parse().ok()).unwrap_or(4),
        queue_depth: flags.get("queue-depth").and_then(|s| s.parse().ok()).unwrap_or(16),
        deadline: std::time::Duration::from_millis(
            flags.get("deadline-ms").and_then(|s| s.parse().ok()).unwrap_or(5000),
        ),
        max_connections: flags.get("max-connections").and_then(|s| s.parse().ok()).unwrap_or(256),
        allow_debug_sleep: flags.contains_key("debug-sleep"),
        serve_mode,
        // Servers default the execution cache on (repeated-shape mixes
        // are their whole reason to exist); --exec-cache-bytes 0 disables.
        exec_cache_bytes: flags
            .get("exec-cache-bytes")
            .and_then(|s| s.parse().ok())
            .unwrap_or(pegmatch::online::DEFAULT_EXEC_CACHE_BYTES),
        slow_query_ms: flags.get("slow-query-ms").and_then(|s| s.parse().ok()),
    })
}

/// `pegcli serve`: boot the multi-client query server. With `--kind` a
/// graph is generated and indexed in-process before listening (named by
/// `--name`, default `default`); otherwise clients send `load_graph`.
/// With `--workers a,b,...` (requires `--kind`) the graph goes
/// distributed: one shard per worker process, retrieval scattered over
/// TCP, everything else (and every result bit) identical.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7878");
    let server = pegserve::Server::bind(addr, server_config(flags)?).map_err(|e| e.to_string())?;
    let workers: Vec<String> = flags
        .get("workers")
        .map(|w| w.split(',').filter(|a| !a.is_empty()).map(str::to_string).collect())
        .unwrap_or_default();
    if !workers.is_empty() && !flags.contains_key("kind") {
        return Err("--workers needs --kind: workers rebuild their shard from the spec".into());
    }
    if !workers.is_empty() {
        // One shard per worker; a conflicting --shards must fail loudly
        // (the wire protocol's load_graph rejects the same combination).
        if let Some(shards) = flags.get("shards").and_then(|s| s.parse::<usize>().ok()) {
            if shards != workers.len() {
                return Err(format!(
                    "--shards {shards} conflicts with {} --workers (one shard per worker); \
                     drop --shards or match the worker count",
                    workers.len()
                ));
            }
        }
    }
    if flags.contains_key("kind") {
        // Keep the reference network around: serve-time graphs register
        // live, so `update_graph` can mutate them incrementally.
        let refs = refgraph_from_flags(flags)?;
        let peg = PegBuilder::new().build(&refs).map_err(|e| e.to_string())?;
        let name = flags.get("name").map(String::as_str).unwrap_or("default");
        let offline_opts = offline_opts(flags);
        let shards: usize = flags.get("shards").map(|s| s.parse().unwrap_or(1)).unwrap_or(1).max(1);
        println!(
            "loaded graph '{}': {} nodes, {} edges{}",
            name,
            peg.graph.n_nodes(),
            peg.graph.n_edges(),
            if !workers.is_empty() {
                format!(", {} worker shard(s)", workers.len())
            } else if shards > 1 {
                format!(", {shards} shards")
            } else {
                String::new()
            }
        );
        if !workers.is_empty() {
            let spec = pegserve::GraphSpec {
                kind: get(flags, "kind")?.to_string(),
                size: get(flags, "size")?.parse().map_err(|_| "bad --size".to_string())?,
                seed: flags.get("seed").map(|s| s.parse().unwrap_or(42)).unwrap_or(42),
                uncertainty: flags
                    .get("uncertainty")
                    .map(|s| s.parse().unwrap_or(0.2))
                    .unwrap_or(0.2),
            };
            let timeout_ms: u64 =
                flags.get("worker-timeout-ms").and_then(|s| s.parse().ok()).unwrap_or(30_000);
            let config = pegshard::TcpTransportConfig {
                io_timeout: std::time::Duration::from_millis(timeout_ms),
                ..Default::default()
            };
            let transport = pegshard::TcpTransport::connect(name, &workers, config)
                .map_err(|e| e.to_string())?;
            let store =
                pegshard::ShardedGraphStore::connect(peg, &offline_opts, transport, |s, n| {
                    spec.shard_load_json(name, &offline_opts.index, s, n)
                })
                .map_err(|e| e.to_string())?;
            let st = store.stats();
            println!(
                "workers built {} shard(s): {} replicated node(s) (factor {:.3}) in {}",
                st.n_shards,
                st.replicated_nodes,
                st.replication_factor,
                bench::fmt_duration(st.build_time),
            );
            server.insert_sharded_graph(name, store, Some(refs));
        } else if shards > 1 {
            let store = pegshard::ShardedGraphStore::build(peg, &offline_opts, shards)
                .map_err(|e| e.to_string())?;
            server.insert_sharded_graph(name, store, Some(refs));
        } else {
            let offline = OfflineIndex::build(&peg, &offline_opts).map_err(|e| e.to_string())?;
            server.insert_live_graph(name, refs, peg, offline, offline_opts.clone());
        }
    }
    println!("pegserve listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.serve().map_err(|e| e.to_string())
}

/// `pegcli shard-worker`: boot a shard-worker process. A worker is a
/// `pegserve` server that starts empty and waits for a coordinator to
/// assign it a shard (`shard_load`, sent by the coordinator's
/// `load_graph` with `workers=[...]`), then answers `shard_retrieve`
/// scatters. It handles `shutdown` like any server, and a coordinator
/// dying mid-exchange just closes the connection (Rust ignores SIGPIPE;
/// the write error ends that handler thread, the worker keeps serving).
fn cmd_shard_worker(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7879");
    let server = pegserve::Server::bind(addr, server_config(flags)?).map_err(|e| e.to_string())?;
    println!("pegshard worker listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.serve().map_err(|e| e.to_string())
}

/// `pegcli client`: send line-delimited JSON requests to a running server.
/// `--json REQ` sends one request; without it, each stdin line is a
/// request. Reply lines print to stdout verbatim (greppable in scripts).
///
/// In `--json` one-shot mode the process exits non-zero when the server's
/// reply is a structured error (`"ok":false` — `bad_request`,
/// `unknown_graph`, `not_found`, `overloaded`, `timeout`, `internal`), so
/// scripts can branch on `$?` instead of parsing every reply. The reply
/// line still prints to stdout either way.
/// With `--pretty`, renders a `stats` reply's per-worker transport
/// counters as a table on **stderr** (stdout keeps the raw greppable
/// reply line either way).
fn pretty_print_workers(reply: &pegserve::Json) {
    use pegserve::Json;
    // Server-wide execution-cache counters (stats replies from a server
    // running with a nonzero exec-cache budget).
    if let Some(ec) = reply.get("exec_cache") {
        let num = |k: &str| ec.get(k).and_then(Json::as_u64).unwrap_or(0);
        let rate = ec.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0);
        eprintln!(
            "exec cache: {} hit(s), {} miss(es) ({:.0}% hit rate), {} entr(ies) holding \
             {} KiB of {} KiB budget, {} eviction(s)",
            num("hits"),
            num("misses"),
            rate * 100.0,
            num("entries"),
            num("bytes") / 1024,
            num("budget") / 1024,
            num("evictions"),
        );
    }
    let Some(graphs) = reply.get("graphs").and_then(Json::as_arr) else {
        return;
    };
    for g in graphs {
        let name = g.get("name").and_then(Json::as_str).unwrap_or("?");
        if let Some(ec) = g.get("exec_cache") {
            let num = |k: &str| ec.get(k).and_then(Json::as_u64).unwrap_or(0);
            eprintln!(
                "exec cache of graph '{name}': epoch {}, {} entr(ies), {} KiB",
                num("epoch"),
                num("entries"),
                num("bytes") / 1024,
            );
        }
        let Some(workers) = g.get("workers").and_then(Json::as_arr) else {
            continue;
        };
        eprintln!("workers of graph '{name}':");
        eprintln!(
            "  {:>5}  {:<21}  {:>9}  {:>12}  {:>12}  {:>10}  {:>9}  {:>9}  {:>10}  {:>12}",
            "shard",
            "addr",
            "requests",
            "bytes tx",
            "bytes rx",
            "reconnects",
            "p50",
            "p99",
            "tombstones",
            "inflight hwm"
        );
        for w in workers {
            let num = |k: &str| w.get(k).and_then(Json::as_u64).unwrap_or(0);
            eprintln!(
                "  {:>5}  {:<21}  {:>9}  {:>12}  {:>12}  {:>10}  {:>9}  {:>9}  {:>10}  {:>12}",
                num("shard"),
                w.get("addr").and_then(Json::as_str).unwrap_or("?"),
                num("requests"),
                num("bytes_tx"),
                num("bytes_rx"),
                num("reconnects"),
                bench::fmt_duration(std::time::Duration::from_micros(num("p50_us"))),
                bench::fmt_duration(std::time::Duration::from_micros(num("p99_us"))),
                num("mux_tombstones"),
                num("mux_inflight_hwm"),
            );
        }
    }
}

fn us(v: u64) -> String {
    bench::fmt_duration(std::time::Duration::from_micros(v))
}

/// One span tag value as display text (`k=v` tails on span lines).
fn tag_text(v: &pegserve::Json) -> String {
    use pegserve::Json;
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => format!("{}", *n as i64),
        other => other.to_string(),
    }
}

/// Indented flame-style rendering of one span subtree: name, wall time,
/// a bar proportional to the root's wall time, then `k=v` tags.
/// Children follow in attach order — which the tracer guarantees is
/// stage order locally and shard-index order for scatter units, so the
/// same query renders the same tree every run.
fn render_span(node: &pegserve::Json, depth: usize, root_us: u64) {
    use pegserve::Json;
    let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
    let elapsed = node.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0);
    let share = if root_us > 0 { (elapsed as f64 / root_us as f64).min(1.0) } else { 0.0 };
    let bar = "#".repeat((share * 24.0).round() as usize);
    let mut tags: Vec<String> = Vec::new();
    if let Some(pairs) = node.get("tags").and_then(Json::as_arr) {
        for p in pairs {
            if let Some(pair) = p.as_arr().filter(|p| p.len() == 2) {
                if let Some(k) = pair[0].as_str() {
                    tags.push(format!("{k}={}", tag_text(&pair[1])));
                }
            }
        }
    }
    let label = format!("{:indent$}{name}", "", indent = depth * 2);
    println!("  {label:<30} {:>9}  {bar:<24}  {}", us(elapsed), tags.join(" "));
    if let Some(children) = node.get("children").and_then(Json::as_arr) {
        for c in children {
            render_span(c, depth + 1, root_us);
        }
    }
}

/// Renders a `metrics` reply body: the counter table, then a histogram
/// table with the registry's snapshot quantiles.
fn render_metrics(metrics: &pegserve::Json) {
    use pegserve::Json;
    if let Some(counters) = metrics.get("counters").and_then(Json::as_arr) {
        println!("counters:");
        for c in counters {
            println!(
                "  {:<28} {:>12}",
                c.get("name").and_then(Json::as_str).unwrap_or("?"),
                c.get("value").and_then(Json::as_u64).unwrap_or(0),
            );
        }
    }
    if let Some(hists) = metrics.get("histograms").and_then(Json::as_arr) {
        println!("histograms:");
        println!(
            "  {:<28} {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
            "name", "count", "mean", "p50", "p90", "p99", "max"
        );
        for h in hists {
            let num = |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or(0);
            println!(
                "  {:<28} {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                h.get("name").and_then(Json::as_str).unwrap_or("?"),
                num("count"),
                us(num("mean_us")),
                us(num("p50_us")),
                us(num("p90_us")),
                us(num("p99_us")),
                us(num("max_us")),
            );
        }
    }
}

/// `pegcli client --metrics`: fetch the server's metrics registry and
/// render it; `--poll N` repeats N times, `--interval-ms` apart, so a
/// terminal can watch histograms fill under load.
fn cmd_metrics(flags: &HashMap<String, String>, addr: &str) -> Result<(), String> {
    use pegserve::Json;
    let poll: usize = flags.get("poll").and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
    let interval_ms: u64 = flags.get("interval-ms").and_then(|s| s.parse().ok()).unwrap_or(1000);
    let mut client = pegserve::Client::connect(addr).map_err(|e| e.to_string())?;
    let request = pegserve::obj().field("op", "metrics").build().to_string();
    for round in 0..poll {
        if round > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
        let line = client.request_line(&request).map_err(|e| e.to_string())?;
        let reply = Json::parse(&line).map_err(|_| "unparseable metrics reply".to_string())?;
        if reply.get("ok") != Some(&Json::Bool(true)) {
            println!("{line}");
            return Err("server replied with a structured error".into());
        }
        if poll > 1 {
            println!("--- poll {}/{poll} ---", round + 1);
        }
        match reply.get("metrics") {
            Some(m) => render_metrics(m),
            None => println!("{line}"),
        }
    }
    Ok(())
}

/// `pegcli explain`: run one query traced on the server and render the
/// reply — match count, plan summary, pipeline stage times, scatter
/// stats when the graph is distributed, and the full stitched span tree
/// (worker-side scatter spans included on a distributed graph).
fn cmd_explain(flags: &HashMap<String, String>) -> Result<(), String> {
    use pegserve::Json;
    let addr = get(flags, "addr")?;
    let pattern = get(flags, "pattern")?;
    let mut req = pegserve::obj().field("op", "explain").field("pattern", pattern);
    if let Some(g) = flags.get("graph") {
        req = req.field("graph", g.as_str());
    }
    if let Some(a) = flags.get("alpha").and_then(|s| s.parse::<f64>().ok()) {
        req = req.field("alpha", a);
    }
    if let Some(n) = flags.get("limit").and_then(|s| s.parse::<u64>().ok()) {
        req = req.field("limit", n);
    }
    if let Some(t) = flags.get("threads").and_then(|s| s.parse::<u64>().ok()) {
        req = req.field("threads", t);
    }
    let mut client = pegserve::Client::connect(addr).map_err(|e| e.to_string())?;
    let line = client.request_line(&req.build().to_string()).map_err(|e| e.to_string())?;
    let reply = Json::parse(&line).map_err(|_| "unparseable explain reply".to_string())?;
    if reply.get("ok") != Some(&Json::Bool(true)) {
        println!("{line}");
        let code = reply.get("error").and_then(Json::as_str).unwrap_or("unknown");
        return Err(format!("server replied with a structured '{code}' error"));
    }
    let num = |k: &str| reply.get(k).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "explain: graph '{}', trace {}, {} match(es){} in {}",
        reply.get("graph").and_then(Json::as_str).unwrap_or("?"),
        num("trace_id"),
        num("n"),
        if reply.get("truncated") == Some(&Json::Bool(true)) { " (truncated)" } else { "" },
        us(num("elapsed_us")),
    );
    if let Some(plan) = reply.get("plan") {
        let p = |k: &str| plan.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "plan: {} path(s), {} in {}{}",
            p("n_paths"),
            if plan.get("from_cache") == Some(&Json::Bool(true)) {
                "shape-cache hit"
            } else {
                "planned fresh"
            },
            us(p("plan_us")),
            plan.get("shape_hash")
                .and_then(Json::as_str)
                .map(|h| format!(", shape {h}"))
                .unwrap_or_default(),
        );
    }
    if let Some(pl) = reply.get("pipeline") {
        let p = |k: &str| pl.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "pipeline: decompose {}, candidates {}, join {}, reduction {}, generation {}\
             {}{}",
            us(p("decompose_us")),
            us(p("candidates_us")),
            us(p("join_us")),
            us(p("reduction_us")),
            us(p("generation_us")),
            if pl.get("exec_cache_hit") == Some(&Json::Bool(true)) {
                " (exec-cache hit)"
            } else {
                ""
            },
            pl.get("message_rounds")
                .and_then(Json::as_u64)
                .map(|r| format!(", {r} message round(s)"))
                .unwrap_or_default(),
        );
        if p("frontier_evals") > 0 || p("full_evals_avoided") > 0 {
            println!(
                "reduction frontier: {} eval(s), {} avoided, per-round {}",
                p("frontier_evals"),
                p("full_evals_avoided"),
                pl.get("round_frontiers").map(|v| v.to_string()).unwrap_or_default(),
            );
        }
    }
    if let Some(sc) = reply.get("scatter") {
        let p = |k: &str| sc.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "scatter: per-shard pruned {}, {} distinct, {} duplicate(s) dropped, retrieval {}",
            sc.get("per_shard_pruned").map(|v| v.to_string()).unwrap_or_default(),
            p("pruned_distinct"),
            p("duplicates_dropped"),
            us(p("retrieve_us")),
        );
    }
    if let Some(span) = reply.get("span") {
        let root_us = span.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0);
        println!("span tree:");
        render_span(span, 0, root_us);
    }
    Ok(())
}

/// `pegcli client --clients N`: the load-generator mode driving the
/// saturation sweep from the CLI. Each of N threads opens its own
/// connection and fires the same query (or `query_batch` of `--batch`
/// copies) back-to-back for `--duration-ms`, counting structured
/// rejections (`overloaded`/`timeout`) separately from transport
/// failures. Latencies accumulate in a [`pegtrace::Histogram`] per
/// client — the same log-scale histogram the server reports — merged
/// for the aggregate line; per-client percentiles render with
/// `--pretty`.
fn cmd_load_gen(flags: &HashMap<String, String>, addr: &str) -> Result<(), String> {
    let clients: usize = get(flags, "clients")?.parse().map_err(|_| "bad --clients".to_string())?;
    if clients == 0 {
        return Err("--clients must be >= 1".into());
    }
    let duration_ms: u64 = flags.get("duration-ms").and_then(|s| s.parse().ok()).unwrap_or(1000);
    let batch: usize = flags.get("batch").and_then(|s| s.parse().ok()).unwrap_or(1);
    if !(1..=32).contains(&batch) {
        return Err("--batch must be in 1..=32 (the server's query_batch cap)".into());
    }
    let pattern = flags.get("pattern").map(String::as_str).unwrap_or("(x:l0)-(y:l1)");
    let alpha: f64 = flags.get("alpha").and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let pretty = flags.contains_key("pretty");
    let request = if batch == 1 {
        pegserve::obj()
            .field("op", "query")
            .field("pattern", pattern)
            .field("alpha", alpha)
            .build()
            .to_string()
    } else {
        let item = pegserve::obj().field("pattern", pattern).field("alpha", alpha).build();
        pegserve::obj()
            .field("op", "query_batch")
            .field("queries", pegserve::Json::Arr(vec![item; batch]))
            .build()
            .to_string()
    };

    struct ClientRun {
        latencies: pegtrace::Histogram,
        queries: u64,
        rejected: u64,
        transport_errors: u64,
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(duration_ms);
    let t0 = std::time::Instant::now();
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let request = request.as_str();
                scope.spawn(move || {
                    let mut run = ClientRun {
                        latencies: pegtrace::Histogram::new(),
                        queries: 0,
                        rejected: 0,
                        transport_errors: 0,
                    };
                    let Ok(mut client) = pegserve::Client::connect(addr) else {
                        run.transport_errors += 1;
                        return run;
                    };
                    while std::time::Instant::now() < deadline {
                        let t = std::time::Instant::now();
                        match client.request_line(request) {
                            Ok(reply) => {
                                run.latencies.record(t.elapsed());
                                if reply.contains("\"ok\":true") {
                                    run.queries += batch as u64;
                                } else {
                                    run.rejected += 1;
                                }
                            }
                            Err(_) => {
                                run.transport_errors += 1;
                                // The server may have dropped us (e.g.
                                // connection cap); reconnect once per
                                // failure, give up when refused.
                                match pegserve::Client::connect(addr) {
                                    Ok(c) => client = c,
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    run
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load-gen client panicked")).collect()
    });
    let wall = t0.elapsed();

    let all = pegtrace::Histogram::new();
    for r in &runs {
        all.merge_from(&r.latencies);
    }
    let queries: u64 = runs.iter().map(|r| r.queries).sum();
    let rejected: u64 = runs.iter().map(|r| r.rejected).sum();
    let errors: u64 = runs.iter().map(|r| r.transport_errors).sum();
    let qps = queries as f64 / wall.as_secs_f64();
    println!(
        "load-gen: {clients} client(s) x {}ms, batch {batch}: {queries} quer(ies) ok \
         ({qps:.1}/s), {rejected} rejected, {errors} transport error(s), \
         p50 {} p99 {} over {} exchange(s)",
        duration_ms,
        us(all.quantile_us(0.50)),
        us(all.quantile_us(0.99)),
        all.count(),
    );
    if pretty {
        eprintln!(
            "  {:>6}  {:>9}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}",
            "client", "exchanges", "rejected", "p50", "p90", "p99", "max"
        );
        for (i, r) in runs.iter().enumerate() {
            let s = r.latencies.snapshot();
            eprintln!(
                "  {:>6}  {:>9}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}",
                i,
                s.count,
                r.rejected,
                us(s.p50_us),
                us(s.p90_us),
                us(s.p99_us),
                us(s.max_us),
            );
        }
    }
    if queries == 0 && (rejected > 0 || errors > 0) {
        return Err("load-gen completed no queries".into());
    }
    Ok(())
}

fn cmd_client(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    if flags.contains_key("clients") {
        return cmd_load_gen(flags, addr);
    }
    if flags.contains_key("metrics") {
        return cmd_metrics(flags, addr);
    }
    let pretty = flags.contains_key("pretty");
    let mut client = pegserve::Client::connect(addr).map_err(|e| e.to_string())?;
    if let Some(req) = flags.get("json") {
        let reply = client.request_line(req).map_err(|e| e.to_string())?;
        println!("{reply}");
        if let Ok(parsed) = pegserve::Json::parse(&reply) {
            if pretty {
                pretty_print_workers(&parsed);
            }
            if parsed.get("ok") == Some(&pegserve::Json::Bool(false)) {
                let code = parsed
                    .get("error")
                    .and_then(pegserve::Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                return Err(format!("server replied with a structured '{code}' error"));
            }
        }
        return Ok(());
    }
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        use std::io::BufRead as _;
        if stdin.lock().read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = client.request_line(line.trim()).map_err(|e| e.to_string())?;
        println!("{reply}");
        if pretty {
            if let Ok(parsed) = pegserve::Json::parse(&reply) {
                pretty_print_workers(&parsed);
            }
        }
    }
}

fn cmd_query(flags: &HashMap<String, String>, topk: bool) -> Result<(), String> {
    let peg = peg_from_flags(flags)?;
    let query = parse_query(flags, &peg)?;
    let shards: usize = flags.get("shards").map(|s| s.parse().unwrap_or(1)).unwrap_or(1).max(1);
    // --shards > 1: partition the store and scatter-gather retrieval;
    // results are bit-identical to the unsharded pipeline.
    let sharded = if shards > 1 {
        if flags.contains_key("index") {
            return Err("--shards builds per-shard indexes; drop --index".into());
        }
        let store = pegshard::ShardedGraphStore::build(peg.clone(), &offline_opts(flags), shards)
            .map_err(|e| e.to_string())?;
        let s = store.stats();
        println!(
            "sharded store: {} shard(s), halo {} hop(s), {} replicated node(s) \
             (replication factor {:.3}), built in {}",
            s.n_shards,
            s.halo_radius,
            s.replicated_nodes,
            s.replication_factor,
            bench::fmt_duration(s.build_time),
        );
        Some(store)
    } else {
        None
    };
    // Unsharded: load the index from disk when given, otherwise build fresh.
    let offline = match (&sharded, flags.get("index")) {
        (Some(_), _) => None,
        (None, Some(path)) => {
            let store = BTreeStore::open(std::path::Path::new(path)).map_err(|e| e.to_string())?;
            let paths = load_index(&store).map_err(|e| e.to_string())?;
            let context = ContextInfo::build(&peg.graph);
            Some(OfflineIndex { context, paths, stats: OfflineStats::default() })
        }
        (None, None) => {
            Some(OfflineIndex::build(&peg, &offline_opts(flags)).map_err(|e| e.to_string())?)
        }
    };
    let want_cache_stats = flags.contains_key("plan-cache-stats");
    let cache = std::sync::Arc::new(PlanCache::new());
    // Off by default for a single-shot CLI run (nothing repeats, so a
    // cache is pure overhead); --repeat N with a budget shows the reuse.
    let exec_bytes: usize = flags.get("exec-cache-bytes").and_then(|s| s.parse().ok()).unwrap_or(0);
    let exec_cache = (exec_bytes > 0).then(|| std::sync::Arc::new(ExecCache::new(exec_bytes)));
    let mut builder = match &sharded {
        Some(store) => QueryPipeline::builder(store.peg()).source(store),
        None => {
            QueryPipeline::builder(&peg).index(offline.as_ref().expect("unsharded index built"))
        }
    };
    if want_cache_stats {
        builder = builder.plan_cache(cache.clone());
    }
    if let Some(c) = &exec_cache {
        builder = builder.exec_cache(c.clone(), c.next_epoch());
    }
    let pipeline = builder.build();
    let repeat: usize = flags.get("repeat").map(|s| s.parse().unwrap_or(1)).unwrap_or(1).max(1);
    let t = std::time::Instant::now();
    let mut result = None;
    for _ in 0..repeat {
        let res = if topk {
            let k: usize = flags.get("k").map(|s| s.parse().unwrap_or(10)).unwrap_or(10);
            pipeline.run_topk(&query, k, 1e-9, &query_opts(flags)).map_err(|e| e.to_string())?
        } else {
            let alpha: f64 = flags.get("alpha").map(|s| s.parse().unwrap_or(0.5)).unwrap_or(0.5);
            let limit: Option<usize> = flags.get("limit").and_then(|s| s.parse().ok());
            pipeline
                .run_limited(&query, alpha, limit, &query_opts(flags))
                .map_err(|e| e.to_string())?
        };
        result = Some(res);
    }
    let result = result.expect("repeat >= 1");
    println!(
        "{} match(es){} in {}{} (search space 10^{:.1} -> 10^{:.1})",
        result.matches.len(),
        if result.truncated { " (truncated by --limit)" } else { "" },
        bench::fmt_duration(t.elapsed()),
        if repeat > 1 { format!(" over {repeat} runs") } else { String::new() },
        result.stats.log10_ss_index.max(0.0),
        result.stats.log10_ss_final.max(0.0),
    );
    let explain = flags.contains_key("explain");
    for m in result.matches.iter().take(20) {
        if explain {
            let ex = pegmatch::explain::explain(&peg, &query, m);
            print!("{}", ex.render(peg.graph.label_table()));
        } else {
            let ids: Vec<String> = m.nodes.iter().map(|v| format!("e{}", v.0)).collect();
            println!("  [{}]  Pr = {:.6}", ids.join(","), m.prob());
        }
    }
    if result.matches.len() > 20 {
        println!("  ... and {} more", result.matches.len() - 20);
    }
    if let Some(store) = &sharded {
        let sc = store.last_scatter();
        println!(
            "scatter-gather: per-shard candidates {:?} ({} distinct, {} boundary duplicate(s) \
             dropped), retrieval {}",
            sc.per_shard_pruned,
            sc.pruned_distinct,
            sc.duplicates_dropped,
            bench::fmt_duration(sc.retrieve_time),
        );
    }
    if want_cache_stats {
        let s = cache.stats();
        println!(
            "plan cache: {} hit(s), {} miss(es) ({:.0}% hit rate), {} shape(s), \
             planning time saved {}",
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.entries,
            bench::fmt_duration(s.saved),
        );
        for e in cache.entries() {
            println!(
                "  shape {:016x}  hits {:>4}  paths {}  plan cost {}  {}",
                e.shape_hash,
                e.hits,
                e.n_paths,
                bench::fmt_duration(e.build_time),
                pegmatch::pattern::format_pattern(&e.shape, peg.graph.label_table()),
            );
        }
    }
    if let Some(c) = &exec_cache {
        let s = c.stats();
        println!(
            "exec cache: {} hit(s), {} miss(es) ({:.0}% hit rate), {} entr(ies) holding \
             {} KiB of {} KiB budget, {} eviction(s)",
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.entries,
            s.bytes / 1024,
            s.budget / 1024,
            s.evictions,
        );
    }
    Ok(())
}
