#![warn(missing_docs)]

//! `bench` — the experiment harness regenerating every table and figure of
//! the paper's evaluation (Section 6).
//!
//! The `experiments` binary (`cargo run -p bench --release --bin
//! experiments -- <figure> [--scale tiny|small|paper]`) prints paper-style
//! series; Criterion benches under `benches/` time the same workloads.
//! See EXPERIMENTS.md at the repository root for the recorded outputs.

pub mod report;
pub mod workloads;

pub use report::{fmt_duration, fmt_log10, Table};
pub use workloads::{Scale, Workload};
