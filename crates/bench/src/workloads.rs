//! Shared workload construction for benches and the experiments binary.

use datagen::{synthetic_refgraph, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::model::{Peg, PegBuilder};
use pegmatch::offline::{OfflineIndex, OfflineOptions};

/// Experiment scale: graph sizes swept by the harness.
///
/// The paper runs 50k–1m references on a 117 GB EC2 instance; the default
/// scales keep the full suite in laptop territory while preserving relative
/// shapes. `Paper` reproduces the published sizes (hours of runtime and tens
/// of GB for L = 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: seconds per figure.
    Tiny,
    /// Default for `experiments`: minutes for the full suite.
    Small,
    /// The paper's sizes.
    Paper,
}

impl Scale {
    /// Parses `tiny|small|paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The graph-size sweep (number of references), smallest first.
    pub fn graph_sizes(self) -> Vec<usize> {
        match self {
            Scale::Tiny => vec![200, 400, 800, 1600],
            Scale::Small => vec![500, 1000, 2000, 4000],
            Scale::Paper => vec![50_000, 100_000, 500_000, 1_000_000],
        }
    }

    /// The default graph size for single-size experiments (the paper's 100k).
    pub fn default_graph(self) -> usize {
        match self {
            Scale::Tiny => 400,
            Scale::Small => 1000,
            Scale::Paper => 100_000,
        }
    }

    /// Maximum index path length to sweep (L = 3 everywhere, but Tiny keeps
    /// the index small by capping β sweeps instead).
    pub fn max_l(self) -> usize {
        3
    }
}

/// A prepared workload: a PEG plus per-`L` offline indexes.
pub struct Workload {
    /// The probabilistic entity graph.
    pub peg: Peg,
    /// Offline index per path length; `index[l - 1]` holds `L = l`.
    pub index_by_l: Vec<OfflineIndex>,
}

impl Workload {
    /// Builds the synthetic workload of the paper for `n_refs` references at
    /// the given degree of uncertainty, with indexes for `L = 1..=max_l`.
    pub fn synthetic(n_refs: usize, uncertainty: f64, beta: f64, max_l: usize) -> Workload {
        let refs =
            synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(n_refs, uncertainty));
        let peg = PegBuilder::new().build(&refs).expect("synthetic PEG builds");
        let index_by_l = (1..=max_l)
            .map(|l| {
                let opts = OfflineOptions {
                    index: PathIndexConfig { max_len: l, beta, ..Default::default() },
                };
                OfflineIndex::build(&peg, &opts).expect("offline phase")
            })
            .collect();
        Workload { peg, index_by_l }
    }

    /// Builds a workload from an arbitrary reference graph.
    pub fn from_refgraph(refs: &graphstore::RefGraph, beta: f64, max_l: usize) -> Workload {
        let peg = PegBuilder::new().build(refs).expect("PEG builds");
        let index_by_l = (1..=max_l)
            .map(|l| {
                let opts = OfflineOptions {
                    index: PathIndexConfig { max_len: l, beta, ..Default::default() },
                };
                OfflineIndex::build(&peg, &opts).expect("offline phase")
            })
            .collect();
        Workload { peg, index_by_l }
    }

    /// The offline index for path length `l`.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, l: usize) -> &OfflineIndex {
        &self.index_by_l[l - 1]
    }
}

/// Re-exported for workload construction: isomorphic renumbering of a
/// query (the building block of repeated-shape serving mixes).
pub use datagen::permuted_query;

/// Asserts two match lists are f64-bit-identical — same node images, same
/// `prle` bits, same `prn` bits. The gate sharded execution must pass
/// against the unsharded pipeline; shared so the `scaling_shards` bench
/// and `experiments ablation-shards` enforce exactly the same contract.
///
/// # Panics
/// Panics (with `ctx`) on the first divergence.
pub fn assert_matches_bit_identical(
    got: &[pegmatch::matcher::Match],
    want: &[pegmatch::matcher::Match],
    ctx: &str,
) {
    assert_eq!(got.len(), want.len(), "{ctx}: match count diverged");
    for (a, b) in got.iter().zip(want) {
        assert_eq!(a.nodes, b.nodes, "{ctx}: node images diverged");
        assert_eq!(a.prle.to_bits(), b.prle.to_bits(), "{ctx}: prle bits diverged");
        assert_eq!(a.prn.to_bits(), b.prn.to_bits(), "{ctx}: prn bits diverged");
    }
}

/// The paper's query-size ladder for Figure 6(c): a query of `n` nodes has
/// `min(4n, n(n−1)/2)` edges.
pub fn fig6c_query_sizes() -> Vec<(usize, usize)> {
    [3usize, 5, 7, 9, 11, 13, 15].into_iter().map(|n| (n, (4 * n).min(n * (n - 1) / 2))).collect()
}

/// Figure 6(d): 15-node queries of increasing density.
pub fn fig6d_query_sizes() -> Vec<(usize, usize)> {
    vec![(15, 20), (15, 40), (15, 60), (15, 80), (15, 100)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_and_sweep() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Small.graph_sizes().len(), 4);
        assert_eq!(Scale::Paper.graph_sizes()[3], 1_000_000);
    }

    #[test]
    fn fig6c_ladder_matches_paper() {
        let ladder = fig6c_query_sizes();
        assert_eq!(ladder[0], (3, 3));
        assert_eq!(ladder[1], (5, 10));
        assert_eq!(ladder[2], (7, 21));
        assert_eq!(ladder[6], (15, 60));
    }

    #[test]
    fn workload_builds_with_all_lengths() {
        let w = Workload::synthetic(300, 0.2, 0.3, 3);
        assert_eq!(w.index_by_l.len(), 3);
        assert!(w.index(1).paths.n_entries() > 0);
        assert!(w.index(3).paths.n_entries() >= w.index(2).paths.n_entries());
    }

    #[test]
    fn permuted_query_is_isomorphic_not_identical() {
        use graphstore::Label;
        use pegmatch::query::QueryGraph;
        let q = QueryGraph::path(&[Label(0), Label(1), Label(2), Label(0)]).unwrap();
        let mut saw_different_text = false;
        for seed in 0..8 {
            let p = permuted_query(&q, seed);
            assert_eq!(p.n_nodes(), q.n_nodes());
            assert_eq!(p.n_edges(), q.n_edges());
            assert_eq!(p.shape_hash(), q.shape_hash(), "seed={seed}: same canonical shape");
            if p.edges() != q.edges() || p.labels() != q.labels() {
                saw_different_text = true;
            }
        }
        assert!(saw_different_text, "permutations vary the query text");
    }
}
