//! Ablation: in-memory vs on-disk (B+-tree) path-index lookups.
//!
//! The two-level ⟨label sequence, probability bucket⟩ key design is supposed
//! to make disk lookups competitive: a lookup is one B+-tree range scan over
//! adjacent keys. This bench measures the same lookup workload against the
//! in-memory index and a `kvstore` file, warm cache.

use bench::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use graphstore::Label;
use kvstore::BTreeStore;
use pathindex::disk::{save_index, DiskPathIndex};

fn bench(c: &mut Criterion) {
    let w = Workload::synthetic(400, 0.2, 0.3, 2);
    let idx = w.index(2);
    let mut path = std::env::temp_dir();
    path.push(format!("pegmatch-bench-backend-{}", std::process::id()));
    let mut store = BTreeStore::create(&path).unwrap();
    save_index(&idx.paths, &mut store).unwrap();
    store.flush().unwrap();
    let disk = DiskPathIndex::open(&store).unwrap();

    let n_labels = w.peg.graph.label_table().len() as u16;
    let seqs: Vec<Vec<Label>> =
        (0..n_labels).flat_map(|a| (0..n_labels).map(move |b| vec![Label(a), Label(b)])).collect();

    let mut group = c.benchmark_group("ablation_backend");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("memory", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for s in &seqs {
                total += idx.paths.lookup(s, 0.5).len();
            }
            total
        })
    });
    group.bench_function("disk", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for s in &seqs {
                total += disk.lookup(s, 0.5).unwrap().len();
            }
            total
        })
    });
    group.finish();

    drop(disk);
    drop(store);
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
