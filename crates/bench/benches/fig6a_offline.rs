//! Figure 6(a)/(b): offline phase running time across index length `L` and
//! construction threshold `β` (index sizes are reported by the
//! `experiments fig6b` binary; this bench times construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{synthetic_refgraph, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};

fn bench_offline(c: &mut Criterion) {
    let refs = synthetic_refgraph(&SyntheticConfig::paper(500));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let mut group = c.benchmark_group("fig6a_offline_phase");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for l in 1..=3usize {
        for beta in [0.9, 0.5, 0.3] {
            group.bench_with_input(
                BenchmarkId::new(format!("L{l}"), format!("beta{beta}")),
                &(l, beta),
                |b, &(l, beta)| {
                    b.iter(|| {
                        let opts = OfflineOptions {
                            index: PathIndexConfig { max_len: l, beta, ..Default::default() },
                        };
                        OfflineIndex::build(&peg, &opts).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
