//! Figure 7(h): the Figure-8 pattern queries over the IMDB-like
//! co-starring network (independent edges, uniform genre labels),
//! alpha = 0.1, L = 1, 2, 3.

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{imdb_like, pattern_query, ImdbConfig, Pattern};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let refs = imdb_like(&ImdbConfig::scaled(800));
    let w = Workload::from_refgraph(&refs, 0.3, 3);
    let genre = graphstore::Label(0); // Drama
    let mut group = c.benchmark_group("fig7h_imdb_patterns");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for p in Pattern::ALL {
        let q = pattern_query(p, genre, genre, genre).unwrap();
        for l in 1..=3usize {
            let pipe = QueryPipeline::new(&w.peg, w.index(l));
            group.bench_with_input(BenchmarkId::new(p.name(), format!("L{l}")), &q, |b, q| {
                b.iter(|| pipe.run(q, 0.1, &QueryOptions::default()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
