//! Incremental vs rebuild top-k refinement.
//!
//! `run_topk` refines its threshold over one `QuerySession`: the k-partite
//! reduction base is kept across refinements and only continued (or reused
//! outright) when the threshold sits above the base. The rebuild baseline
//! here replays the identical geometric threshold schedule with a full
//! per-threshold pipeline run. Before timing, the bench asserts both sides
//! return the same top-k set and that the incremental side executes
//! strictly fewer reduction rounds over the refinement steps.

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{random_query, QuerySpec};
use pegmatch::matcher::Match;
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegmatch::query::QueryGraph;

fn sort_topk(matches: &mut Vec<Match>, k: usize) {
    matches.sort_by(|a, b| {
        b.prob().partial_cmp(&a.prob()).unwrap().then_with(|| a.nodes.cmp(&b.nodes))
    });
    matches.truncate(k);
}

/// Rounds accounting for one driven schedule: `refine` counts only the
/// rounds refinement steps (step 2 onward) execute themselves; `total`
/// additionally includes every base build / rebase convergence, so the two
/// sides are comparable all-in.
#[derive(Default)]
struct Rounds {
    refine: usize,
    total: usize,
    steps: usize,
}

/// The rebuild baseline: the same threshold schedule as `run_topk`, each
/// step a full from-scratch pipeline run.
fn rebuild_topk(
    pipe: &QueryPipeline<'_>,
    q: &QueryGraph,
    k: usize,
    floor: f64,
    opts: &QueryOptions,
) -> (Vec<Match>, Rounds) {
    let mut alpha = 0.5f64;
    let mut rounds = Rounds::default();
    loop {
        let res = pipe.run(q, alpha, opts).expect("query runs");
        rounds.steps += 1;
        rounds.total += res.stats.message_rounds;
        if rounds.steps > 1 {
            rounds.refine += res.stats.message_rounds;
        }
        if res.matches.len() >= k || alpha <= floor {
            let mut matches = res.matches;
            sort_topk(&mut matches, k);
            return (matches, rounds);
        }
        alpha = (alpha * 0.25).max(floor);
    }
}

/// The incremental side, instrumented: drives a session exactly like
/// `run_topk`, summing both the refinement-step rounds and the all-in
/// total (lookahead rebase convergence included).
fn incremental_topk(
    pipe: &QueryPipeline<'_>,
    q: &QueryGraph,
    k: usize,
    floor: f64,
    opts: &QueryOptions,
) -> (Vec<Match>, Rounds) {
    let prepared = pipe.prepare(q, 0.5, opts).expect("prepare");
    let mut session = pipe.session(&prepared, opts);
    let mut alpha = 0.5f64;
    let mut rounds = Rounds::default();
    loop {
        if let Some(base) = session.base_alpha() {
            if alpha + 1e-12 < base {
                session.rebase((alpha * 0.25).max(floor)).expect("rebase");
                rounds.total += session.base_stats().expect("base").message_rounds;
            }
        }
        let res = session.run_at(alpha, None).expect("run");
        rounds.steps += 1;
        rounds.total += res.stats.message_rounds;
        if rounds.steps > 1 {
            rounds.refine += res.stats.message_rounds;
        }
        if res.matches.len() >= k || alpha <= floor {
            let mut matches = res.matches;
            sort_topk(&mut matches, k);
            return (matches, rounds);
        }
        alpha = (alpha * 0.25).max(floor);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_incremental");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    let w = Workload::synthetic(800, 0.4, 0.05, 2);
    let n_labels = w.peg.graph.label_table().len();
    let pipe = QueryPipeline::new(&w.peg, w.index(2));
    let opts = QueryOptions::default();
    let floor = 1e-7;

    // k sits above the α=0.125 result count, so the schedule takes three
    // threshold steps (0.5 → 0.125 → 0.03125): one base build at 0.5, one
    // lookahead rebase to 0.03125 with an incremental continuation at
    // 0.125, and one pure base reuse.
    for (n, m, k, seed) in [(4usize, 4usize, 500usize, 1u64), (5, 5, 2000, 2)] {
        let q = random_query(QuerySpec::new(n, m), n_labels, seed);
        // Correctness + efficiency gate before timing.
        let (inc, ir) = incremental_topk(&pipe, &q, k, floor, &opts);
        let (reb, rr) = rebuild_topk(&pipe, &q, k, floor, &opts);
        let steps = ir.steps;
        assert_eq!(steps, rr.steps, "schedules must agree");
        assert_eq!(inc.len(), reb.len());
        for (x, y) in inc.iter().zip(&reb) {
            assert_eq!(x.nodes, y.nodes, "q({n},{m}) top-k diverged");
            assert!((x.prob() - y.prob()).abs() < 1e-9);
        }
        if steps >= 3 {
            assert!(
                ir.refine < rr.refine,
                "q({n},{m}): incremental refinement rounds {} not fewer than rebuild's {}",
                ir.refine,
                rr.refine,
            );
            assert!(
                ir.total <= rr.total,
                "q({n},{m}): incremental total rounds {} exceed rebuild total {}",
                ir.total,
                rr.total,
            );
        }
        println!(
            "topk_incremental gate: q({n},{m}) k={k}: {steps} threshold steps, reduction \
             rounds incremental {} refine / {} total vs rebuild {} refine / {} total",
            ir.refine, ir.total, rr.refine, rr.total,
        );

        let label = format!("q({n},{m})k{k}s{steps}");
        group.bench_with_input(BenchmarkId::new(&label, "incremental"), &q, |b, q| {
            b.iter(|| pipe.run_topk(q, k, floor, &opts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new(&label, "rebuild"), &q, |b, q| {
            b.iter(|| rebuild_topk(&pipe, q, k, floor, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
