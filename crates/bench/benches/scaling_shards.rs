//! Shard scaling of the online query path: one fixed graph, the shard
//! count swept over {1, 2, 3, 4} plus the unsharded pipeline as the
//! baseline. Sharding buys retrieval parallelism at the cost of
//! boundary-replicated lookups, so single-machine numbers mostly measure
//! that overhead; the interesting artifact is the bit-exactness gate
//! (asserted below before timing) and the per-shard-count latency curve.

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{random_query, QuerySpec};
use pathindex::PathIndexConfig;
use pegmatch::offline::OfflineOptions;
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegshard::ShardedGraphStore;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_shards");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    let (beta, max_len) = (0.1, 2);
    let w = Workload::synthetic(1000, 0.3, beta, max_len);
    let n_labels = w.peg.graph.label_table().len();
    let plain = QueryPipeline::new(&w.peg, w.index(max_len));
    let opts = OfflineOptions { index: PathIndexConfig { max_len, beta, ..Default::default() } };
    let alpha = 0.1;
    let qopts = QueryOptions::default();

    let shard_counts = [1usize, 2, 3, 4];
    let stores: Vec<ShardedGraphStore> = shard_counts
        .iter()
        .map(|&s| ShardedGraphStore::build(w.peg.clone(), &opts, s).expect("sharded build"))
        .collect();

    for (n, m, seed) in [(4usize, 4usize, 1u64), (6, 7, 2)] {
        let q = random_query(QuerySpec::new(n, m), n_labels, seed);
        // Bit-exactness gate before timing: every shard count must
        // reproduce the unsharded result exactly.
        let reference = plain.run(&q, alpha, &qopts).unwrap();
        for store in &stores {
            let got = store.pipeline().run(&q, alpha, &qopts).unwrap();
            bench::workloads::assert_matches_bit_identical(
                &got.matches,
                &reference.matches,
                &format!("q({n},{m}) shards={}", store.n_shards()),
            );
        }
        let label = format!("q({n},{m})x{}", reference.matches.len());
        group.bench_with_input(BenchmarkId::new(&label, "unsharded"), &q, |b, q| {
            b.iter(|| plain.run(q, alpha, &qopts).unwrap())
        });
        for store in &stores {
            group.bench_with_input(
                BenchmarkId::new(&label, format!("{}sh", store.n_shards())),
                &q,
                |b, q| b.iter(|| store.pipeline().run(q, alpha, &qopts).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
