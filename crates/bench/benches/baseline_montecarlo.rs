//! Baseline comparison: the exact pipeline vs Monte Carlo possible-world
//! sampling at increasing sample counts.
//!
//! Sampling is the generic fallback for #P-hard uncertain-graph queries; it
//! pays one full world materialization plus one deterministic matching pass
//! per sample, and still only returns estimates. The exact engine answers
//! the same query from the path index in a fraction of the time — the gap
//! below is the point of the paper's algorithmic machinery.

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{random_query, QuerySpec};
use pegmatch::baseline::{match_montecarlo, McOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let w = Workload::synthetic(400, 0.4, 0.3, 2);
    let n_labels = w.peg.graph.label_table().len();
    let q = random_query(QuerySpec::new(4, 4), n_labels, 2);

    let mut group = c.benchmark_group("baseline_montecarlo");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));

    let pipe = QueryPipeline::new(&w.peg, w.index(2));
    group.bench_function("exact_pipeline", |b| {
        b.iter(|| pipe.run(&q, 0.3, &QueryOptions::default()).unwrap())
    });
    for samples in [100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("montecarlo", samples), &samples, |b, &samples| {
            b.iter(|| match_montecarlo(&w.peg, &q, 0.3, &McOptions { samples, seed: 1 }))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
