//! Ablation: the joint search-space reduction variants of Section 5.2.4 —
//! sequential reduction, the parallel (one thread per partition)
//! implementation, structure-only reduction (no upper-bound message
//! passing), and no reduction at all.
//!
//! At bench scale the sequential variant usually wins (partitions are small
//! and thread startup dominates), matching the paper's observation that the
//! parallel implementation pays off on large candidate sets.

use bench::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{random_query, QuerySpec};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let w = Workload::synthetic(400, 0.4, 0.2, 3);
    let n_labels = w.peg.graph.label_table().len();
    let q = random_query(QuerySpec::new(10, 20), n_labels, 3);
    let pipe = QueryPipeline::new(&w.peg, w.index(3));

    // `threads: 1` pins the non-"parallel" variants to the sequential
    // engine; the default (`threads: 0`) would parallelize everything and
    // turn this ablation into parallel-vs-parallel.
    let variants: Vec<(&str, QueryOptions)> = vec![
        ("sequential", QueryOptions::with_threads(1)),
        ("parallel", QueryOptions { parallel_reduction: true, ..Default::default() }),
        (
            "structure_only",
            QueryOptions { use_upperbounds: false, ..QueryOptions::with_threads(1) },
        ),
        ("no_reduction", QueryOptions { threads: 1, ..QueryOptions::no_reduction() }),
    ];

    let mut group = c.benchmark_group("ablation_reduction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (name, opts) in &variants {
        group.bench_function(*name, |b| b.iter(|| pipe.run(&q, 0.5, opts).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
