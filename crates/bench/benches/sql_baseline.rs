//! Section 6.2.1 SQL comparison: the optimized pipeline vs the relational
//! join-plan baseline on the same query. On anything beyond toy sizes the
//! relational plan exceeds any reasonable row budget (the paper: "SQL never
//! finishes it in a month"), so the bench compares at a size where both
//! complete and reports the gap.

use bench::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{random_query, QuerySpec};
use pegmatch::online::{QueryOptions, QueryPipeline};
use relbase::subgraph::{run_relational_baseline, tables_from_peg};

fn bench(c: &mut Criterion) {
    let w = Workload::synthetic(200, 0.2, 0.3, 3);
    let n_labels = w.peg.graph.label_table().len();
    let q = random_query(QuerySpec::new(4, 5), n_labels, 3);
    let tables = tables_from_peg(&w.peg);

    let mut group = c.benchmark_group("sql_baseline_q(4,5)_200refs");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let pipe = QueryPipeline::new(&w.peg, w.index(3));
    group.bench_function("optimized_L3", |b| {
        b.iter(|| pipe.run(&q, 0.7, &QueryOptions::default()).unwrap())
    });
    group.bench_function("relational_plan", |b| {
        b.iter(|| run_relational_baseline(&w.peg, &tables, &q, 0.7, u64::MAX).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
