//! Ablation: path-index probability resolution `γ`.
//!
//! γ trades bucket granularity against index size: finer buckets mean range
//! scans touch fewer non-qualifying entries, coarser buckets mean fewer,
//! larger buckets. Because every entry is also filtered exactly against the
//! query threshold, γ only affects how much is scanned — query time should
//! be nearly flat across γ, and the build should pay slightly more for finer
//! resolutions.

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{random_query, QuerySpec};
use pathindex::PathIndexConfig;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let w = Workload::synthetic(400, 0.2, 0.3, 1);
    let n_labels = w.peg.graph.label_table().len();
    let q = random_query(QuerySpec::new(5, 9), n_labels, 1);

    let mut group = c.benchmark_group("ablation_gamma");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for gamma in [0.02, 0.1, 0.25] {
        let opts = OfflineOptions {
            index: PathIndexConfig { max_len: 2, beta: 0.3, gamma, ..Default::default() },
        };
        group.bench_with_input(
            BenchmarkId::new("build_L2", format!("gamma{gamma}")),
            &opts,
            |b, opts| b.iter(|| OfflineIndex::build(&w.peg, opts).unwrap()),
        );
        let idx = OfflineIndex::build(&w.peg, &opts).unwrap();
        let pipe = QueryPipeline::new(&w.peg, &idx);
        group.bench_with_input(
            BenchmarkId::new("query_q(5,9)", format!("gamma{gamma}")),
            &q,
            |b, q| b.iter(|| pipe.run(q, 0.7, &QueryOptions::default()).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
