//! Figure 7(g): the five Figure-8 pattern queries over the DBLP-like
//! collaboration network (label-correlated edges), alpha = 0.1, L = 1, 2, 3.

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{dblp_like, pattern_query, DblpConfig, Pattern};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let refs = dblp_like(&DblpConfig::scaled(1_500));
    let w = Workload::from_refgraph(&refs, 0.05, 3);
    let lt = w.peg.graph.label_table();
    let (d, m, s) = (lt.get("D").unwrap(), lt.get("M").unwrap(), lt.get("S").unwrap());
    let mut group = c.benchmark_group("fig7g_dblp_patterns");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for p in Pattern::ALL {
        let q = pattern_query(p, d, m, s).unwrap();
        for l in 1..=3usize {
            let pipe = QueryPipeline::new(&w.peg, w.index(l));
            group.bench_with_input(BenchmarkId::new(p.name(), format!("L{l}")), &q, |b, q| {
                b.iter(|| pipe.run(q, 0.1, &QueryOptions::default()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
