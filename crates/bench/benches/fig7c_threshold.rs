//! Figures 7(c)/(d): online running time vs query threshold α ∈ {0.3..0.9},
//! queries q(5,5), q(5,9), q(10,20), q(10,40).

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{random_query, QuerySpec};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let w = Workload::synthetic(400, 0.2, 0.25, 3);
    let n_labels = w.peg.graph.label_table().len();
    let mut group = c.benchmark_group("fig7cd_threshold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for alpha in [0.3, 0.5, 0.7, 0.9] {
        for (n, m) in [(5usize, 5usize), (5, 9), (10, 20), (10, 40)] {
            let q = random_query(QuerySpec::new(n, m), n_labels, 1);
            for l in 1..=3usize {
                let pipe = QueryPipeline::new(&w.peg, w.index(l));
                group.bench_with_input(
                    BenchmarkId::new(format!("L{l}_q({n},{m})"), format!("alpha{alpha}")),
                    &q,
                    |b, q| b.iter(|| pipe.run(q, alpha, &QueryOptions::default()).unwrap()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
