//! Thread scaling of the online query path: the same generation-heavy
//! workload at 1/2/4/8 compute lanes. Low thresholds make match generation
//! (and candidate pruning) dominate, which is where the seed-parallel
//! engine earns its speedup; result sets are byte-identical across lane
//! counts (asserted below before timing).

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{random_query, QuerySpec};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_threads");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    // Generation-heavy: a dense-ish graph, a 6-node query, and a low
    // threshold so the reduced k-partite graph still yields many matches.
    let w = Workload::synthetic(1200, 0.4, 0.05, 2);
    let n_labels = w.peg.graph.label_table().len();
    let pipe = QueryPipeline::new(&w.peg, w.index(2));
    let alpha = 0.05;
    for (n, m, seed) in [(5usize, 5usize, 1u64), (6, 7, 1), (10, 20, 3)] {
        let q = random_query(QuerySpec::new(n, m), n_labels, seed);
        // Correctness gate: every lane count must return the same matches.
        let reference = pipe.run(&q, alpha, &QueryOptions::with_threads(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let got = pipe.run(&q, alpha, &QueryOptions::with_threads(threads)).unwrap();
            assert_eq!(got.matches.len(), reference.matches.len());
            for (a, b) in got.matches.iter().zip(&reference.matches) {
                assert_eq!(a.nodes, b.nodes, "threads={threads} diverged");
            }
        }
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("q({n},{m})x{}", reference.matches.len()),
                    format!("{threads}t"),
                ),
                &q,
                |b, q| b.iter(|| pipe.run(q, alpha, &QueryOptions::with_threads(threads)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
