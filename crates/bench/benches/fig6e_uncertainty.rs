//! Figures 6(e)/(f): online running time vs the graph's degree of
//! uncertainty (20%–80%), queries q(5,5), q(5,9), q(10,20), q(10,40),
//! alpha = 0.7.

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{random_query, QuerySpec};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6ef_uncertainty");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for u in [0.2, 0.5, 0.8] {
        let w = Workload::synthetic(400, u, 0.3, 3);
        let n_labels = w.peg.graph.label_table().len();
        for (n, m) in [(5usize, 5usize), (5, 9), (10, 20), (10, 40)] {
            let q = random_query(QuerySpec::new(n, m), n_labels, 1);
            for l in 1..=3usize {
                let pipe = QueryPipeline::new(&w.peg, w.index(l));
                group.bench_with_input(
                    BenchmarkId::new(format!("L{l}_q({n},{m})"), format!("u{:.0}%", u * 100.0)),
                    &q,
                    |b, q| b.iter(|| pipe.run(q, 0.7, &QueryOptions::default()).unwrap()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
