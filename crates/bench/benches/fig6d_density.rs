//! Figure 6(d): online running time vs query density (15-node queries of
//! 20..60 edges), alpha = 0.7.

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{random_query, QuerySpec};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn bench(c: &mut Criterion) {
    let w = Workload::synthetic(400, 0.2, 0.3, 3);
    let n_labels = w.peg.graph.label_table().len();
    let mut group = c.benchmark_group("fig6d_density");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &(n, m) in &[(15usize, 20usize), (15, 40), (15, 60)] {
        let q = random_query(QuerySpec::new(n, m), n_labels, 1);
        for l in 1..=3usize {
            let pipe = QueryPipeline::new(&w.peg, w.index(l));
            group.bench_with_input(
                BenchmarkId::new(format!("OptL{l}"), format!("q({n},{m})")),
                &q,
                |b, q| b.iter(|| pipe.run(q, 0.7, &QueryOptions::default()).unwrap()),
            );
        }
        let pipe = QueryPipeline::new(&w.peg, w.index(3));
        group.bench_with_input(
            BenchmarkId::new("NoSSReduction", format!("q({n},{m})")),
            &q,
            |b, q| b.iter(|| pipe.run(q, 0.7, &QueryOptions::no_reduction()).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("RandomDecomp", format!("q({n},{m})")),
            &q,
            |b, q| b.iter(|| pipe.run(q, 0.7, &QueryOptions::random_decomposition(1)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
