//! Property tests for the factor algebra underlying all probability
//! computations: products commute and associate, marginalization and
//! conditioning are consistent with each other, and variable elimination
//! agrees with brute-force enumeration on arbitrary factor pools.

use pgm::{eliminate, enumerate_joint, Factor, MarkovNet, VarId};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Evaluates `factor` under a global assignment (indexed by variable id).
fn eval(factor: &Factor, global: &[usize]) -> f64 {
    let vals: Vec<usize> = factor.vars().iter().map(|v| global[v.0 as usize]).collect();
    factor.prob(&vals)
}

/// Returns the first joint assignment over `cards` where `pred` fails.
fn first_violation(cards: &[usize], mut pred: impl FnMut(&[usize]) -> bool) -> Option<Vec<usize>> {
    let mut assign = vec![0usize; cards.len()];
    loop {
        if !pred(&assign) {
            return Some(assign);
        }
        let mut i = cards.len();
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            assign[i] += 1;
            if assign[i] < cards[i] {
                break;
            }
            assign[i] = 0;
        }
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}

/// A universe: per-variable cardinalities (variable ids are indices).
fn arb_universe() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..4, 1..5)
}

/// A factor over a random subset of the universe with a random table.
fn arb_factor(cards: Vec<usize>) -> impl Strategy<Value = Factor> {
    let n = cards.len();
    prop::collection::vec(any::<bool>(), n).prop_flat_map(move |mask| {
        let vars: Vec<VarId> = (0..n).filter(|&i| mask[i]).map(|i| VarId(i as u32)).collect();
        let fcards: Vec<usize> = vars.iter().map(|v| cards[v.0 as usize]).collect();
        let size: usize = fcards.iter().product();
        prop::collection::vec(0.0..10.0f64, size.max(1)).prop_map(move |table| {
            if vars.is_empty() {
                Factor::scalar(table[0])
            } else {
                Factor::new(vars.clone(), fcards.clone(), table)
            }
        })
    })
}

fn universe_and_factors(k: usize) -> impl Strategy<Value = (Vec<usize>, Vec<Factor>)> {
    arb_universe().prop_flat_map(move |cards| {
        let fs = prop::collection::vec(arb_factor(cards.clone()), k);
        (Just(cards), fs)
    })
}

proptest! {
    #[test]
    fn product_commutes((cards, fs) in universe_and_factors(2)) {
        let ab = fs[0].product(&fs[1]);
        let ba = fs[1].product(&fs[0]);
        let bad = first_violation(&cards, |g| close(eval(&ab, g), eval(&ba, g)));
        prop_assert!(bad.is_none(), "A·B != B·A at {bad:?}");
    }

    #[test]
    fn product_associates((cards, fs) in universe_and_factors(3)) {
        let left = fs[0].product(&fs[1]).product(&fs[2]);
        let right = fs[0].product(&fs[1].product(&fs[2]));
        let bad = first_violation(&cards, |g| close(eval(&left, g), eval(&right, g)));
        prop_assert!(bad.is_none(), "(A·B)·C != A·(B·C) at {bad:?}");
    }

    #[test]
    fn product_is_pointwise((cards, fs) in universe_and_factors(2)) {
        let ab = fs[0].product(&fs[1]);
        let bad = first_violation(&cards, |g| {
            close(eval(&ab, g), eval(&fs[0], g) * eval(&fs[1], g))
        });
        prop_assert!(bad.is_none(), "product not pointwise at {bad:?}");
    }

    #[test]
    fn marginalization_commutes((_cards, fs) in universe_and_factors(1)) {
        let f = &fs[0];
        if f.vars().len() >= 2 {
            let (v, w) = (f.vars()[0], f.vars()[1]);
            let a = f.marginalize_out(v).marginalize_out(w);
            let b = f.marginalize_out(w).marginalize_out(v);
            prop_assert_eq!(a.vars(), b.vars());
            for (x, y) in a.table().iter().zip(b.table()) {
                prop_assert!(close(*x, *y), "Σ_v Σ_w != Σ_w Σ_v: {x} vs {y}");
            }
        }
    }

    #[test]
    fn marginalization_preserves_total((_cards, fs) in universe_and_factors(1)) {
        let f = &fs[0];
        let mut g = f.clone();
        for &v in f.vars() {
            g = g.marginalize_out(v);
        }
        prop_assert!(close(g.total(), f.total()),
            "summing out everything lost mass: {} vs {}", g.total(), f.total());
    }

    #[test]
    fn conditioning_slices_sum_to_marginal((_cards, fs) in universe_and_factors(1)) {
        let f = &fs[0];
        if let Some(&v) = f.vars().first() {
            let card = f.card_of(v).unwrap();
            let marg = f.marginalize_out(v);
            let mut sum: Vec<f64> = vec![0.0; marg.table().len()];
            for val in 0..card {
                let slice = f.condition(v, val);
                prop_assert_eq!(slice.vars(), marg.vars());
                for (acc, p) in sum.iter_mut().zip(slice.table()) {
                    *acc += p;
                }
            }
            for (x, y) in sum.iter().zip(marg.table()) {
                prop_assert!(close(*x, *y), "Σ_v f(v, ·) != marginal: {x} vs {y}");
            }
        }
    }

    #[test]
    fn elimination_matches_enumeration(
        (cards, fs) in universe_and_factors(3),
        target_mask in prop::collection::vec(any::<bool>(), 5),
    ) {
        // Targets: a random subset of the variables appearing in factors.
        let mut present: Vec<VarId> = Vec::new();
        for f in &fs {
            for &v in f.vars() {
                if !present.contains(&v) {
                    present.push(v);
                }
            }
        }
        present.sort();
        let targets: Vec<VarId> = present
            .iter()
            .enumerate()
            .filter(|(i, _)| target_mask[*i % target_mask.len()])
            .map(|(_, &v)| v)
            .collect();
        let refs: Vec<&Factor> = fs.iter().collect();
        let brute = enumerate_joint(&refs, &targets);
        if let Ok(fast) = eliminate(&refs, &targets) {
            // Same variable *set*; orders may legitimately differ, so compare
            // as functions under global assignments.
            let mut bvars = brute.vars().to_vec();
            let mut fvars = fast.vars().to_vec();
            bvars.sort();
            fvars.sort();
            prop_assert_eq!(bvars, fvars);
            let bad = first_violation(&cards, |g| close(eval(&brute, g), eval(&fast, g)));
            prop_assert!(bad.is_none(), "eliminate disagrees with enumeration at {bad:?}");
        }
    }

    #[test]
    fn network_marginal_is_normalized((_cards, fs) in universe_and_factors(3)) {
        let mut net = MarkovNet::new();
        let mut has_vars = false;
        for f in &fs {
            if !f.vars().is_empty() {
                has_vars = true;
            }
            net.add_factor(f.clone());
        }
        prop_assume!(has_vars);
        prop_assume!(net.partition_function() > 1e-6);
        let vars: Vec<VarId> = net.vars().collect();
        let m = net.marginal(&vars);
        let total: f64 = m.table().iter().sum();
        prop_assert!(close(total, 1.0), "marginal over all vars sums to {total}");
    }
}
