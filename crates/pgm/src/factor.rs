//! Tabular factors over discrete random variables.

use std::fmt;

/// Identifier of a random variable inside a [`crate::MarkovNet`].
///
/// Variable ids are plain integers chosen by the caller; a factor may mention
/// any subset of them. Cardinalities are carried by the factors themselves and
/// must agree across factors (checked by [`crate::MarkovNet::add_factor`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A (partial) assignment of values to variables, as parallel slices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Assignment {
    /// The assigned variables.
    pub vars: Vec<VarId>,
    /// Values, parallel to `vars`. `vals[i] < card(vars[i])`.
    pub vals: Vec<usize>,
}

impl Assignment {
    /// Creates an assignment from parallel vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn new(vars: Vec<VarId>, vals: Vec<usize>) -> Self {
        assert_eq!(vars.len(), vals.len(), "vars/vals length mismatch");
        Self { vars, vals }
    }

    /// Looks up the value assigned to `var`, if any.
    pub fn get(&self, var: VarId) -> Option<usize> {
        self.vars.iter().position(|&v| v == var).map(|i| self.vals[i])
    }
}

/// A dense tabular factor: a non-negative function over the cross product of
/// its variables' domains.
///
/// The table is stored row-major with the *last* variable varying fastest
/// (C order). For variables `v0..vk` with cardinalities `c0..ck`, entry index
/// of assignment `(a0..ak)` is `((a0*c1 + a1)*c2 + a2)...`.
#[derive(Clone, Debug, PartialEq)]
pub struct Factor {
    vars: Vec<VarId>,
    cards: Vec<usize>,
    table: Vec<f64>,
}

impl Factor {
    /// Creates a factor over `vars` with cardinalities `cards` and the given
    /// dense `table` (length must equal the product of cardinalities).
    ///
    /// # Panics
    /// Panics on length mismatches, duplicate variables, zero cardinalities,
    /// or negative table entries.
    pub fn new(vars: Vec<VarId>, cards: Vec<usize>, table: Vec<f64>) -> Self {
        assert_eq!(vars.len(), cards.len(), "vars/cards length mismatch");
        let size: usize = cards.iter().product();
        assert_eq!(table.len(), size, "table size mismatch");
        assert!(cards.iter().all(|&c| c > 0), "zero cardinality");
        assert!(table.iter().all(|&p| p >= 0.0), "negative factor entry");
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "duplicate variable in factor");
        Self { vars, cards, table }
    }

    /// A factor over no variables holding the single scalar `value`.
    pub fn scalar(value: f64) -> Self {
        Self::new(Vec::new(), Vec::new(), vec![value])
    }

    /// The variables this factor mentions, in table order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Cardinalities parallel to [`Self::vars`].
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The raw table (row-major, last variable fastest).
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the factor is a scalar (no variables).
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Cardinality of `var` within this factor, if mentioned.
    pub fn card_of(&self, var: VarId) -> Option<usize> {
        self.vars.iter().position(|&v| v == var).map(|i| self.cards[i])
    }

    /// Value for a full assignment to this factor's variables, given in the
    /// factor's own variable order.
    ///
    /// # Panics
    /// Panics if `vals.len() != vars.len()` or a value is out of range.
    pub fn prob(&self, vals: &[usize]) -> f64 {
        self.table[self.index_of(vals)]
    }

    fn index_of(&self, vals: &[usize]) -> usize {
        assert_eq!(vals.len(), self.vars.len(), "assignment arity mismatch");
        let mut idx = 0usize;
        for (i, &v) in vals.iter().enumerate() {
            assert!(v < self.cards[i], "value out of range");
            idx = idx * self.cards[i] + v;
        }
        idx
    }

    /// Pointwise product of two factors, over the union of their variables.
    pub fn product(&self, other: &Factor) -> Factor {
        // Union of variables, self's order first.
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        for (i, &v) in other.vars.iter().enumerate() {
            if !vars.contains(&v) {
                vars.push(v);
                cards.push(other.cards[i]);
            } else {
                let j = vars.iter().position(|&x| x == v).unwrap();
                assert_eq!(cards[j], other.cards[i], "cardinality mismatch for {v:?}");
            }
        }
        let size: usize = cards.iter().product();
        let mut table = vec![0.0; size];

        // Positions of each output variable within self/other.
        let self_pos: Vec<Option<usize>> =
            vars.iter().map(|v| self.vars.iter().position(|x| x == v)).collect();
        let other_pos: Vec<Option<usize>> =
            vars.iter().map(|v| other.vars.iter().position(|x| x == v)).collect();

        let mut assign = vec![0usize; vars.len()];
        let mut self_vals = vec![0usize; self.vars.len()];
        let mut other_vals = vec![0usize; other.vars.len()];
        for (out_idx, slot) in table.iter_mut().enumerate() {
            decode(out_idx, &cards, &mut assign);
            for (k, &p) in self_pos.iter().enumerate() {
                if let Some(p) = p {
                    self_vals[p] = assign[k];
                }
            }
            for (k, &p) in other_pos.iter().enumerate() {
                if let Some(p) = p {
                    other_vals[p] = assign[k];
                }
            }
            *slot = self.prob(&self_vals) * other.prob(&other_vals);
        }
        Factor::new(vars, cards, table)
    }

    /// Sums out `var`, producing a factor over the remaining variables.
    ///
    /// If `var` is not mentioned, returns a clone.
    pub fn marginalize_out(&self, var: VarId) -> Factor {
        let Some(pos) = self.vars.iter().position(|&v| v == var) else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        let removed_card = cards.remove(pos);
        let size: usize = cards.iter().product();
        let mut table = vec![0.0; size];
        let mut assign = vec![0usize; self.vars.len()];
        for (idx, &p) in self.table.iter().enumerate() {
            decode(idx, &self.cards, &mut assign);
            let mut out_idx = 0usize;
            for (i, &a) in assign.iter().enumerate() {
                if i == pos {
                    continue;
                }
                let card = self.cards[i];
                out_idx = out_idx * card + a;
            }
            table[out_idx] += p;
        }
        debug_assert!(removed_card > 0);
        Factor::new(vars, cards, table)
    }

    /// Restricts the factor by fixing `var = value`, producing a factor over
    /// the remaining variables. No-op clone if `var` is absent.
    pub fn condition(&self, var: VarId, value: usize) -> Factor {
        let Some(pos) = self.vars.iter().position(|&v| v == var) else {
            return self.clone();
        };
        assert!(value < self.cards[pos], "conditioned value out of range");
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let size: usize = cards.iter().product();
        let mut table = Vec::with_capacity(size);
        let mut assign = vec![0usize; self.vars.len()];
        for idx in 0..self.table.len() {
            decode(idx, &self.cards, &mut assign);
            if assign[pos] == value {
                table.push(self.table[idx]);
            }
        }
        Factor::new(vars, cards, table)
    }

    /// Normalizes the table to sum to 1. Returns the normalization constant
    /// (the partition function with respect to this factor alone).
    ///
    /// # Panics
    /// Panics if the table sums to zero.
    pub fn normalize(&mut self) -> f64 {
        let z: f64 = self.table.iter().sum();
        assert!(z > 0.0, "cannot normalize an all-zero factor");
        for p in &mut self.table {
            *p /= z;
        }
        z
    }

    /// Sum of all table entries.
    pub fn total(&self) -> f64 {
        self.table.iter().sum()
    }
}

/// Decodes a row-major `index` over `cards` into `out` (last fastest).
fn decode(index: usize, cards: &[usize], out: &mut [usize]) {
    let mut rest = index;
    for i in (0..cards.len()).rev() {
        out[i] = rest % cards[i];
        rest /= cards[i];
    }
    debug_assert_eq!(rest, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_ab() -> Factor {
        Factor::new(vec![VarId(0), VarId(1)], vec![2, 3], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
    }

    #[test]
    fn prob_indexing_is_row_major() {
        let f = f_ab();
        assert_eq!(f.prob(&[0, 0]), 0.1);
        assert_eq!(f.prob(&[0, 2]), 0.3);
        assert_eq!(f.prob(&[1, 0]), 0.4);
        assert_eq!(f.prob(&[1, 2]), 0.6);
    }

    #[test]
    fn marginalize_sums_correct_axis() {
        let f = f_ab();
        let m = f.marginalize_out(VarId(0));
        assert_eq!(m.vars(), &[VarId(1)]);
        assert!((m.prob(&[0]) - 0.5).abs() < 1e-12);
        assert!((m.prob(&[1]) - 0.7).abs() < 1e-12);
        assert!((m.prob(&[2]) - 0.9).abs() < 1e-12);

        let m2 = f.marginalize_out(VarId(1));
        assert!((m2.prob(&[0]) - 0.6).abs() < 1e-12);
        assert!((m2.prob(&[1]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn marginalize_absent_var_is_identity() {
        let f = f_ab();
        assert_eq!(f.marginalize_out(VarId(9)), f);
    }

    #[test]
    fn product_with_scalar() {
        let f = f_ab();
        let s = Factor::scalar(2.0);
        let p = f.product(&s);
        assert_eq!(p.vars(), f.vars());
        assert!((p.prob(&[1, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_shared_and_disjoint_vars() {
        let f = f_ab();
        let g = Factor::new(vec![VarId(1), VarId(2)], vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let p = f.product(&g);
        assert_eq!(p.vars().len(), 3);
        // f(a=1,b=2) * g(b=2,c=1) = 0.6 * 6
        let vals = [1usize, 2, 1]; // order: x0, x1, x2
        assert!((p.prob(&vals) - 3.6).abs() < 1e-12);
    }

    #[test]
    fn condition_fixes_value() {
        let f = f_ab();
        let c = f.condition(VarId(1), 2);
        assert_eq!(c.vars(), &[VarId(0)]);
        assert_eq!(c.prob(&[0]), 0.3);
        assert_eq!(c.prob(&[1]), 0.6);
    }

    #[test]
    fn normalize_returns_partition_function() {
        let mut f = f_ab();
        let z = f.normalize();
        assert!((z - 2.1).abs() < 1e-12);
        assert!((f.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "table size mismatch")]
    fn bad_table_size_panics() {
        let _ = Factor::new(vec![VarId(0)], vec![2], vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_var_panics() {
        let _ = Factor::new(vec![VarId(0), VarId(0)], vec![2, 2], vec![0.; 4]);
    }

    #[test]
    fn assignment_get() {
        let a = Assignment::new(vec![VarId(3), VarId(5)], vec![1, 0]);
        assert_eq!(a.get(VarId(3)), Some(1));
        assert_eq!(a.get(VarId(5)), Some(0));
        assert_eq!(a.get(VarId(4)), None);
    }
}
