//! Exact inference: exhaustive enumeration and variable elimination.

use crate::factor::{Factor, VarId};
use std::collections::BTreeSet;

/// Error raised by [`eliminate`] when an intermediate factor would exceed the
/// size budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EliminationError {
    /// The size (number of table entries) the offending intermediate factor
    /// would have had.
    pub attempted_size: usize,
}

impl std::fmt::Display for EliminationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "variable elimination aborted: intermediate factor of {} entries exceeds budget",
            self.attempted_size
        )
    }
}

impl std::error::Error for EliminationError {}

/// Maximum intermediate-factor size tolerated by [`eliminate`].
const MAX_INTERMEDIATE: usize = 1 << 22;

/// Computes the *unnormalized* joint over `targets` by multiplying all
/// `factors` and summing out everything else, via exhaustive enumeration.
///
/// Exponential in the total number of variables; intended for small
/// components and tests.
pub fn enumerate_joint(factors: &[&Factor], targets: &[VarId]) -> Factor {
    let mut product = Factor::scalar(1.0);
    for f in factors {
        product = product.product(f);
    }
    let target_set: BTreeSet<VarId> = targets.iter().copied().collect();
    let to_remove: Vec<VarId> =
        product.vars().iter().copied().filter(|v| !target_set.contains(v)).collect();
    for v in to_remove {
        product = product.marginalize_out(v);
    }
    product
}

/// Computes the *unnormalized* joint over `targets` by variable elimination
/// with a min-degree heuristic.
///
/// Returns an error (rather than exhausting memory) if an intermediate factor
/// would exceed an internal size budget; callers fall back to
/// [`enumerate_joint`] or approximate schemes.
pub fn eliminate(factors: &[&Factor], targets: &[VarId]) -> Result<Factor, EliminationError> {
    let target_set: BTreeSet<VarId> = targets.iter().copied().collect();
    let mut pool: Vec<Factor> = factors.iter().map(|f| (*f).clone()).collect();

    loop {
        // Collect variables still present that are not targets.
        let mut remaining: BTreeSet<VarId> = BTreeSet::new();
        for f in &pool {
            for &v in f.vars() {
                if !target_set.contains(&v) {
                    remaining.insert(v);
                }
            }
        }
        let Some(&var) = remaining.iter().min_by_key(|&&v| elimination_cost(&pool, v)) else {
            break;
        };

        // Multiply together all factors mentioning `var`, then sum it out.
        let (mentioning, rest): (Vec<Factor>, Vec<Factor>) =
            pool.into_iter().partition(|f| f.vars().contains(&var));
        let mut size: usize = 1;
        {
            let mut seen: BTreeSet<VarId> = BTreeSet::new();
            for f in &mentioning {
                for (i, &v) in f.vars().iter().enumerate() {
                    if seen.insert(v) {
                        size = size.saturating_mul(f.cards()[i]);
                    }
                }
            }
        }
        if size > MAX_INTERMEDIATE {
            return Err(EliminationError { attempted_size: size });
        }
        let mut merged = Factor::scalar(1.0);
        for f in &mentioning {
            merged = merged.product(f);
        }
        let merged = merged.marginalize_out(var);
        pool = rest;
        pool.push(merged);
    }

    let mut result = Factor::scalar(1.0);
    for f in &pool {
        result = result.product(f);
    }
    Ok(result)
}

/// Size of the factor that would result from eliminating `var` now.
fn elimination_cost(pool: &[Factor], var: VarId) -> usize {
    let mut seen: BTreeSet<VarId> = BTreeSet::new();
    let mut size: usize = 1;
    for f in pool {
        if f.vars().contains(&var) {
            for (i, &v) in f.vars().iter().enumerate() {
                if v != var && seen.insert(v) {
                    size = size.saturating_mul(f.cards()[i]);
                }
            }
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-variable chain x0 - x1 - x2 with asymmetric couplings.
    fn chain() -> Vec<Factor> {
        vec![
            Factor::new(vec![VarId(0)], vec![2], vec![0.2, 0.8]),
            Factor::new(vec![VarId(0), VarId(1)], vec![2, 2], vec![0.9, 0.1, 0.4, 0.6]),
            Factor::new(vec![VarId(1), VarId(2)], vec![2, 3], vec![1., 2., 3., 4., 5., 6.]),
        ]
    }

    #[test]
    fn eliminate_matches_enumeration() {
        let fs = chain();
        let refs: Vec<&Factor> = fs.iter().collect();
        for targets in [vec![VarId(2)], vec![VarId(0)], vec![VarId(0), VarId(2)], vec![]] {
            let a = enumerate_joint(&refs, &targets);
            let b = eliminate(&refs, &targets).unwrap();
            assert_eq!(a.vars().len(), b.vars().len());
            // Compare as normalized distributions plus totals.
            assert!((a.total() - b.total()).abs() < 1e-9, "totals differ for {targets:?}");
            if !targets.is_empty() {
                let mut an = a.clone();
                let mut bn = b.clone();
                an.normalize();
                bn.normalize();
                // Align variable orders by probing all assignments of `an`.
                let cards = an.cards().to_vec();
                let mut vals = vec![0usize; cards.len()];
                let total: usize = cards.iter().product();
                for idx in 0..total {
                    let mut rest = idx;
                    for i in (0..cards.len()).rev() {
                        vals[i] = rest % cards[i];
                        rest /= cards[i];
                    }
                    // Map an's assignment onto bn's variable order.
                    let bvals: Vec<usize> = bn
                        .vars()
                        .iter()
                        .map(|v| {
                            let p = an.vars().iter().position(|x| x == v).unwrap();
                            vals[p]
                        })
                        .collect();
                    assert!((an.prob(&vals) - bn.prob(&bvals)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn eliminate_empty_pool() {
        let out = eliminate(&[], &[]).unwrap();
        assert!((out.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumerate_joint_partition_function() {
        let fs = chain();
        let refs: Vec<&Factor> = fs.iter().collect();
        let z = enumerate_joint(&refs, &[]).total();
        // Hand-computed: sum over x0,x1 of p(x0)*c(x0,x1)*sum_x2 c2(x1,x2)
        // sum_x2 rows: x1=0 -> 6, x1=1 -> 15
        // x0=0: 0.2*(0.9*6 + 0.1*15) = 0.2*6.9 = 1.38
        // x0=1: 0.8*(0.4*6 + 0.6*15) = 0.8*11.4 = 9.12
        assert!((z - 10.5).abs() < 1e-9);
    }
}
