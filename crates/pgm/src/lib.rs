#![warn(missing_docs)]

//! `pgm` — a small, exact discrete probabilistic-graphical-model engine.
//!
//! This crate is the substrate the paper calls "the PGM engine" (Koller &
//! Friedman style factor graphs). A probabilistic entity graph (PEG) is a
//! graphical model whose factors are
//!
//! * *node existence factors* — one per reference, forcing exactly one
//!   containing entity to exist,
//! * *node label factors* — one per entity,
//! * *edge existence factors* — one per entity pair.
//!
//! The core library (`pegmatch`) uses specialized exact-cover enumeration for
//! the existence component in the hot path; this crate provides the general
//! machinery (tabular factors, factor product, marginalization, variable
//! elimination, exhaustive enumeration) used for model construction,
//! validation and tests.
//!
//! # Example
//!
//! ```
//! use pgm::{Factor, MarkovNet, VarId};
//!
//! // Two binary variables with a soft "equality" coupling.
//! let a = VarId(0);
//! let b = VarId(1);
//! let coupling = Factor::new(vec![a, b], vec![2, 2], vec![0.9, 0.1, 0.1, 0.9]);
//! let prior = Factor::new(vec![a], vec![2], vec![0.3, 0.7]);
//!
//! let mut net = MarkovNet::new();
//! net.add_factor(coupling);
//! net.add_factor(prior);
//! let marg = net.marginal(&[b]);
//! let p_b1 = marg.prob(&[1]);
//! assert!((p_b1 - (0.3 * 0.1 + 0.7 * 0.9)).abs() < 1e-12);
//! ```

mod factor;
mod infer;
mod network;

pub use factor::{Assignment, Factor, VarId};
pub use infer::{eliminate, enumerate_joint, EliminationError};
pub use network::{ComponentId, MarkovNet};

/// Numerical tolerance used when comparing probabilities in this crate's
/// internal assertions and tests.
pub const PROB_EPS: f64 = 1e-9;
