//! Markov networks: factor collections with connected-component structure.

use crate::factor::{Assignment, Factor, VarId};
use crate::infer::{eliminate, enumerate_joint};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a connected component of a Markov network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

/// A Markov network: a set of factors over discrete variables.
///
/// Two variables are connected when they co-occur in some factor; each
/// connected component of the resulting graph can be normalized independently
/// (Equation 7 of the paper), which is how `pegmatch` factorizes `Pr(S.n)`.
#[derive(Clone, Debug, Default)]
pub struct MarkovNet {
    factors: Vec<Factor>,
    /// Cardinality per variable, collected from factors.
    cards: BTreeMap<VarId, usize>,
}

impl MarkovNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a factor.
    ///
    /// # Panics
    /// Panics when the factor disagrees with previously seen cardinalities.
    pub fn add_factor(&mut self, factor: Factor) {
        for (i, &v) in factor.vars().iter().enumerate() {
            let card = factor.cards()[i];
            let prev = self.cards.insert(v, card);
            if let Some(prev) = prev {
                assert_eq!(prev, card, "cardinality mismatch for {v:?}");
            }
        }
        self.factors.push(factor);
    }

    /// All factors added so far.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// All variables mentioned by any factor.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.cards.keys().copied()
    }

    /// Cardinality of `var`, if known.
    pub fn card_of(&self, var: VarId) -> Option<usize> {
        self.cards.get(&var).copied()
    }

    /// Number of factors.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// True when no factor has been added.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Partitions variables into connected components (variables co-occurring
    /// in a factor are connected). Returns, per component, the sorted variable
    /// set and the indices of the factors fully contained in it.
    pub fn components(&self) -> Vec<(Vec<VarId>, Vec<usize>)> {
        let vars: Vec<VarId> = self.cards.keys().copied().collect();
        let index_of: BTreeMap<VarId, usize> =
            vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut uf = UnionFind::new(vars.len());
        for f in &self.factors {
            let fv = f.vars();
            for w in fv.windows(2) {
                uf.union(index_of[&w[0]], index_of[&w[1]]);
            }
        }
        let mut groups: BTreeMap<usize, (Vec<VarId>, Vec<usize>)> = BTreeMap::new();
        for (i, &v) in vars.iter().enumerate() {
            groups.entry(uf.find(i)).or_default().0.push(v);
        }
        for (fi, f) in self.factors.iter().enumerate() {
            if let Some(&v0) = f.vars().first() {
                groups
                    .get_mut(&uf.find(index_of[&v0]))
                    .expect("factor variable must belong to a group")
                    .1
                    .push(fi);
            }
        }
        groups.into_values().collect()
    }

    /// Exact normalized marginal over `targets`, computed per connected
    /// component and combined. Scalar factors (over no variables) are ignored,
    /// as they cancel in normalization.
    ///
    /// Uses variable elimination when possible, falling back to enumeration.
    ///
    /// # Panics
    /// Panics if a target variable is unknown to the network.
    pub fn marginal(&self, targets: &[VarId]) -> Factor {
        for t in targets {
            assert!(self.cards.contains_key(t), "unknown variable {t:?}");
        }
        let target_set: BTreeSet<VarId> = targets.iter().copied().collect();
        let mut result = Factor::scalar(1.0);
        for (vars, factor_idx) in self.components() {
            let comp_targets: Vec<VarId> =
                vars.iter().copied().filter(|v| target_set.contains(v)).collect();
            let comp_factors: Vec<&Factor> = factor_idx.iter().map(|&i| &self.factors[i]).collect();
            let mut marg = match eliminate(&comp_factors, &comp_targets) {
                Ok(f) => f,
                Err(_) => enumerate_joint(&comp_factors, &comp_targets),
            };
            if comp_targets.is_empty() {
                // Fully summed out: contributes only its partition function,
                // which cancels under normalization. Skip.
                continue;
            }
            marg.normalize();
            result = result.product(&marg);
        }
        result
    }

    /// Exact normalized marginal over `targets` given `evidence`
    /// (conditioning): every factor is restricted to the observed values,
    /// then the conditioned network is marginalized as usual.
    ///
    /// # Panics
    /// Panics on unknown variables or out-of-range evidence values, and when
    /// the evidence has zero probability (nothing to condition on).
    pub fn marginal_given(&self, targets: &[VarId], evidence: &Assignment) -> Factor {
        for (v, &val) in evidence.vars.iter().zip(&evidence.vals) {
            let card = self.card_of(*v).unwrap_or_else(|| panic!("unknown variable {v:?}"));
            assert!(val < card, "evidence value out of range for {v:?}");
            assert!(!targets.contains(v), "variable {v:?} cannot be both target and evidence");
        }
        let mut conditioned = MarkovNet::new();
        for f in &self.factors {
            let mut g = f.clone();
            for (v, &val) in evidence.vars.iter().zip(&evidence.vals) {
                g = g.condition(*v, val);
            }
            conditioned.add_factor(g);
        }
        // Conditioning can disconnect targets from all remaining factors;
        // reintroduce uniform placeholders so marginal() knows their domain.
        for &t in targets {
            if conditioned.card_of(t).is_none() {
                let card = self.card_of(t).expect("target must be known");
                conditioned.add_factor(Factor::new(vec![t], vec![card], vec![1.0; card]));
            }
        }
        assert!(conditioned.partition_function() > 0.0, "evidence has zero probability");
        conditioned.marginal(targets)
    }

    /// The partition function: the sum over all joint assignments of the
    /// factor product. Exponential in the largest component; intended for
    /// tests and small models.
    pub fn partition_function(&self) -> f64 {
        let mut z = 1.0;
        for (_, factor_idx) in self.components() {
            let comp_factors: Vec<&Factor> = factor_idx.iter().map(|&i| &self.factors[i]).collect();
            let joint = enumerate_joint(&comp_factors, &[]);
            z *= joint.total();
        }
        // Scalar factors belong to no component; fold them in directly.
        for f in &self.factors {
            if f.is_empty() {
                z *= f.table()[0];
            }
        }
        z
    }
}

/// Plain union-find with path compression and union by size.
#[derive(Clone, Debug)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), size: vec![1; n] }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_split_independent_factors() {
        let mut net = MarkovNet::new();
        net.add_factor(Factor::new(vec![VarId(0), VarId(1)], vec![2, 2], vec![1.; 4]));
        net.add_factor(Factor::new(vec![VarId(2)], vec![2], vec![0.4, 0.6]));
        net.add_factor(Factor::new(vec![VarId(1), VarId(3)], vec![2, 2], vec![1.; 4]));
        let comps = net.components();
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = comps.iter().map(|(v, _)| v.len()).collect();
        assert!(sizes.contains(&3) && sizes.contains(&1));
    }

    #[test]
    fn marginal_of_independent_var() {
        let mut net = MarkovNet::new();
        net.add_factor(Factor::new(vec![VarId(0)], vec![2], vec![0.25, 0.75]));
        net.add_factor(Factor::new(vec![VarId(1)], vec![3], vec![1.0, 1.0, 2.0]));
        let m = net.marginal(&[VarId(1)]);
        assert!((m.prob(&[2]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_joins_components() {
        let mut net = MarkovNet::new();
        net.add_factor(Factor::new(vec![VarId(0)], vec![2], vec![0.3, 0.7]));
        net.add_factor(Factor::new(vec![VarId(1)], vec![2], vec![0.9, 0.1]));
        let m = net.marginal(&[VarId(0), VarId(1)]);
        // Independent product.
        let p = m.prob(&[1, 0]);
        assert!((p - 0.7 * 0.9).abs() < 1e-12);
    }

    #[test]
    fn partition_function_multiplies_components() {
        let mut net = MarkovNet::new();
        net.add_factor(Factor::new(vec![VarId(0)], vec![2], vec![2.0, 3.0]));
        net.add_factor(Factor::new(vec![VarId(1)], vec![2], vec![10.0, 1.0]));
        net.add_factor(Factor::scalar(0.5));
        assert!((net.partition_function() - 5.0 * 11.0 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_ne!(uf.find(0), uf.find(2));
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(3));
    }

    #[test]
    fn conditioning_matches_hand_computation() {
        // x0 ~ (0.3, 0.7); coupling prefers equality 0.9/0.1.
        let mut net = MarkovNet::new();
        net.add_factor(Factor::new(vec![VarId(0)], vec![2], vec![0.3, 0.7]));
        net.add_factor(Factor::new(vec![VarId(0), VarId(1)], vec![2, 2], vec![0.9, 0.1, 0.1, 0.9]));
        // P(x0 | x1 = 1) ∝ (0.3·0.1, 0.7·0.9).
        let m = net.marginal_given(&[VarId(0)], &Assignment::new(vec![VarId(1)], vec![1]));
        let expect1 = 0.63 / (0.03 + 0.63);
        assert!((m.prob(&[1]) - expect1).abs() < 1e-12);
        assert!((m.prob(&[0]) - (1.0 - expect1)).abs() < 1e-12);
    }

    #[test]
    fn conditioning_on_independent_evidence_is_noop() {
        let mut net = MarkovNet::new();
        net.add_factor(Factor::new(vec![VarId(0)], vec![2], vec![0.25, 0.75]));
        net.add_factor(Factor::new(vec![VarId(1)], vec![2], vec![0.5, 0.5]));
        let m = net.marginal_given(&[VarId(0)], &Assignment::new(vec![VarId(1)], vec![0]));
        assert!((m.prob(&[1]) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero probability")]
    fn impossible_evidence_panics() {
        let mut net = MarkovNet::new();
        net.add_factor(Factor::new(vec![VarId(0)], vec![2], vec![1.0, 0.0]));
        net.add_factor(Factor::new(vec![VarId(1)], vec![2], vec![0.5, 0.5]));
        let _ = net.marginal_given(&[VarId(1)], &Assignment::new(vec![VarId(0)], vec![1]));
    }

    #[test]
    #[should_panic(expected = "cardinality mismatch")]
    fn cardinality_conflict_panics() {
        let mut net = MarkovNet::new();
        net.add_factor(Factor::new(vec![VarId(0)], vec![2], vec![1.0; 2]));
        net.add_factor(Factor::new(vec![VarId(0)], vec![3], vec![1.0; 3]));
    }
}
