//! A fast, non-cryptographic hasher for integer-heavy keys.
//!
//! Equivalent in spirit to `rustc-hash`'s FxHash (multiply-and-rotate mixing);
//! implemented in-tree to keep the dependency set to the sanctioned crates.
//! HashDoS resistance is irrelevant here: all keys are internal ids.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-mix hasher (word-at-a-time for integer writes).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        m.insert((1, 2), 0.5);
        m.insert((2, 1), 0.7);
        assert_eq!(m[&(1, 2)], 0.5);
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            s.insert(i * 7919);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn hashes_differ_for_nearby_keys() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        // Not a statistical test, just a sanity check against constant output.
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
        assert_ne!(h(1 << 32), h(1 << 33));
    }

    #[test]
    fn byte_writes_cover_remainder_path() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh12345"); // 8 + 5 bytes
        let mut b = FxHasher::default();
        b.write(b"abcdefgh12346");
        assert_ne!(a.finish(), b.finish());
    }
}
