//! Persisting entity graphs in a [`kvstore`] file.
//!
//! Layout (all keys are short prefixed byte strings; all integers big-endian
//! via [`kvstore::codec`]):
//!
//! ```text
//! "M"            -> n_nodes:u32 | n_edges:u32 | n_labels:u16
//! "L" id:u16     -> label name (utf-8)
//! "N" id:u32     -> sparse label dist | refs
//! "E" id:u32     -> a:u32 | b:u32 | edge probability
//! ```
//!
//! Edge probabilities are tagged: `0` independent (`f64` bits), `1`
//! conditional (sparse non-zero CPT entries).

use crate::dist::{CondTable, EdgeProbability, LabelDist};
use crate::entity::{EntityGraph, EntityGraphBuilder, EntityId};
use crate::labels::{Label, LabelTable};
use crate::refgraph::RefId;
use kvstore::codec;
use kvstore::{Kv, KvError, Result};

const TAG_INDEP: u8 = 0;
const TAG_COND: u8 = 1;

fn meta_key() -> Vec<u8> {
    b"M".to_vec()
}

fn label_key(i: u16) -> Vec<u8> {
    let mut k = b"L".to_vec();
    codec::push_u16(&mut k, i);
    k
}

fn node_key(i: u32) -> Vec<u8> {
    let mut k = b"N".to_vec();
    codec::push_u32(&mut k, i);
    k
}

fn edge_key(i: u32) -> Vec<u8> {
    let mut k = b"E".to_vec();
    codec::push_u32(&mut k, i);
    k
}

fn encode_dist(d: &LabelDist, out: &mut Vec<u8>) {
    let entries: Vec<(u16, f64)> = d
        .as_slice()
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.0)
        .map(|(i, &p)| (i as u16, p))
        .collect();
    codec::push_u16(out, entries.len() as u16);
    for (l, p) in entries {
        codec::push_u16(out, l);
        codec::push_f64_prob(out, p);
    }
}

fn decode_dist(buf: &[u8], off: usize, n_labels: usize) -> (LabelDist, usize) {
    let count = codec::read_u16(buf, off) as usize;
    let mut pos = off + 2;
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let l = Label(codec::read_u16(buf, pos));
        let p = codec::read_f64_prob(buf, pos + 2);
        pairs.push((l, p));
        pos += 10;
    }
    (LabelDist::from_pairs(&pairs, n_labels), pos)
}

fn encode_edge_prob(p: &EdgeProbability, out: &mut Vec<u8>) {
    match p {
        EdgeProbability::Independent(q) => {
            out.push(TAG_INDEP);
            codec::push_f64_prob(out, *q);
        }
        EdgeProbability::Conditional(t) => {
            out.push(TAG_COND);
            codec::push_u16(out, t.n_labels() as u16);
            let entries: Vec<(u16, u16, f64)> = (0..t.n_labels())
                .flat_map(|a| (0..t.n_labels()).map(move |b| (a, b)))
                .filter_map(|(a, b)| {
                    let p = t.prob(Label(a as u16), Label(b as u16));
                    (p > 0.0).then_some((a as u16, b as u16, p))
                })
                .collect();
            codec::push_u16(out, entries.len() as u16);
            for (a, b, p) in entries {
                codec::push_u16(out, a);
                codec::push_u16(out, b);
                codec::push_f64_prob(out, p);
            }
        }
    }
}

fn decode_edge_prob(buf: &[u8], off: usize) -> Result<EdgeProbability> {
    match buf[off] {
        TAG_INDEP => Ok(EdgeProbability::Independent(codec::read_f64_prob(buf, off + 1))),
        TAG_COND => {
            let n = codec::read_u16(buf, off + 1) as usize;
            let count = codec::read_u16(buf, off + 3) as usize;
            let mut t = CondTable::zeros(n);
            let mut pos = off + 5;
            for _ in 0..count {
                let a = Label(codec::read_u16(buf, pos));
                let b = Label(codec::read_u16(buf, pos + 2));
                let p = codec::read_f64_prob(buf, pos + 4);
                t.set(a, b, p);
                pos += 12;
            }
            Ok(EdgeProbability::Conditional(t))
        }
        t => Err(KvError::Corrupt(format!("unknown edge probability tag {t}"))),
    }
}

/// Writes `graph` into `kv` (overwriting any previous graph).
pub fn save_entity_graph(graph: &EntityGraph, kv: &mut dyn Kv) -> Result<()> {
    let mut meta = Vec::new();
    codec::push_u32(&mut meta, graph.n_nodes() as u32);
    codec::push_u32(&mut meta, graph.n_edges() as u32);
    codec::push_u16(&mut meta, graph.label_table().len() as u16);
    kv.put(&meta_key(), &meta)?;

    for (i, name) in graph.label_table().names().iter().enumerate() {
        kv.put(&label_key(i as u16), name.as_bytes())?;
    }
    for v in graph.node_ids() {
        let node = graph.node(v);
        let mut buf = Vec::new();
        encode_dist(&node.labels, &mut buf);
        codec::push_u16(&mut buf, node.refs.len() as u16);
        for r in &node.refs {
            codec::push_u32(&mut buf, r.0);
        }
        kv.put(&node_key(v.0), &buf)?;
    }
    for (i, e) in graph.edges().iter().enumerate() {
        let mut buf = Vec::new();
        codec::push_u32(&mut buf, e.a.0);
        codec::push_u32(&mut buf, e.b.0);
        encode_edge_prob(&e.prob, &mut buf);
        kv.put(&edge_key(i as u32), &buf)?;
    }
    Ok(())
}

/// Reads an entity graph previously written by [`save_entity_graph`].
pub fn load_entity_graph(kv: &dyn Kv) -> Result<EntityGraph> {
    let meta =
        kv.get(&meta_key())?.ok_or_else(|| KvError::Corrupt("missing graph meta record".into()))?;
    let n_nodes = codec::read_u32(&meta, 0);
    let n_edges = codec::read_u32(&meta, 4);
    let n_labels = codec::read_u16(&meta, 8);

    let mut names = Vec::with_capacity(n_labels as usize);
    for i in 0..n_labels {
        let raw =
            kv.get(&label_key(i))?.ok_or_else(|| KvError::Corrupt(format!("missing label {i}")))?;
        names.push(String::from_utf8(raw).map_err(|_| KvError::Corrupt("label not utf-8".into()))?);
    }
    let table = LabelTable::from_names(&names);
    let n_alpha = table.len();
    let mut builder = EntityGraphBuilder::new(table);

    for i in 0..n_nodes {
        let raw =
            kv.get(&node_key(i))?.ok_or_else(|| KvError::Corrupt(format!("missing node {i}")))?;
        let (dist, mut pos) = decode_dist(&raw, 0, n_alpha);
        let n_refs = codec::read_u16(&raw, pos) as usize;
        pos += 2;
        let mut refs = Vec::with_capacity(n_refs);
        for _ in 0..n_refs {
            refs.push(RefId(codec::read_u32(&raw, pos)));
            pos += 4;
        }
        builder.add_node(dist, refs);
    }
    for i in 0..n_edges {
        let raw =
            kv.get(&edge_key(i))?.ok_or_else(|| KvError::Corrupt(format!("missing edge {i}")))?;
        let a = EntityId(codec::read_u32(&raw, 0));
        let b = EntityId(codec::read_u32(&raw, 4));
        let prob = decode_edge_prob(&raw, 8)?;
        builder.add_edge(a, b, prob);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::MemStore;

    fn sample_graph() -> EntityGraph {
        let table = LabelTable::from_names(["a", "r", "i"]);
        let n = table.len();
        let mut b = EntityGraphBuilder::new(table);
        let v0 = b.add_node(
            LabelDist::from_pairs(&[(Label(1), 0.25), (Label(2), 0.75)], n),
            vec![RefId(0)],
        );
        let v1 = b.add_node(LabelDist::delta(Label(0), n), vec![RefId(1)]);
        let v2 = b.add_node(
            LabelDist::from_pairs(&[(Label(1), 0.5), (Label(2), 0.5)], n),
            vec![RefId(2), RefId(3)],
        );
        b.add_edge(v0, v1, EdgeProbability::Independent(0.9));
        let cpt = CondTable::from_fn(n, |a, b| if a == b { 0.8 } else { 0.3 });
        b.add_edge(v1, v2, EdgeProbability::Conditional(cpt));
        b.build()
    }

    #[test]
    fn roundtrip_through_memstore() {
        let g = sample_graph();
        let mut kv = MemStore::new();
        save_entity_graph(&g, &mut kv).unwrap();
        let g2 = load_entity_graph(&kv).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        assert_eq!(g2.n_edges(), g.n_edges());
        assert_eq!(g2.label_table().names(), g.label_table().names());
        for v in g.node_ids() {
            assert_eq!(g2.node(v).labels, g.node(v).labels);
            assert_eq!(g2.node(v).refs, g.node(v).refs);
        }
        assert_eq!(g2.edge_prob(EntityId(1), EntityId(2), Label(1), Label(1)), 0.8);
        assert_eq!(g2.edge_prob(EntityId(1), EntityId(2), Label(1), Label(2)), 0.3);
        assert_eq!(g2.edge_prob_max(EntityId(0), EntityId(1)), 0.9);
    }

    #[test]
    fn roundtrip_through_disk_btree() {
        let mut path = std::env::temp_dir();
        path.push(format!("graphstore-persist-{}", std::process::id()));
        let g = sample_graph();
        {
            let mut store = kvstore::BTreeStore::create(&path).unwrap();
            save_entity_graph(&g, &mut store).unwrap();
            store.flush().unwrap();
        }
        {
            let store = kvstore::BTreeStore::open(&path).unwrap();
            let g2 = load_entity_graph(&store).unwrap();
            assert_eq!(g2.n_nodes(), 3);
            assert_eq!(g2.n_edges(), 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_meta_fails() {
        let kv = MemStore::new();
        assert!(load_entity_graph(&kv).is_err());
    }
}
