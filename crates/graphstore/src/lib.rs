#![warn(missing_docs)]

//! `graphstore` — storage for reference graphs and probabilistic entity graphs.
//!
//! The paper's prototype keeps its graphs in Neo4j; this crate is that
//! substrate, specialized to the data model of the paper:
//!
//! * [`RefGraph`] — the *reference-level* input network: references with
//!   label distributions, uncertain edges, and reference sets (potential
//!   entities) with raw existence-factor values. This is the storage half of
//!   the probabilistic graph description (PGD, Definition 1).
//! * [`EntityGraph`] — the *entity-level* probabilistic entity graph `G_U`
//!   that query processing operates on: one node per reference set, merged
//!   label distributions, merged (possibly label-conditional) edge
//!   probabilities, CSR adjacency, and per-node reference lists used to
//!   enforce the "no two nodes share a reference" constraint.
//! * [`persist`] — durable storage of an [`EntityGraph`] in a
//!   [`kvstore::BTreeStore`] file.
//!
//! Label strings are interned into dense [`Label`] ids via [`LabelTable`];
//! distributions are dense vectors over the label alphabet.

pub mod csv;
pub mod dist;
pub mod entity;
pub mod hash;
pub mod labels;
pub mod ops;
pub mod persist;
pub mod refgraph;
pub mod stats;

pub use dist::{CondTable, EdgeProbability, LabelDist};
pub use entity::{EntityGraph, EntityGraphBuilder, EntityId, EntityNode};
pub use labels::{Label, LabelTable};
pub use ops::GraphOp;
pub use refgraph::{EntityRef, RefEdge, RefGraph, RefId, RefNode, RefSet, RefSetId};
pub use stats::GraphStats;
