//! Summary statistics over entity graphs (used by the experiment harness
//! and for sanity-checking generated workloads against the paper's shapes).

use crate::entity::{EntityGraph, EntityId};
use crate::Label;

/// Aggregate structural and probabilistic statistics of an entity graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub n_nodes: usize,
    /// Undirected edge count.
    pub n_edges: usize,
    /// Average degree (2·E / V).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of connected components (by edges).
    pub n_components: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
    /// Nodes whose label distribution has more than one supported label.
    pub uncertain_nodes: usize,
    /// Edges whose maximum existence probability is below 1.
    pub uncertain_edges: usize,
    /// Nodes carrying more than one underlying reference (merged entities).
    pub merged_entities: usize,
}

impl GraphStats {
    /// Computes statistics in one pass plus a union-find over edges.
    pub fn compute(graph: &EntityGraph) -> GraphStats {
        let n = graph.n_nodes();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut max_degree = 0usize;
        let mut uncertain_nodes = 0usize;
        let mut merged_entities = 0usize;
        for v in graph.node_ids() {
            max_degree = max_degree.max(graph.degree(v));
            if graph.node(v).labels.support_size() > 1 {
                uncertain_nodes += 1;
            }
            if graph.node(v).refs.len() > 1 {
                merged_entities += 1;
            }
        }
        let mut uncertain_edges = 0usize;
        for e in graph.edges() {
            if e.prob.max_prob() < 1.0 {
                uncertain_edges += 1;
            }
            let (a, b) = (find(&mut parent, e.a.0), find(&mut parent, e.b.0));
            if a != b {
                parent[a as usize] = b;
            }
        }
        let mut sizes = vec![0usize; n];
        for i in 0..n as u32 {
            sizes[find(&mut parent, i) as usize] += 1;
        }
        let n_components = sizes.iter().filter(|&&s| s > 0).count();
        let largest_component = sizes.iter().copied().max().unwrap_or(0);
        GraphStats {
            n_nodes: n,
            n_edges: graph.n_edges(),
            avg_degree: if n == 0 { 0.0 } else { 2.0 * graph.n_edges() as f64 / n as f64 },
            max_degree,
            n_components,
            largest_component,
            uncertain_nodes,
            uncertain_edges,
            merged_entities,
        }
    }
}

/// Histogram of node degrees (index = degree, value = node count),
/// truncated at `max_degree`.
pub fn degree_histogram(graph: &EntityGraph, max_degree: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_degree + 1];
    for v in graph.node_ids() {
        let d = graph.degree(v).min(max_degree);
        hist[d] += 1;
    }
    hist
}

/// Counts nodes that can carry `label` (non-zero probability).
pub fn label_frequency(graph: &EntityGraph, label: Label) -> usize {
    graph.node_ids().filter(|&v| graph.label_prob(v, label) > 0.0).count()
}

/// Nodes sorted by degree, descending (hubs first); ties by id.
pub fn hubs(graph: &EntityGraph, k: usize) -> Vec<EntityId> {
    let mut ids: Vec<EntityId> = graph.node_ids().collect();
    ids.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.0));
    ids.truncate(k);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{EdgeProbability, LabelDist};
    use crate::entity::EntityGraphBuilder;
    use crate::labels::LabelTable;
    use crate::refgraph::RefId;

    fn sample() -> EntityGraph {
        let table = LabelTable::from_names(["a", "b"]);
        let n = table.len();
        let mut b = EntityGraphBuilder::new(table);
        let v0 = b.add_node(LabelDist::delta(Label(0), n), vec![RefId(0)]);
        let v1 = b.add_node(
            LabelDist::from_pairs(&[(Label(0), 0.5), (Label(1), 0.5)], n),
            vec![RefId(1), RefId(2)],
        );
        let v2 = b.add_node(LabelDist::delta(Label(1), n), vec![RefId(3)]);
        let _v3 = b.add_node(LabelDist::delta(Label(1), n), vec![RefId(4)]); // isolated
        b.add_edge(v0, v1, EdgeProbability::Independent(1.0));
        b.add_edge(v1, v2, EdgeProbability::Independent(0.5));
        b.build()
    }

    #[test]
    fn stats_basics() {
        let g = sample();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n_nodes, 4);
        assert_eq!(s.n_edges, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.n_components, 2); // chain + isolated node
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.uncertain_nodes, 1);
        assert_eq!(s.uncertain_edges, 1);
        assert_eq!(s.merged_entities, 1);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_truncates() {
        let g = sample();
        let h = degree_histogram(&g, 2);
        assert_eq!(h, vec![1, 2, 1]);
        let h1 = degree_histogram(&g, 1);
        assert_eq!(h1, vec![1, 3]); // degree-2 node truncated into bucket 1
    }

    #[test]
    fn label_frequency_counts_support() {
        let g = sample();
        assert_eq!(label_frequency(&g, Label(0)), 2);
        assert_eq!(label_frequency(&g, Label(1)), 3);
    }

    #[test]
    fn hubs_order() {
        let g = sample();
        let top = hubs(&g, 2);
        assert_eq!(top[0].0, 1); // degree 2
        assert_eq!(top.len(), 2);
    }
}
