//! The reference-level network: the storage half of the probabilistic graph
//! description (PGD, Definition 1).

use crate::dist::{EdgeProbability, LabelDist};
use crate::hash::FxHashMap;
use crate::labels::LabelTable;

/// Identifier of an observed reference (a mention of an object).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefId(pub u32);

impl RefId {
    /// The id as an index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for RefId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a reference set (a potential entity, `s ∈ S`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefSetId(pub u32);

/// A reference with its label distribution `p_r(r.x)`.
#[derive(Clone, Debug)]
pub struct RefNode {
    /// Distribution over Σ for this reference's label.
    pub labels: LabelDist,
}

/// An uncertain reference-level edge with `p_{(r1,r2)}((r1,r2).x)`.
#[derive(Clone, Debug)]
pub struct RefEdge {
    /// First endpoint (CPT rows refer to this endpoint's label).
    pub a: RefId,
    /// Second endpoint.
    pub b: RefId,
    /// Existence probability (independent or label-conditional).
    pub prob: EdgeProbability,
}

/// A *non-singleton* reference set with its raw node-existence factor value
/// `p_s(s.x = T)`.
///
/// Singleton sets `{r}` exist implicitly for every reference; their factor
/// values default to `1.0` and can be overridden with
/// [`RefGraph::set_singleton_weight`]. Raw factor values are combined and
/// normalized per connected component (Equation 7), so only their ratios
/// matter.
#[derive(Clone, Debug)]
pub struct RefSet {
    /// Member references (sorted, deduplicated, ≥ 2 elements).
    pub members: Vec<RefId>,
    /// Raw factor value `p_s(s.x = T)`.
    pub weight: f64,
}

/// The reference-level input network.
///
/// Together with a pair of merge functions this is a complete PGD
/// `D = (R, S, Σ, P, mΣ, m{T,F})`; `pegmatch::model` compiles it into a
/// probabilistic entity graph.
#[derive(Clone, Debug)]
pub struct RefGraph {
    labels: LabelTable,
    refs: Vec<RefNode>,
    edges: Vec<RefEdge>,
    edge_map: FxHashMap<(u32, u32), u32>,
    sets: Vec<RefSet>,
    singleton_weights: FxHashMap<RefId, f64>,
}

impl RefGraph {
    /// An empty network over the given alphabet.
    pub fn new(labels: LabelTable) -> Self {
        Self {
            labels,
            refs: Vec::new(),
            edges: Vec::new(),
            edge_map: FxHashMap::default(),
            sets: Vec::new(),
            singleton_weights: FxHashMap::default(),
        }
    }

    /// The label alphabet.
    pub fn label_table(&self) -> &LabelTable {
        &self.labels
    }

    /// Adds a reference with label distribution `labels`.
    pub fn add_ref(&mut self, labels: LabelDist) -> RefId {
        assert_eq!(labels.n_labels(), self.labels.len(), "label alphabet mismatch");
        let id = RefId(self.refs.len() as u32);
        self.refs.push(RefNode { labels });
        id
    }

    /// Adds (or replaces) an undirected uncertain edge.
    ///
    /// # Panics
    /// Panics on self loops or out-of-range endpoints.
    pub fn add_edge(&mut self, a: RefId, b: RefId, prob: EdgeProbability) {
        assert_ne!(a, b, "self loops are not part of the model");
        assert!(a.idx() < self.refs.len() && b.idx() < self.refs.len(), "endpoint out of range");
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&i) = self.edge_map.get(&key) {
            self.edges[i as usize] = RefEdge { a, b, prob };
        } else {
            let i = self.edges.len() as u32;
            self.edges.push(RefEdge { a, b, prob });
            self.edge_map.insert(key, i);
        }
    }

    /// Declares a non-singleton reference set with raw factor value `weight`.
    ///
    /// # Panics
    /// Panics if the set has fewer than two distinct members, an
    /// out-of-range member, or a negative weight.
    pub fn add_ref_set(&mut self, mut members: Vec<RefId>, weight: f64) -> RefSetId {
        members.sort_unstable();
        members.dedup();
        assert!(members.len() >= 2, "reference sets must have at least two members");
        assert!(members.iter().all(|r| r.idx() < self.refs.len()), "member out of range");
        assert!(weight >= 0.0, "negative set weight");
        let id = RefSetId(self.sets.len() as u32);
        self.sets.push(RefSet { members, weight });
        id
    }

    /// Convenience: declares a *pair* reference set `{a, b}` such that, if
    /// `a` and `b` belong to no other set, the normalized posterior
    /// probability of the merge is exactly `q` (and of staying separate,
    /// `1 − q`).
    ///
    /// Uses raw weights `√q` for the pair and `√(1−q)` for both singletons,
    /// so the merged configuration weighs `q` and the unmerged `1 − q` after
    /// the two per-reference factors multiply.
    pub fn add_pair_set_with_posterior(&mut self, a: RefId, b: RefId, q: f64) -> RefSetId {
        assert!((0.0..=1.0).contains(&q), "posterior out of range");
        self.set_singleton_weight(a, (1.0 - q).sqrt());
        self.set_singleton_weight(b, (1.0 - q).sqrt());
        self.add_ref_set(vec![a, b], q.sqrt())
    }

    /// Overrides the raw factor value of the singleton set `{r}` (default 1).
    pub fn set_singleton_weight(&mut self, r: RefId, weight: f64) {
        assert!(weight >= 0.0, "negative singleton weight");
        self.singleton_weights.insert(r, weight);
    }

    /// Raw factor value of the singleton `{r}`.
    pub fn singleton_weight(&self, r: RefId) -> f64 {
        self.singleton_weights.get(&r).copied().unwrap_or(1.0)
    }

    /// Number of references.
    pub fn n_refs(&self) -> usize {
        self.refs.len()
    }

    /// Number of reference-level edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Reference payload.
    pub fn reference(&self, r: RefId) -> &RefNode {
        &self.refs[r.idx()]
    }

    /// All reference-level edges.
    pub fn edges(&self) -> &[RefEdge] {
        &self.edges
    }

    /// The edge between `a` and `b`, if declared.
    pub fn edge_between(&self, a: RefId, b: RefId) -> Option<&RefEdge> {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.edge_map.get(&key).map(|&i| &self.edges[i as usize])
    }

    /// All declared non-singleton sets.
    pub fn ref_sets(&self) -> &[RefSet] {
        &self.sets
    }

    /// All reference ids.
    pub fn ref_ids(&self) -> impl Iterator<Item = RefId> {
        (0..self.refs.len() as u32).map(RefId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    #[test]
    fn build_figure_one_reference_network() {
        let table = LabelTable::from_names(["a", "r", "i"]);
        let n = table.len();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let mut g = RefGraph::new(table);
        let r1 = g.add_ref(LabelDist::from_pairs(&[(r, 0.25), (i, 0.75)], n));
        let r2 = g.add_ref(LabelDist::delta(a, n));
        let r3 = g.add_ref(LabelDist::delta(r, n));
        let r4 = g.add_ref(LabelDist::delta(i, n));
        g.add_edge(r1, r2, EdgeProbability::Independent(0.9));
        g.add_edge(r2, r3, EdgeProbability::Independent(1.0));
        g.add_edge(r2, r4, EdgeProbability::Independent(0.5));
        g.add_pair_set_with_posterior(r3, r4, 0.8);

        assert_eq!(g.n_refs(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.ref_sets().len(), 1);
        let set = &g.ref_sets()[0];
        assert_eq!(set.members, vec![r3, r4]);
        assert!((set.weight - 0.8f64.sqrt()).abs() < 1e-12);
        assert!((g.singleton_weight(r3) - 0.2f64.sqrt()).abs() < 1e-12);
        assert!((g.singleton_weight(r1) - 1.0).abs() < 1e-12);
        assert!(g.edge_between(r2, r1).is_some());
        assert!(g.edge_between(r1, r3).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn singleton_ref_set_rejected() {
        let table = LabelTable::from_names(["a"]);
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(Label(0), 1));
        g.add_ref_set(vec![r0, r0], 0.5);
    }

    #[test]
    fn edge_replacement() {
        let table = LabelTable::from_names(["a"]);
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r1 = g.add_ref(LabelDist::delta(Label(0), 1));
        g.add_edge(r0, r1, EdgeProbability::Independent(0.3));
        g.add_edge(r1, r0, EdgeProbability::Independent(0.8));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edge_between(r0, r1).unwrap().prob.max_prob(), 0.8);
    }
}
