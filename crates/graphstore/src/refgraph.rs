//! The reference-level network: the storage half of the probabilistic graph
//! description (PGD, Definition 1).

use crate::dist::{EdgeProbability, LabelDist};
use crate::hash::FxHashMap;
use crate::labels::LabelTable;

/// Identifier of an observed reference (a mention of an object).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefId(pub u32);

impl RefId {
    /// The id as an index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for RefId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a reference set (a potential entity, `s ∈ S`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefSetId(pub u32);

/// A reference with its label distribution `p_r(r.x)`.
#[derive(Clone, Debug)]
pub struct RefNode {
    /// Distribution over Σ for this reference's label.
    pub labels: LabelDist,
}

/// An uncertain reference-level edge with `p_{(r1,r2)}((r1,r2).x)`.
#[derive(Clone, Debug)]
pub struct RefEdge {
    /// First endpoint (CPT rows refer to this endpoint's label).
    pub a: RefId,
    /// Second endpoint.
    pub b: RefId,
    /// Existence probability (independent or label-conditional).
    pub prob: EdgeProbability,
}

/// A *non-singleton* reference set with its raw node-existence factor value
/// `p_s(s.x = T)`.
///
/// Singleton sets `{r}` exist implicitly for every reference; their factor
/// values default to `1.0` and can be overridden with
/// [`RefGraph::set_singleton_weight`]. Raw factor values are combined and
/// normalized per connected component (Equation 7), so only their ratios
/// matter.
#[derive(Clone, Debug)]
pub struct RefSet {
    /// Member references (sorted, deduplicated, ≥ 2 elements).
    pub members: Vec<RefId>,
    /// Raw factor value `p_s(s.x = T)`.
    pub weight: f64,
}

/// One entry of the entity creation log: every reference contributes its
/// implicit singleton set, every declared set contributes itself.
///
/// Entity ids in the compiled PEG are *positions in this log*, so ids are
/// stable under live mutation: appends land at the end, deletes tombstone
/// in place, and a rebuild of the mutated network reproduces the exact
/// ids the incremental path kept. For a network built refs-first (every
/// generator in `datagen` does this) the log order coincides with the
/// historical "singletons first, then declared sets" numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntityRef {
    /// The implicit singleton set of a reference.
    Singleton(RefId),
    /// A declared non-singleton set.
    Set(RefSetId),
}

/// The reference-level input network.
///
/// Together with a pair of merge functions this is a complete PGD
/// `D = (R, S, Σ, P, mΣ, m{T,F})`; `pegmatch::model` compiles it into a
/// probabilistic entity graph.
#[derive(Clone, Debug)]
pub struct RefGraph {
    labels: LabelTable,
    refs: Vec<RefNode>,
    edges: Vec<RefEdge>,
    edge_map: FxHashMap<(u32, u32), u32>,
    sets: Vec<RefSet>,
    singleton_weights: FxHashMap<RefId, f64>,
    /// Entity creation log; see [`EntityRef`].
    entities: Vec<EntityRef>,
    /// Liveness per reference (tombstoned by [`RefGraph::delete_ref`]).
    ref_alive: Vec<bool>,
    /// Liveness per declared set.
    set_alive: Vec<bool>,
    /// Creation-log position of each reference's singleton entity.
    singleton_pos: Vec<u32>,
    /// Creation-log position of each declared set's entity.
    set_pos: Vec<u32>,
}

impl RefGraph {
    /// An empty network over the given alphabet.
    pub fn new(labels: LabelTable) -> Self {
        Self {
            labels,
            refs: Vec::new(),
            edges: Vec::new(),
            edge_map: FxHashMap::default(),
            sets: Vec::new(),
            singleton_weights: FxHashMap::default(),
            entities: Vec::new(),
            ref_alive: Vec::new(),
            set_alive: Vec::new(),
            singleton_pos: Vec::new(),
            set_pos: Vec::new(),
        }
    }

    /// The label alphabet.
    pub fn label_table(&self) -> &LabelTable {
        &self.labels
    }

    /// Adds a reference with label distribution `labels`.
    pub fn add_ref(&mut self, labels: LabelDist) -> RefId {
        assert_eq!(labels.n_labels(), self.labels.len(), "label alphabet mismatch");
        let id = RefId(self.refs.len() as u32);
        self.refs.push(RefNode { labels });
        self.ref_alive.push(true);
        self.singleton_pos.push(self.entities.len() as u32);
        self.entities.push(EntityRef::Singleton(id));
        id
    }

    /// Adds (or replaces) an undirected uncertain edge.
    ///
    /// # Panics
    /// Panics on self loops or out-of-range endpoints.
    pub fn add_edge(&mut self, a: RefId, b: RefId, prob: EdgeProbability) {
        assert_ne!(a, b, "self loops are not part of the model");
        assert!(a.idx() < self.refs.len() && b.idx() < self.refs.len(), "endpoint out of range");
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&i) = self.edge_map.get(&key) {
            self.edges[i as usize] = RefEdge { a, b, prob };
        } else {
            let i = self.edges.len() as u32;
            self.edges.push(RefEdge { a, b, prob });
            self.edge_map.insert(key, i);
        }
    }

    /// Declares a non-singleton reference set with raw factor value `weight`.
    ///
    /// # Panics
    /// Panics if the set has fewer than two distinct members, an
    /// out-of-range member, or a negative weight.
    pub fn add_ref_set(&mut self, mut members: Vec<RefId>, weight: f64) -> RefSetId {
        members.sort_unstable();
        members.dedup();
        assert!(members.len() >= 2, "reference sets must have at least two members");
        assert!(members.iter().all(|r| r.idx() < self.refs.len()), "member out of range");
        assert!(weight >= 0.0, "negative set weight");
        let id = RefSetId(self.sets.len() as u32);
        self.sets.push(RefSet { members, weight });
        self.set_alive.push(true);
        self.set_pos.push(self.entities.len() as u32);
        self.entities.push(EntityRef::Set(id));
        id
    }

    /// Convenience: declares a *pair* reference set `{a, b}` such that, if
    /// `a` and `b` belong to no other set, the normalized posterior
    /// probability of the merge is exactly `q` (and of staying separate,
    /// `1 − q`).
    ///
    /// Uses raw weights `√q` for the pair and `√(1−q)` for both singletons,
    /// so the merged configuration weighs `q` and the unmerged `1 − q` after
    /// the two per-reference factors multiply.
    pub fn add_pair_set_with_posterior(&mut self, a: RefId, b: RefId, q: f64) -> RefSetId {
        assert!((0.0..=1.0).contains(&q), "posterior out of range");
        self.set_singleton_weight(a, (1.0 - q).sqrt());
        self.set_singleton_weight(b, (1.0 - q).sqrt());
        self.add_ref_set(vec![a, b], q.sqrt())
    }

    /// Overrides the raw factor value of the singleton set `{r}` (default 1).
    pub fn set_singleton_weight(&mut self, r: RefId, weight: f64) {
        assert!(weight >= 0.0, "negative singleton weight");
        self.singleton_weights.insert(r, weight);
    }

    /// Raw factor value of the singleton `{r}`.
    pub fn singleton_weight(&self, r: RefId) -> f64 {
        self.singleton_weights.get(&r).copied().unwrap_or(1.0)
    }

    /// Number of references.
    pub fn n_refs(&self) -> usize {
        self.refs.len()
    }

    /// Number of reference-level edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Reference payload.
    pub fn reference(&self, r: RefId) -> &RefNode {
        &self.refs[r.idx()]
    }

    /// All reference-level edges.
    pub fn edges(&self) -> &[RefEdge] {
        &self.edges
    }

    /// The edge between `a` and `b`, if declared.
    pub fn edge_between(&self, a: RefId, b: RefId) -> Option<&RefEdge> {
        let key = (a.0.min(b.0), a.0.max(b.0));
        self.edge_map.get(&key).map(|&i| &self.edges[i as usize])
    }

    /// All declared non-singleton sets.
    pub fn ref_sets(&self) -> &[RefSet] {
        &self.sets
    }

    /// All reference ids.
    pub fn ref_ids(&self) -> impl Iterator<Item = RefId> {
        (0..self.refs.len() as u32).map(RefId)
    }

    /// The entity creation log: one entry per (implicit or declared) set,
    /// in creation order. Position in this log *is* the compiled entity id.
    pub fn entities(&self) -> &[EntityRef] {
        &self.entities
    }

    /// Number of entities in the creation log (live + tombstoned).
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// One declared set's payload by id.
    pub fn ref_set(&self, s: RefSetId) -> &RefSet {
        &self.sets[s.0 as usize]
    }

    /// Whether a reference is live (not tombstoned).
    pub fn ref_is_alive(&self, r: RefId) -> bool {
        self.ref_alive.get(r.idx()).copied().unwrap_or(false)
    }

    /// Whether a declared set is live. A set whose members include a
    /// tombstoned reference is dead regardless of this flag; see
    /// [`RefGraph::entity_is_dead`].
    pub fn set_is_alive(&self, s: RefSetId) -> bool {
        self.set_alive.get(s.0 as usize).copied().unwrap_or(false)
    }

    /// Whether the entity at creation-log position `i` is dead: its
    /// reference was deleted (singletons), or the set was deleted or lost
    /// a member (declared sets).
    pub fn entity_is_dead(&self, i: usize) -> bool {
        match self.entities[i] {
            EntityRef::Singleton(r) => !self.ref_is_alive(r),
            EntityRef::Set(s) => {
                !self.set_is_alive(s)
                    || self.ref_set(s).members.iter().any(|&m| !self.ref_is_alive(m))
            }
        }
    }

    /// Entity id of the implicit singleton set of `r`.
    pub fn singleton_entity(&self, r: RefId) -> u32 {
        self.singleton_pos[r.idx()]
    }

    /// Entity id of declared set `s`.
    pub fn set_entity(&self, s: RefSetId) -> u32 {
        self.set_pos[s.0 as usize]
    }

    /// Tombstones reference `r` and removes its incident edges. The
    /// singleton entity `{r}` and every declared set containing `r` become
    /// dead; entity ids are unchanged. No-op structure otherwise.
    pub fn delete_ref(&mut self, r: RefId) {
        assert!(r.idx() < self.refs.len(), "reference out of range");
        self.ref_alive[r.idx()] = false;
        let mut i = 0;
        while i < self.edges.len() {
            if self.edges[i].a == r || self.edges[i].b == r {
                self.remove_edge_at(i);
            } else {
                i += 1;
            }
        }
    }

    /// Removes the edge between `a` and `b` if declared; returns whether
    /// an edge was removed.
    pub fn delete_edge(&mut self, a: RefId, b: RefId) -> bool {
        let key = (a.0.min(b.0), a.0.max(b.0));
        match self.edge_map.get(&key) {
            Some(&i) => {
                self.remove_edge_at(i as usize);
                true
            }
            None => false,
        }
    }

    /// Replaces the label distribution of a reference.
    pub fn replace_ref_labels(&mut self, r: RefId, labels: LabelDist) {
        assert_eq!(labels.n_labels(), self.labels.len(), "label alphabet mismatch");
        self.refs[r.idx()].labels = labels;
    }

    /// Replaces the raw factor value of declared set `s`.
    pub fn replace_set_weight(&mut self, s: RefSetId, weight: f64) {
        assert!(weight >= 0.0, "negative set weight");
        self.sets[s.0 as usize].weight = weight;
    }

    /// Tombstones declared set `s`; member references stay live.
    pub fn delete_set(&mut self, s: RefSetId) {
        assert!((s.0 as usize) < self.sets.len(), "set out of range");
        self.set_alive[s.0 as usize] = false;
    }

    /// The live declared set with exactly these members, if any.
    pub fn find_live_set(&self, members: &[RefId]) -> Option<RefSetId> {
        let mut sorted: Vec<RefId> = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        (0..self.sets.len())
            .rev()
            .map(|j| RefSetId(j as u32))
            .find(|&s| self.set_is_alive(s) && self.ref_set(s).members == sorted)
    }

    /// Swap-removes edge `i` and patches the displaced edge's map slot.
    fn remove_edge_at(&mut self, i: usize) {
        let e = self.edges.swap_remove(i);
        self.edge_map.remove(&(e.a.0.min(e.b.0), e.a.0.max(e.b.0)));
        if i < self.edges.len() {
            let m = &self.edges[i];
            self.edge_map.insert((m.a.0.min(m.b.0), m.a.0.max(m.b.0)), i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    #[test]
    fn build_figure_one_reference_network() {
        let table = LabelTable::from_names(["a", "r", "i"]);
        let n = table.len();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let mut g = RefGraph::new(table);
        let r1 = g.add_ref(LabelDist::from_pairs(&[(r, 0.25), (i, 0.75)], n));
        let r2 = g.add_ref(LabelDist::delta(a, n));
        let r3 = g.add_ref(LabelDist::delta(r, n));
        let r4 = g.add_ref(LabelDist::delta(i, n));
        g.add_edge(r1, r2, EdgeProbability::Independent(0.9));
        g.add_edge(r2, r3, EdgeProbability::Independent(1.0));
        g.add_edge(r2, r4, EdgeProbability::Independent(0.5));
        g.add_pair_set_with_posterior(r3, r4, 0.8);

        assert_eq!(g.n_refs(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.ref_sets().len(), 1);
        let set = &g.ref_sets()[0];
        assert_eq!(set.members, vec![r3, r4]);
        assert!((set.weight - 0.8f64.sqrt()).abs() < 1e-12);
        assert!((g.singleton_weight(r3) - 0.2f64.sqrt()).abs() < 1e-12);
        assert!((g.singleton_weight(r1) - 1.0).abs() < 1e-12);
        assert!(g.edge_between(r2, r1).is_some());
        assert!(g.edge_between(r1, r3).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn singleton_ref_set_rejected() {
        let table = LabelTable::from_names(["a"]);
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(Label(0), 1));
        g.add_ref_set(vec![r0, r0], 0.5);
    }

    #[test]
    fn edge_replacement() {
        let table = LabelTable::from_names(["a"]);
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r1 = g.add_ref(LabelDist::delta(Label(0), 1));
        g.add_edge(r0, r1, EdgeProbability::Independent(0.3));
        g.add_edge(r1, r0, EdgeProbability::Independent(0.8));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edge_between(r0, r1).unwrap().prob.max_prob(), 0.8);
    }
}
