//! Live mutation ops over a [`RefGraph`].
//!
//! A [`GraphOp`] is the unit of change a live graph accepts: upsert or
//! delete a reference, an uncertain edge, or linkage evidence (a declared
//! reference set / pair posterior). [`RefGraph::apply`] validates and
//! applies one op, reporting which *entities* (creation-log positions)
//! it directly touched — the seed of the dirty set incremental index
//! maintenance works from.
//!
//! Every path here returns `Err` instead of panicking: ops arrive over
//! the wire from remote clients, and a malformed op must fail the
//! request, not the server. A failed op leaves the graph unchanged;
//! callers wanting batch atomicity apply to a clone and commit on
//! success (the serving layer does exactly that).

use crate::dist::{EdgeProbability, LabelDist};
use crate::refgraph::{EntityRef, RefGraph, RefId};

/// One live mutation. Edge probabilities are independent-form here;
/// label-conditional edge updates stay a build-time feature.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant docs cover the fields
pub enum GraphOp {
    /// Adds a reference (`r: None`) or replaces the label distribution of
    /// a live reference (`r: Some`). Labels are `(label id, prob)` pairs
    /// over the graph's alphabet.
    UpsertRef { r: Option<RefId>, labels: Vec<(u16, f64)> },
    /// Tombstones a reference: its incident edges are removed, and its
    /// singleton entity plus every declared set containing it die.
    DeleteRef { r: RefId },
    /// Adds or replaces the undirected uncertain edge `{a, b}`.
    UpsertEdge { a: RefId, b: RefId, p: f64 },
    /// Removes the edge `{a, b}`.
    DeleteEdge { a: RefId, b: RefId },
    /// Declares a reference set with raw factor value `weight`, or
    /// replaces the weight of the live set with exactly these members.
    UpsertSet { members: Vec<RefId>, weight: f64 },
    /// Tombstones the live set with exactly these members.
    DeleteSet { members: Vec<RefId> },
    /// Overrides the raw factor value of the singleton `{r}`.
    SetSingletonWeight { r: RefId, weight: f64 },
    /// Linkage evidence shorthand: pair set `{a, b}` with posterior `q`
    /// (see [`RefGraph::add_pair_set_with_posterior`]).
    PairPosterior { a: RefId, b: RefId, q: f64 },
}

fn finite_in(v: f64, lo: f64, hi: f64, what: &str) -> Result<(), String> {
    if !v.is_finite() || v < lo || v > hi {
        return Err(format!("{what} {v} out of range [{lo}, {hi}]"));
    }
    Ok(())
}

impl RefGraph {
    fn live_ref(&self, r: RefId, what: &str) -> Result<(), String> {
        if r.idx() >= self.n_refs() {
            return Err(format!("{what} {:?} out of range ({} refs)", r, self.n_refs()));
        }
        if !self.ref_is_alive(r) {
            return Err(format!("{what} {r:?} was deleted"));
        }
        Ok(())
    }

    /// Every entity (live or dead) whose member list contains `r`.
    fn entities_containing(&self, r: RefId, touched: &mut Vec<u32>) {
        touched.push(self.singleton_entity(r));
        for (i, ent) in self.entities().iter().enumerate() {
            if let EntityRef::Set(s) = ent {
                if self.ref_set(*s).members.contains(&r) {
                    touched.push(i as u32);
                }
            }
        }
    }

    /// Validates and applies one mutation, appending the entity ids it
    /// directly touched to `touched`. On `Err` the graph is unchanged.
    pub fn apply(&mut self, op: &GraphOp, touched: &mut Vec<u32>) -> Result<(), String> {
        match op {
            GraphOp::UpsertRef { r, labels } => {
                let n_labels = self.label_table().len();
                let mut pairs = Vec::with_capacity(labels.len());
                for &(l, p) in labels {
                    if (l as usize) >= n_labels {
                        return Err(format!("label id {l} out of range ({n_labels} labels)"));
                    }
                    finite_in(p, 0.0, 1.0, "label probability")?;
                    pairs.push((crate::labels::Label(l), p));
                }
                let dist = LabelDist::from_pairs(&pairs, n_labels);
                match r {
                    None => {
                        let id = self.add_ref(dist);
                        touched.push(self.singleton_entity(id));
                    }
                    Some(r) => {
                        self.live_ref(*r, "reference")?;
                        self.replace_ref_labels(*r, dist);
                        self.entities_containing(*r, touched);
                    }
                }
            }
            GraphOp::DeleteRef { r } => {
                self.live_ref(*r, "reference")?;
                // Entities merging an edge with a removed endpoint change
                // too: collect the edge partners before removal.
                let mut partners: Vec<RefId> = Vec::new();
                for e in self.edges() {
                    if e.a == *r {
                        partners.push(e.b);
                    } else if e.b == *r {
                        partners.push(e.a);
                    }
                }
                self.entities_containing(*r, touched);
                for p in partners {
                    self.entities_containing(p, touched);
                }
                self.delete_ref(*r);
            }
            GraphOp::UpsertEdge { a, b, p } => {
                self.live_ref(*a, "edge endpoint")?;
                self.live_ref(*b, "edge endpoint")?;
                if a == b {
                    return Err("self loops are not part of the model".into());
                }
                finite_in(*p, 0.0, 1.0, "edge probability")?;
                self.add_edge(*a, *b, EdgeProbability::Independent(*p));
                self.entities_containing(*a, touched);
                self.entities_containing(*b, touched);
            }
            GraphOp::DeleteEdge { a, b } => {
                self.live_ref(*a, "edge endpoint")?;
                self.live_ref(*b, "edge endpoint")?;
                if !self.delete_edge(*a, *b) {
                    return Err(format!("no edge between {a:?} and {b:?}"));
                }
                self.entities_containing(*a, touched);
                self.entities_containing(*b, touched);
            }
            GraphOp::UpsertSet { members, weight } => {
                finite_in(*weight, 0.0, f64::MAX, "set weight")?;
                let mut sorted = members.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() < 2 {
                    return Err("reference sets must have at least two distinct members".into());
                }
                for &m in &sorted {
                    self.live_ref(m, "set member")?;
                }
                match self.find_live_set(&sorted) {
                    Some(s) => {
                        self.replace_set_weight(s, *weight);
                        touched.push(self.set_entity(s));
                    }
                    None => {
                        let s = self.add_ref_set(sorted, *weight);
                        touched.push(self.set_entity(s));
                    }
                }
            }
            GraphOp::DeleteSet { members } => {
                let s = self
                    .find_live_set(members)
                    .ok_or_else(|| "no live set with these members".to_string())?;
                touched.push(self.set_entity(s));
                self.delete_set(s);
            }
            GraphOp::SetSingletonWeight { r, weight } => {
                self.live_ref(*r, "reference")?;
                finite_in(*weight, 0.0, f64::MAX, "singleton weight")?;
                self.set_singleton_weight(*r, *weight);
                touched.push(self.singleton_entity(*r));
            }
            GraphOp::PairPosterior { a, b, q } => {
                self.live_ref(*a, "reference")?;
                self.live_ref(*b, "reference")?;
                if a == b {
                    return Err("pair evidence needs two distinct references".into());
                }
                finite_in(*q, 0.0, 1.0, "pair posterior")?;
                self.set_singleton_weight(*a, (1.0 - q).sqrt());
                self.set_singleton_weight(*b, (1.0 - q).sqrt());
                touched.push(self.singleton_entity(*a));
                touched.push(self.singleton_entity(*b));
                let members = vec![*a, *b];
                match self.find_live_set(&members) {
                    Some(s) => {
                        self.replace_set_weight(s, q.sqrt());
                        touched.push(self.set_entity(s));
                    }
                    None => {
                        let s = self.add_ref_set(members, q.sqrt());
                        touched.push(self.set_entity(s));
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a batch in order, returning the sorted, deduplicated set of
    /// directly-touched entity ids. The batch is atomic at the caller's
    /// discretion: on `Err`, ops before the failing one *have* been
    /// applied — apply to a clone and commit on success for all-or-nothing
    /// semantics.
    pub fn apply_all(&mut self, ops: &[GraphOp]) -> Result<Vec<u32>, String> {
        let mut touched = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            self.apply(op, &mut touched).map_err(|e| format!("op {i}: {e}"))?;
        }
        touched.sort_unstable();
        touched.dedup();
        Ok(touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{Label, LabelTable};

    fn two_label_graph() -> RefGraph {
        let table = LabelTable::from_names(["x", "y"]);
        let mut g = RefGraph::new(table);
        for _ in 0..4 {
            g.add_ref(LabelDist::delta(Label(0), 2));
        }
        g.add_edge(RefId(0), RefId(1), EdgeProbability::Independent(0.5));
        g
    }

    #[test]
    fn upsert_and_delete_round_trip() {
        let mut g = two_label_graph();
        let mut touched = Vec::new();
        g.apply(&GraphOp::UpsertRef { r: None, labels: vec![(1, 1.0)] }, &mut touched).unwrap();
        assert_eq!(g.n_refs(), 5);
        assert_eq!(touched, vec![4]);
        g.apply(&GraphOp::UpsertEdge { a: RefId(4), b: RefId(0), p: 0.7 }, &mut touched).unwrap();
        assert_eq!(g.n_edges(), 2);
        g.apply(&GraphOp::DeleteRef { r: RefId(4) }, &mut touched).unwrap();
        assert!(!g.ref_is_alive(RefId(4)));
        assert_eq!(g.n_edges(), 1, "incident edge removed");
        assert!(g.entity_is_dead(4));
    }

    #[test]
    fn set_upsert_updates_weight_in_place() {
        let mut g = two_label_graph();
        let mut touched = Vec::new();
        g.apply(
            &GraphOp::UpsertSet { members: vec![RefId(0), RefId(1)], weight: 0.5 },
            &mut touched,
        )
        .unwrap();
        let n = g.n_entities();
        g.apply(
            &GraphOp::UpsertSet { members: vec![RefId(1), RefId(0)], weight: 0.9 },
            &mut touched,
        )
        .unwrap();
        assert_eq!(g.n_entities(), n, "same members update in place");
        assert_eq!(g.ref_sets()[0].weight, 0.9);
        g.apply(&GraphOp::DeleteSet { members: vec![RefId(0), RefId(1)] }, &mut touched).unwrap();
        assert!(g.entity_is_dead(n - 1));
        // Re-declaring after a delete creates a fresh entity.
        g.apply(
            &GraphOp::UpsertSet { members: vec![RefId(0), RefId(1)], weight: 0.4 },
            &mut touched,
        )
        .unwrap();
        assert_eq!(g.n_entities(), n + 1);
    }

    #[test]
    fn invalid_ops_leave_graph_unchanged() {
        let mut g = two_label_graph();
        let before_edges = g.n_edges();
        let mut touched = Vec::new();
        for bad in [
            GraphOp::UpsertRef { r: Some(RefId(99)), labels: vec![(0, 1.0)] },
            GraphOp::UpsertRef { r: None, labels: vec![(7, 1.0)] },
            GraphOp::UpsertEdge { a: RefId(0), b: RefId(0), p: 0.5 },
            GraphOp::UpsertEdge { a: RefId(0), b: RefId(1), p: 1.5 },
            GraphOp::DeleteEdge { a: RefId(2), b: RefId(3) },
            GraphOp::UpsertSet { members: vec![RefId(1)], weight: 0.5 },
            GraphOp::DeleteSet { members: vec![RefId(2), RefId(3)] },
            GraphOp::PairPosterior { a: RefId(1), b: RefId(1), q: 0.5 },
        ] {
            assert!(g.apply(&bad, &mut touched).is_err(), "{bad:?} should fail");
        }
        assert_eq!(g.n_refs(), 4);
        assert_eq!(g.n_edges(), before_edges);
        // Ops on a deleted reference fail.
        g.apply(&GraphOp::DeleteRef { r: RefId(3) }, &mut touched).unwrap();
        assert!(g.apply(&GraphOp::DeleteRef { r: RefId(3) }, &mut touched).is_err());
        assert!(g
            .apply(&GraphOp::UpsertEdge { a: RefId(3), b: RefId(0), p: 0.5 }, &mut touched)
            .is_err());
    }

    #[test]
    fn apply_all_reports_sorted_touched_entities() {
        let mut g = two_label_graph();
        let touched = g
            .apply_all(&[
                GraphOp::UpsertEdge { a: RefId(2), b: RefId(3), p: 0.8 },
                GraphOp::PairPosterior { a: RefId(0), b: RefId(2), q: 0.6 },
            ])
            .unwrap();
        // Edge touches {2, 3}; pair evidence touches {0, 2, new set 4}.
        assert_eq!(touched, vec![0, 2, 3, 4]);
    }
}
