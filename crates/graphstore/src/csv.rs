//! Flat-file (CSV) import and export of reference graphs.
//!
//! A [`RefGraph`] round-trips through four RFC-4180-style CSV files inside a
//! directory, so real datasets can be loaded without writing Rust:
//!
//! * `labels.csv` — header `label`; one row per alphabet entry, in id order.
//! * `nodes.csv` — header `ref,label,prob`; one row per reference/label pair
//!   with non-zero probability. Reference ids must be dense `0..n` and every
//!   reference needs a distribution that sums to 1.
//! * `edges.csv` — header `a,b,label_a,label_b,prob`. Independent edges
//!   leave `label_a`/`label_b` empty and use a single row; label-conditional
//!   edges (Section 5.3 of the paper) give one row per label pair and must
//!   cover the complete |Σ|² table.
//! * `refsets.csv` — header `set,ref,weight`; rows sharing a `set` id form
//!   one reference set with the given existence-factor weight (which must
//!   agree across the set's rows). Single-member sets override that
//!   reference's *singleton* weight instead. The file may be absent when
//!   there is no identity uncertainty.
//!
//! Fields containing commas, quotes, or newlines are quoted with doubled
//! quotes. Probabilities are written with Rust's shortest-round-trip float
//! formatting, so `save` → `load` reproduces the graph exactly.
//!
//! ```
//! use graphstore::csv::{load_ref_graph_csv, save_ref_graph_csv};
//! use graphstore::{EdgeProbability, LabelDist, LabelTable, RefGraph};
//! let mut table = LabelTable::new();
//! let a = table.intern("a");
//! let b = table.intern("b");
//! let mut g = RefGraph::new(table);
//! let r0 = g.add_ref(LabelDist::delta(a, 2));
//! let r1 = g.add_ref(LabelDist::from_pairs(&[(a, 0.5), (b, 0.5)], 2));
//! g.add_edge(r0, r1, EdgeProbability::Independent(0.9));
//! g.add_pair_set_with_posterior(r0, r1, 0.7);
//!
//! let dir = std::env::temp_dir().join(format!("csv-doc-{}", std::process::id()));
//! save_ref_graph_csv(&g, &dir).unwrap();
//! let loaded = load_ref_graph_csv(&dir).unwrap();
//! assert_eq!(loaded.n_refs(), 2);
//! assert_eq!(loaded.ref_sets().len(), 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::dist::{CondTable, EdgeProbability, LabelDist, DIST_EPS};
use crate::hash::FxHashMap;
use crate::labels::{Label, LabelTable};
use crate::refgraph::{RefGraph, RefId};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised while reading reference-graph CSV files.
#[derive(Debug)]
pub struct CsvError {
    /// File the error occurred in (its base name).
    pub file: String,
    /// 1-based line number, when known (0 for file-level problems).
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file, self.msg)
        } else {
            write!(f, "{}:{}: {}", self.file, self.line, self.msg)
        }
    }
}

impl std::error::Error for CsvError {}

fn err(file: &str, line: usize, msg: impl Into<String>) -> CsvError {
    CsvError { file: file.into(), line, msg: msg.into() }
}

/// Saves `graph` as `labels.csv`, `nodes.csv`, `edges.csv`, and (when the
/// graph has reference sets or non-default singleton weights) `refsets.csv`
/// in `dir`, creating the directory if needed.
pub fn save_ref_graph_csv(graph: &RefGraph, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let table = graph.label_table();

    let mut w = BufWriter::new(File::create(dir.join("labels.csv"))?);
    writeln!(w, "label")?;
    for l in table.iter() {
        writeln!(w, "{}", quote(table.name(l)))?;
    }
    w.flush()?;

    let mut w = BufWriter::new(File::create(dir.join("nodes.csv"))?);
    writeln!(w, "ref,label,prob")?;
    for r in graph.ref_ids() {
        let dist = &graph.reference(r).labels;
        for l in dist.support() {
            writeln!(w, "{},{},{}", r.0, quote(table.name(l)), dist.prob(l))?;
        }
    }
    w.flush()?;

    let mut w = BufWriter::new(File::create(dir.join("edges.csv"))?);
    writeln!(w, "a,b,label_a,label_b,prob")?;
    for e in graph.edges() {
        match &e.prob {
            EdgeProbability::Independent(p) => {
                writeln!(w, "{},{},,,{}", e.a.0, e.b.0, p)?;
            }
            EdgeProbability::Conditional(t) => {
                for la in table.iter() {
                    for lb in table.iter() {
                        writeln!(
                            w,
                            "{},{},{},{},{}",
                            e.a.0,
                            e.b.0,
                            quote(table.name(la)),
                            quote(table.name(lb)),
                            t.prob(la, lb)
                        )?;
                    }
                }
            }
        }
    }
    w.flush()?;

    let singleton_rows: Vec<(u32, f64)> = graph
        .ref_ids()
        .filter_map(|r| {
            let w = graph.singleton_weight(r);
            (w != 1.0).then_some((r.0, w))
        })
        .collect();
    if !graph.ref_sets().is_empty() || !singleton_rows.is_empty() {
        let mut w = BufWriter::new(File::create(dir.join("refsets.csv"))?);
        writeln!(w, "set,ref,weight")?;
        let mut set_id = 0u32;
        for s in graph.ref_sets() {
            for &m in &s.members {
                writeln!(w, "{},{},{}", set_id, m.0, s.weight)?;
            }
            set_id += 1;
        }
        for (r, weight) in singleton_rows {
            writeln!(w, "{set_id},{r},{weight}")?;
            set_id += 1;
        }
        w.flush()?;
    }
    Ok(())
}

/// Loads a reference graph previously written by [`save_ref_graph_csv`] (or
/// authored by hand in the same format) from `dir`.
///
/// # Errors
/// Reports the file, line, and cause for every malformed row: non-dense
/// reference ids, unknown labels, distributions that do not sum to 1,
/// incomplete conditional tables, inconsistent set weights, and so on.
pub fn load_ref_graph_csv(dir: &Path) -> Result<RefGraph, CsvError> {
    let labels = read_rows(dir, "labels.csv", &["label"])?;
    let mut table = LabelTable::new();
    for (line, row) in labels {
        let before = table.len();
        table.intern(&row[0]);
        if table.len() == before {
            return Err(err("labels.csv", line, format!("duplicate label `{}`", row[0])));
        }
    }
    let n_labels = table.len();
    if n_labels == 0 {
        return Err(err("labels.csv", 0, "empty alphabet"));
    }

    let nodes = read_rows(dir, "nodes.csv", &["ref", "label", "prob"])?;
    let mut dists: Vec<LabelDist> = Vec::new();
    for (line, row) in &nodes {
        let r = parse_u32("nodes.csv", *line, "ref", &row[0])? as usize;
        let label = table
            .get(&row[1])
            .ok_or_else(|| err("nodes.csv", *line, format!("unknown label `{}`", row[1])))?;
        let p = parse_prob("nodes.csv", *line, &row[2])?;
        if r >= dists.len() {
            dists.resize(r + 1, LabelDist::zeros(n_labels));
        }
        if dists[r].prob(label) != 0.0 {
            return Err(err(
                "nodes.csv",
                *line,
                format!("duplicate (ref {r}, label `{}`) row", row[1]),
            ));
        }
        dists[r] = add_prob(&dists[r], label, p, n_labels);
    }
    for (i, d) in dists.iter().enumerate() {
        if !d.validate() {
            return Err(err(
                "nodes.csv",
                0,
                format!(
                    "reference {i} has distribution summing to {} (want 1 ± {DIST_EPS})",
                    d.as_slice().iter().sum::<f64>()
                ),
            ));
        }
    }

    let mut graph = RefGraph::new(table);
    for d in dists {
        graph.add_ref(d);
    }
    let n_refs = graph.n_refs();
    let table = graph.label_table().clone();

    // Edges: group conditional rows per endpoint pair, in file order.
    let edges = read_rows(dir, "edges.csv", &["a", "b", "label_a", "label_b", "prob"])?;
    let mut pending: FxHashMap<(u32, u32), (usize, CondTable, Vec<bool>)> = FxHashMap::default();
    let mut order: Vec<(u32, u32)> = Vec::new();
    for (line, row) in &edges {
        let a = parse_u32("edges.csv", *line, "a", &row[0])?;
        let b = parse_u32("edges.csv", *line, "b", &row[1])?;
        for (name, v) in [("a", a), ("b", b)] {
            if v as usize >= n_refs {
                return Err(err(
                    "edges.csv",
                    *line,
                    format!("endpoint {name}={v} out of range (have {n_refs} refs)"),
                ));
            }
        }
        if a == b {
            return Err(err("edges.csv", *line, format!("self loop on reference {a}")));
        }
        let p = parse_prob("edges.csv", *line, &row[4])?;
        match (row[2].is_empty(), row[3].is_empty()) {
            (true, true) => {
                graph.add_edge(RefId(a), RefId(b), EdgeProbability::Independent(p));
            }
            (false, false) => {
                let la = table.get(&row[2]).ok_or_else(|| {
                    err("edges.csv", *line, format!("unknown label `{}`", row[2]))
                })?;
                let lb = table.get(&row[3]).ok_or_else(|| {
                    err("edges.csv", *line, format!("unknown label `{}`", row[3]))
                })?;
                let key = (a, b);
                let entry = pending.entry(key).or_insert_with(|| {
                    order.push(key);
                    (*line, CondTable::zeros(n_labels), vec![false; n_labels * n_labels])
                });
                let slot = la.idx() * n_labels + lb.idx();
                if entry.2[slot] {
                    return Err(err(
                        "edges.csv",
                        *line,
                        format!("duplicate CPT row ({a},{b},`{}`,`{}`)", row[2], row[3]),
                    ));
                }
                entry.2[slot] = true;
                entry.1.set(la, lb, p);
            }
            _ => {
                return Err(err(
                    "edges.csv",
                    *line,
                    "label_a and label_b must both be set or both be empty",
                ));
            }
        }
    }
    for key in order {
        let (line, cpt, seen) = pending.remove(&key).expect("pending entry for ordered key");
        if let Some(missing) = seen.iter().position(|&s| !s) {
            let la = table.name(Label((missing / n_labels) as u16));
            let lb = table.name(Label((missing % n_labels) as u16));
            return Err(err(
                "edges.csv",
                line,
                format!(
                    "conditional edge ({},{}) is missing the (`{la}`,`{lb}`) entry",
                    key.0, key.1
                ),
            ));
        }
        graph.add_edge(RefId(key.0), RefId(key.1), EdgeProbability::Conditional(cpt));
    }

    // Reference sets (optional file).
    if dir.join("refsets.csv").exists() {
        let rows = read_rows(dir, "refsets.csv", &["set", "ref", "weight"])?;
        let mut sets: FxHashMap<u32, (usize, Vec<RefId>, f64)> = FxHashMap::default();
        let mut set_order: Vec<u32> = Vec::new();
        for (line, row) in &rows {
            let s = parse_u32("refsets.csv", *line, "set", &row[0])?;
            let r = parse_u32("refsets.csv", *line, "ref", &row[1])?;
            if r as usize >= n_refs {
                return Err(err(
                    "refsets.csv",
                    *line,
                    format!("ref {r} out of range (have {n_refs} refs)"),
                ));
            }
            let weight = parse_f64("refsets.csv", *line, "weight", &row[2])?;
            if weight < 0.0 {
                return Err(err("refsets.csv", *line, format!("negative weight {weight}")));
            }
            let entry = sets.entry(s).or_insert_with(|| {
                set_order.push(s);
                (*line, Vec::new(), weight)
            });
            if entry.2 != weight {
                return Err(err(
                    "refsets.csv",
                    *line,
                    format!("set {s} has conflicting weights {} and {weight}", entry.2),
                ));
            }
            entry.1.push(RefId(r));
        }
        for s in set_order {
            let (line, members, weight) = sets.remove(&s).expect("set entry for ordered id");
            if members.len() == 1 {
                graph.set_singleton_weight(members[0], weight);
            } else {
                let mut sorted = members.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != members.len() {
                    return Err(err("refsets.csv", line, format!("set {s} repeats a member")));
                }
                graph.add_ref_set(members, weight);
            }
        }
    }
    Ok(graph)
}

fn add_prob(dist: &LabelDist, label: Label, p: f64, n_labels: usize) -> LabelDist {
    let mut pairs: Vec<(Label, f64)> = dist.support().map(|l| (l, dist.prob(l))).collect();
    pairs.push((label, p));
    LabelDist::from_pairs(&pairs, n_labels)
}

fn parse_u32(file: &str, line: usize, what: &str, s: &str) -> Result<u32, CsvError> {
    s.parse().map_err(|_| err(file, line, format!("bad {what} `{s}` (want an integer)")))
}

fn parse_f64(file: &str, line: usize, what: &str, s: &str) -> Result<f64, CsvError> {
    s.parse().map_err(|_| err(file, line, format!("bad {what} `{s}` (want a number)")))
}

fn parse_prob(file: &str, line: usize, s: &str) -> Result<f64, CsvError> {
    let p = parse_f64(file, line, "prob", s)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(err(file, line, format!("probability {p} outside [0, 1]")));
    }
    Ok(p)
}

/// Reads a CSV file, checks its header, and returns `(line_number, fields)`
/// per data row. Handles quoted fields (doubled-quote escapes) spanning
/// multiple lines.
fn read_rows(
    dir: &Path,
    name: &str,
    header: &[&str],
) -> Result<Vec<(usize, Vec<String>)>, CsvError> {
    let path = dir.join(name);
    let file = File::open(&path).map_err(|e| err(name, 0, format!("cannot open: {e}")))?;
    let mut reader = BufReader::new(file);
    let mut raw = String::new();
    let mut rows = Vec::new();
    let mut line_no = 0usize;
    loop {
        raw.clear();
        let start_line = line_no + 1;
        let n = reader
            .read_line(&mut raw)
            .map_err(|e| err(name, start_line, format!("read error: {e}")))?;
        if n == 0 {
            break;
        }
        line_no += 1;
        // A quoted field may span physical lines: keep reading while the
        // quote count is odd.
        while raw.matches('"').count() % 2 == 1 {
            let n = reader
                .read_line(&mut raw)
                .map_err(|e| err(name, line_no, format!("read error: {e}")))?;
            if n == 0 {
                return Err(err(name, start_line, "unterminated quoted field"));
            }
            line_no += 1;
        }
        let trimmed = raw.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let fields = split_csv(trimmed, name, start_line)?;
        if rows.is_empty() && start_line == 1 {
            let got: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
            if got != header {
                return Err(err(name, 1, format!("bad header {got:?}, expected {header:?}")));
            }
            continue; // consumed as header
        }
        if fields.len() != header.len() {
            return Err(err(
                name,
                start_line,
                format!("expected {} fields, found {}", header.len(), fields.len()),
            ));
        }
        rows.push((start_line, fields));
    }
    Ok(rows)
}

fn split_csv(line: &str, file: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            Some('"') => {
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => field.push(c),
                        None => {
                            return Err(err(file, line_no, "unterminated quoted field"));
                        }
                    }
                }
            }
            _ => {
                while let Some(&c) = chars.peek() {
                    if c == ',' {
                        break;
                    }
                    field.push(c);
                    chars.next();
                }
            }
        }
        match chars.next() {
            Some(',') => fields.push(std::mem::take(&mut field)),
            None => {
                fields.push(field);
                return Ok(fields);
            }
            Some(c) => {
                return Err(err(file, line_no, format!("unexpected `{c}` after closing quote")));
            }
        }
    }
}

fn quote(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphstore-csv-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn figure1_graph() -> RefGraph {
        let mut table = LabelTable::new();
        let a = table.intern("a");
        let r = table.intern("r");
        let i = table.intern("i");
        let n = table.len();
        let mut g = RefGraph::new(table);
        let r1 = g.add_ref(LabelDist::from_pairs(&[(r, 0.25), (i, 0.75)], n));
        let r2 = g.add_ref(LabelDist::delta(a, n));
        let r3 = g.add_ref(LabelDist::delta(r, n));
        let r4 = g.add_ref(LabelDist::delta(i, n));
        g.add_edge(r1, r2, EdgeProbability::Independent(0.9));
        g.add_edge(r2, r3, EdgeProbability::Independent(1.0));
        g.add_edge(r2, r4, EdgeProbability::Independent(0.5));
        g.add_pair_set_with_posterior(r3, r4, 0.8);
        g
    }

    fn assert_graphs_equal(a: &RefGraph, b: &RefGraph) {
        assert_eq!(a.label_table().names(), b.label_table().names());
        assert_eq!(a.n_refs(), b.n_refs());
        for r in a.ref_ids() {
            assert_eq!(a.reference(r).labels, b.reference(r).labels, "{r:?}");
            assert_eq!(a.singleton_weight(r), b.singleton_weight(r), "{r:?}");
        }
        assert_eq!(a.n_edges(), b.n_edges());
        for ea in a.edges() {
            let eb = b.edge_between(ea.a, ea.b).expect("edge present");
            assert_eq!(ea.prob, eb.prob, "({:?},{:?})", ea.a, ea.b);
        }
        assert_eq!(a.ref_sets().len(), b.ref_sets().len());
        for (sa, sb) in a.ref_sets().iter().zip(b.ref_sets()) {
            assert_eq!(sa.members, sb.members);
            assert_eq!(sa.weight, sb.weight);
        }
    }

    #[test]
    fn figure1_round_trips() {
        let g = figure1_graph();
        let dir = tmp("fig1");
        save_ref_graph_csv(&g, &dir).unwrap();
        let loaded = load_ref_graph_csv(&dir).unwrap();
        assert_graphs_equal(&g, &loaded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn conditional_edges_round_trip() {
        let mut table = LabelTable::new();
        let x = table.intern("x");
        let y = table.intern("y");
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::from_pairs(&[(x, 0.6), (y, 0.4)], 2));
        let r1 = g.add_ref(LabelDist::delta(y, 2));
        let cpt = CondTable::from_fn(2, |a, b| if a == b { 0.9 } else { 0.2 });
        g.add_edge(r0, r1, EdgeProbability::Conditional(cpt));
        g.set_singleton_weight(r0, 0.5);

        let dir = tmp("cond");
        save_ref_graph_csv(&g, &dir).unwrap();
        let loaded = load_ref_graph_csv(&dir).unwrap();
        assert_graphs_equal(&g, &loaded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quoted_label_names_round_trip() {
        let mut table = LabelTable::new();
        let weird = table.intern(r#"Research, "Lab""#);
        let plain = table.intern("plain");
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(weird, 2));
        let r1 = g.add_ref(LabelDist::delta(plain, 2));
        g.add_edge(r0, r1, EdgeProbability::Independent(0.3));

        let dir = tmp("quoted");
        save_ref_graph_csv(&g, &dir).unwrap();
        let loaded = load_ref_graph_csv(&dir).unwrap();
        assert_graphs_equal(&g, &loaded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn write(dir: &Path, name: &str, content: &str) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(name), content).unwrap();
    }

    fn minimal(dir: &Path) {
        write(dir, "labels.csv", "label\na\nb\n");
        write(dir, "nodes.csv", "ref,label,prob\n0,a,1\n1,b,1\n");
        write(dir, "edges.csv", "a,b,label_a,label_b,prob\n0,1,,,0.5\n");
    }

    #[test]
    fn hand_written_files_load() {
        let dir = tmp("hand");
        minimal(&dir);
        write(&dir, "refsets.csv", "set,ref,weight\n7,0,0.25\n7,1,0.25\n");
        let g = load_ref_graph_csv(&dir).unwrap();
        assert_eq!(g.n_refs(), 2);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.ref_sets().len(), 1);
        assert_eq!(g.ref_sets()[0].members, vec![RefId(0), RefId(1)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_refsets_file_is_fine() {
        let dir = tmp("nosets");
        minimal(&dir);
        let g = load_ref_graph_csv(&dir).unwrap();
        assert!(g.ref_sets().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_unnormalized_distribution() {
        let dir = tmp("unnorm");
        minimal(&dir);
        write(&dir, "nodes.csv", "ref,label,prob\n0,a,0.7\n1,b,1\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("summing to 0.7"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_bad_header_and_bad_numbers() {
        let dir = tmp("badhdr");
        minimal(&dir);
        write(&dir, "nodes.csv", "id,label,prob\n0,a,1\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("bad header"), "{e}");

        write(&dir, "nodes.csv", "ref,label,prob\nzero,a,1\n1,b,1\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("nodes.csv:2"), "{e}");

        write(&dir, "nodes.csv", "ref,label,prob\n0,a,1.5\n1,b,1\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("outside [0, 1]"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_unknown_label_and_duplicate_label() {
        let dir = tmp("unklabel");
        minimal(&dir);
        write(&dir, "nodes.csv", "ref,label,prob\n0,zzz,1\n1,b,1\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("unknown label `zzz`"), "{e}");

        write(&dir, "labels.csv", "label\na\na\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("duplicate label"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_incomplete_cpt() {
        let dir = tmp("cptmiss");
        minimal(&dir);
        write(
            &dir,
            "edges.csv",
            "a,b,label_a,label_b,prob\n0,1,a,a,0.9\n0,1,a,b,0.1\n0,1,b,a,0.2\n",
        );
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("missing the (`b`,`b`)"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_mixed_cpt_row() {
        let dir = tmp("cptmixed");
        minimal(&dir);
        write(&dir, "edges.csv", "a,b,label_a,label_b,prob\n0,1,a,,0.9\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("both be set or both be empty"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_conflicting_set_weight_and_repeat_member() {
        let dir = tmp("setbad");
        minimal(&dir);
        write(&dir, "refsets.csv", "set,ref,weight\n0,0,0.25\n0,1,0.5\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("conflicting weights"), "{e}");

        write(&dir, "refsets.csv", "set,ref,weight\n0,1,0.25\n0,1,0.25\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("repeats a member"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_out_of_range_endpoint_and_self_loop() {
        let dir = tmp("edgebad");
        minimal(&dir);
        write(&dir, "edges.csv", "a,b,label_a,label_b,prob\n0,9,,,0.5\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");

        write(&dir, "edges.csv", "a,b,label_a,label_b,prob\n1,1,,,0.5\n");
        let e = load_ref_graph_csv(&dir).unwrap_err();
        assert!(e.to_string().contains("self loop"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiline_quoted_field() {
        let dir = tmp("multiline");
        write(&dir, "labels.csv", "label\n\"two\nlines\"\nb\n");
        write(&dir, "nodes.csv", "ref,label,prob\n0,\"two\nlines\",1\n1,b,1\n");
        write(&dir, "edges.csv", "a,b,label_a,label_b,prob\n0,1,,,1\n");
        let g = load_ref_graph_csv(&dir).unwrap();
        assert_eq!(g.label_table().names()[0], "two\nlines");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn singleton_set_sets_singleton_weight() {
        let dir = tmp("single");
        minimal(&dir);
        write(&dir, "refsets.csv", "set,ref,weight\n0,1,0.4\n");
        let g = load_ref_graph_csv(&dir).unwrap();
        assert!(g.ref_sets().is_empty());
        assert_eq!(g.singleton_weight(RefId(1)), 0.4);
        assert_eq!(g.singleton_weight(RefId(0)), 1.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
