//! Probability distributions attached to nodes and edges.

use crate::labels::Label;

/// Tolerance for distribution validation.
pub const DIST_EPS: f64 = 1e-9;

/// A distribution over node labels, stored densely over the alphabet.
///
/// A `LabelDist` need not sum to one in intermediate states, but
/// [`LabelDist::validate`] checks it; entries must be non-negative.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelDist {
    probs: Vec<f64>,
}

impl LabelDist {
    /// The all-zero distribution over an alphabet of `n_labels`.
    pub fn zeros(n_labels: usize) -> Self {
        Self { probs: vec![0.0; n_labels] }
    }

    /// A point distribution: probability 1 on `label`.
    pub fn delta(label: Label, n_labels: usize) -> Self {
        let mut d = Self::zeros(n_labels);
        d.probs[label.idx()] = 1.0;
        d
    }

    /// Builds from `(label, prob)` pairs; unlisted labels get zero.
    ///
    /// # Panics
    /// Panics on out-of-range labels or negative probabilities.
    pub fn from_pairs(pairs: &[(Label, f64)], n_labels: usize) -> Self {
        let mut d = Self::zeros(n_labels);
        for &(l, p) in pairs {
            assert!(l.idx() < n_labels, "label out of range");
            assert!(p >= 0.0, "negative probability");
            d.probs[l.idx()] += p;
        }
        d
    }

    /// Probability of `label` (zero when out of range).
    #[inline]
    pub fn prob(&self, label: Label) -> f64 {
        self.probs.get(label.idx()).copied().unwrap_or(0.0)
    }

    /// Alphabet size this distribution is defined over.
    pub fn n_labels(&self) -> usize {
        self.probs.len()
    }

    /// Labels with non-zero probability (the set `L(s)` of the paper).
    pub fn support(&self) -> impl Iterator<Item = Label> + '_ {
        self.probs.iter().enumerate().filter(|(_, &p)| p > 0.0).map(|(i, _)| Label(i as u16))
    }

    /// Number of labels with non-zero probability.
    pub fn support_size(&self) -> usize {
        self.probs.iter().filter(|&&p| p > 0.0).count()
    }

    /// Checks the distribution sums to 1 (within [`DIST_EPS`]).
    pub fn validate(&self) -> bool {
        let sum: f64 = self.probs.iter().sum();
        (sum - 1.0).abs() <= DIST_EPS && self.probs.iter().all(|&p| p >= 0.0)
    }

    /// Scales entries so they sum to 1.
    ///
    /// # Panics
    /// Panics on an all-zero distribution.
    pub fn normalize(&mut self) {
        let sum: f64 = self.probs.iter().sum();
        assert!(sum > 0.0, "cannot normalize zero distribution");
        for p in &mut self.probs {
            *p /= sum;
        }
    }

    /// Pointwise average of several distributions — the paper's `mΣ` merge
    /// function used throughout its evaluation.
    ///
    /// # Panics
    /// Panics when `dists` is empty or alphabet sizes differ.
    pub fn average(dists: &[&LabelDist]) -> LabelDist {
        assert!(!dists.is_empty(), "average of no distributions");
        let n = dists[0].n_labels();
        let mut out = LabelDist::zeros(n);
        for d in dists {
            assert_eq!(d.n_labels(), n, "alphabet size mismatch");
            for (o, p) in out.probs.iter_mut().zip(&d.probs) {
                *o += p;
            }
        }
        let k = dists.len() as f64;
        for o in &mut out.probs {
            *o /= k;
        }
        out
    }

    /// Raw dense probabilities.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }
}

/// A conditional probability table for an edge whose existence depends on the
/// labels of its two endpoints: `Pr(e | l_a, l_b)` (Section 5.3).
///
/// The table is oriented: rows are the label of the edge's first stored
/// endpoint, columns the second.
#[derive(Clone, Debug, PartialEq)]
pub struct CondTable {
    n_labels: usize,
    /// Row-major `[l_a][l_b]`.
    table: Vec<f64>,
}

impl CondTable {
    /// An all-zero table over `n_labels` × `n_labels`.
    pub fn zeros(n_labels: usize) -> Self {
        Self { n_labels, table: vec![0.0; n_labels * n_labels] }
    }

    /// Builds from a closure evaluated for every label pair.
    pub fn from_fn(n_labels: usize, mut f: impl FnMut(Label, Label) -> f64) -> Self {
        let mut t = Self::zeros(n_labels);
        for a in 0..n_labels {
            for b in 0..n_labels {
                let p = f(Label(a as u16), Label(b as u16));
                assert!((0.0..=1.0).contains(&p), "probability out of range");
                t.table[a * n_labels + b] = p;
            }
        }
        t
    }

    /// `Pr(e | l_a = a, l_b = b)`.
    #[inline]
    pub fn prob(&self, a: Label, b: Label) -> f64 {
        self.table[a.idx() * self.n_labels + b.idx()]
    }

    /// Sets one entry.
    pub fn set(&mut self, a: Label, b: Label, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.table[a.idx() * self.n_labels + b.idx()] = p;
    }

    /// Alphabet size.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// Maximum entry (upper bound with both endpoint labels unknown).
    pub fn max_prob(&self) -> f64 {
        self.table.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum over the unknown endpoint given the other endpoint's label.
    /// `first_known` selects whether `known` is the row (first endpoint).
    pub fn max_given(&self, known: Label, first_known: bool) -> f64 {
        let n = self.n_labels;
        let mut m = 0.0f64;
        for other in 0..n {
            let p = if first_known {
                self.table[known.idx() * n + other]
            } else {
                self.table[other * n + known.idx()]
            };
            m = m.max(p);
        }
        m
    }

    /// Pointwise average of several tables (the `m{T,F}` merge for CPTs).
    pub fn average(tables: &[&CondTable]) -> CondTable {
        assert!(!tables.is_empty());
        let n = tables[0].n_labels;
        let mut out = CondTable::zeros(n);
        for t in tables {
            assert_eq!(t.n_labels, n, "alphabet size mismatch");
            for (o, p) in out.table.iter_mut().zip(&t.table) {
                *o += p;
            }
        }
        let k = tables.len() as f64;
        for o in &mut out.table {
            *o /= k;
        }
        out
    }

    /// Raw table (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.table
    }
}

/// Edge existence probability: either a plain probability (the default
/// model) or conditional on the endpoint labels (Section 5.3).
#[derive(Clone, Debug, PartialEq)]
pub enum EdgeProbability {
    /// `Pr(e = T)`, independent of labels.
    Independent(f64),
    /// `Pr(e = T | l_a, l_b)` as a [`CondTable`] oriented by the edge's
    /// stored endpoints.
    Conditional(CondTable),
}

impl EdgeProbability {
    /// Existence probability given endpoint labels, oriented so that `la`
    /// belongs to the edge's first stored endpoint.
    #[inline]
    pub fn prob(&self, la: Label, lb: Label) -> f64 {
        match self {
            EdgeProbability::Independent(p) => *p,
            EdgeProbability::Conditional(t) => t.prob(la, lb),
        }
    }

    /// True when the probability is label-conditional (Section 5.3).
    pub fn is_conditional(&self) -> bool {
        matches!(self, EdgeProbability::Conditional(_))
    }

    /// Upper bound over all label combinations.
    pub fn max_prob(&self) -> f64 {
        match self {
            EdgeProbability::Independent(p) => *p,
            EdgeProbability::Conditional(t) => t.max_prob(),
        }
    }

    /// Upper bound given one endpoint's label (`first_known` = label belongs
    /// to the first stored endpoint).
    pub fn max_given(&self, known: Label, first_known: bool) -> f64 {
        match self {
            EdgeProbability::Independent(p) => *p,
            EdgeProbability::Conditional(t) => t.max_given(known, first_known),
        }
    }

    /// True when the edge can exist under some labeling.
    pub fn is_possible(&self) -> bool {
        self.max_prob() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_support() {
        let d = LabelDist::delta(Label(1), 3);
        assert!(d.validate());
        assert_eq!(d.prob(Label(1)), 1.0);
        assert_eq!(d.support().collect::<Vec<_>>(), vec![Label(1)]);
        assert_eq!(d.support_size(), 1);
    }

    #[test]
    fn from_pairs_accumulates() {
        let d = LabelDist::from_pairs(&[(Label(0), 0.25), (Label(2), 0.75)], 3);
        assert!(d.validate());
        assert_eq!(d.prob(Label(2)), 0.75);
        assert_eq!(d.prob(Label(1)), 0.0);
    }

    #[test]
    fn average_matches_paper_example() {
        // Figure 1: merging r(1.0) with i(1.0) yields r(0.5), i(0.5).
        let r = LabelDist::delta(Label(0), 3);
        let i = LabelDist::delta(Label(2), 3);
        let m = LabelDist::average(&[&r, &i]);
        assert_eq!(m.prob(Label(0)), 0.5);
        assert_eq!(m.prob(Label(2)), 0.5);
        assert!(m.validate());
    }

    #[test]
    fn normalize_scales() {
        let mut d = LabelDist::from_pairs(&[(Label(0), 2.0), (Label(1), 6.0)], 2);
        d.normalize();
        assert!((d.prob(Label(0)) - 0.25).abs() < 1e-12);
        assert!(d.validate());
    }

    #[test]
    fn cond_table_lookup_and_bounds() {
        let t = CondTable::from_fn(2, |a, b| if a == b { 0.9 } else { 0.2 });
        assert_eq!(t.prob(Label(0), Label(0)), 0.9);
        assert_eq!(t.prob(Label(0), Label(1)), 0.2);
        assert_eq!(t.max_prob(), 0.9);
        assert_eq!(t.max_given(Label(1), true), 0.9);
        let mut t2 = t.clone();
        t2.set(Label(0), Label(1), 1.0);
        assert_eq!(t2.max_given(Label(0), true), 1.0);
        assert_eq!(t2.max_given(Label(1), false), 1.0);
    }

    #[test]
    fn cond_table_average() {
        let a = CondTable::from_fn(2, |_, _| 1.0);
        let b = CondTable::from_fn(2, |_, _| 0.5);
        let m = CondTable::average(&[&a, &b]);
        assert_eq!(m.prob(Label(0), Label(1)), 0.75);
    }

    #[test]
    fn edge_probability_dispatch() {
        let e = EdgeProbability::Independent(0.4);
        assert_eq!(e.prob(Label(0), Label(1)), 0.4);
        assert_eq!(e.max_prob(), 0.4);
        assert!(e.is_possible());
        let c = EdgeProbability::Conditional(CondTable::from_fn(
            2,
            |a, b| {
                if a == b {
                    0.8
                } else {
                    0.0
                }
            },
        ));
        assert_eq!(c.prob(Label(1), Label(1)), 0.8);
        assert_eq!(c.max_given(Label(0), false), 0.8);
        assert!(c.is_possible());
        assert!(!EdgeProbability::Independent(0.0).is_possible());
    }
}
