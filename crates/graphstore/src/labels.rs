//! Label interning: string labels to dense `u16` ids.

use crate::hash::FxHashMap;
use std::fmt;

/// A node label (an element of the alphabet Σ), as a dense id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u16);

impl Label {
    /// The label id as an index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// Bidirectional mapping between label strings and [`Label`] ids.
///
/// The alphabet is expected to be small (the paper uses 3–20 labels), so ids
/// are `u16` and distributions are dense vectors indexed by `Label::idx`.
#[derive(Clone, Debug, Default)]
pub struct LabelTable {
    names: Vec<String>,
    by_name: FxHashMap<String, Label>,
}

impl LabelTable {
    /// An empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an alphabet from names (deduplicating).
    pub fn from_names<I: IntoIterator<Item = S>, S: AsRef<str>>(names: I) -> Self {
        let mut t = Self::new();
        for n in names {
            t.intern(n.as_ref());
        }
        t
    }

    /// Returns the id for `name`, interning it if new.
    ///
    /// # Panics
    /// Panics if the alphabet exceeds `u16::MAX` labels.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let id = self.names.len();
        assert!(id <= u16::MAX as usize, "label alphabet overflow");
        let label = Label(id as u16);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), label);
        label
    }

    /// Looks up `name` without interning.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// The display name of `label`.
    ///
    /// # Panics
    /// Panics on an id not belonging to this table.
    pub fn name(&self, label: Label) -> &str {
        &self.names[label.idx()]
    }

    /// Number of labels in the alphabet.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates all labels in id order.
    pub fn iter(&self) -> impl Iterator<Item = Label> {
        (0..self.names.len() as u16).map(Label)
    }

    /// All names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("academia");
        let r = t.intern("research");
        assert_eq!(t.intern("academia"), a);
        assert_ne!(a, r);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "academia");
        assert_eq!(t.get("research"), Some(r));
        assert_eq!(t.get("industry"), None);
    }

    #[test]
    fn from_names_dedupes() {
        let t = LabelTable::from_names(["a", "b", "a", "c"]);
        assert_eq!(t.len(), 3);
        let ids: Vec<Label> = t.iter().collect();
        assert_eq!(ids, vec![Label(0), Label(1), Label(2)]);
    }
}
