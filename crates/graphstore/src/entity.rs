//! The probabilistic entity graph `G_U`: the structure query processing
//! operates on (Section 4, "Finding Matches").

use crate::dist::{EdgeProbability, LabelDist};
use crate::hash::FxHashMap;
use crate::labels::{Label, LabelTable};
use crate::refgraph::RefId;

/// Identifier of an entity node (one per reference set `s ∈ S`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The id as an index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A potential entity: merged label distribution plus the underlying
/// references (`refs(v)` of the paper), kept sorted for fast disjointness
/// tests.
#[derive(Clone, Debug)]
pub struct EntityNode {
    /// Merged label distribution `Pr(s.l)`.
    pub labels: LabelDist,
    /// Sorted underlying reference ids.
    pub refs: Vec<RefId>,
}

/// One undirected edge with its merged existence probability.
#[derive(Clone, Debug)]
pub struct EntityEdge {
    /// First endpoint (CPT rows refer to this endpoint's label).
    pub a: EntityId,
    /// Second endpoint.
    pub b: EntityId,
    /// Merged existence probability `Pr((s1,s2).e)`.
    pub prob: EdgeProbability,
}

/// The entity-level graph: CSR adjacency over entity nodes with probability
/// payloads on nodes and edges.
///
/// Nodes whose reference sets intersect can never co-exist in a possible
/// world; [`EntityGraph::refs_disjoint`] is the test used throughout the
/// matching pipeline.
#[derive(Clone, Debug)]
pub struct EntityGraph {
    labels: LabelTable,
    nodes: Vec<EntityNode>,
    edges: Vec<EntityEdge>,
    /// CSR row offsets, length `n_nodes + 1`.
    offsets: Vec<u32>,
    /// Neighbor node ids, grouped per node.
    neighbors: Vec<u32>,
    /// Edge index parallel to `neighbors`.
    edge_idx: Vec<u32>,
    /// Canonical `(min, max)` endpoint pair to edge index.
    edge_map: FxHashMap<(u32, u32), u32>,
}

impl EntityGraph {
    /// Number of entity nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The label alphabet.
    pub fn label_table(&self) -> &LabelTable {
        &self.labels
    }

    /// Node payload.
    #[inline]
    pub fn node(&self, v: EntityId) -> &EntityNode {
        &self.nodes[v.idx()]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.nodes.len() as u32).map(EntityId)
    }

    /// All edges.
    pub fn edges(&self) -> &[EntityEdge] {
        &self.edges
    }

    /// `Pr(v.l = label)`.
    #[inline]
    pub fn label_prob(&self, v: EntityId, label: Label) -> f64 {
        self.nodes[v.idx()].labels.prob(label)
    }

    /// Neighbor ids of `v` (Γ(v)).
    #[inline]
    pub fn neighbors(&self, v: EntityId) -> &[u32] {
        let lo = self.offsets[v.idx()] as usize;
        let hi = self.offsets[v.idx() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Neighbors of `v` paired with their connecting edge.
    pub fn neighbor_edges(&self, v: EntityId) -> impl Iterator<Item = (EntityId, &EntityEdge)> {
        let lo = self.offsets[v.idx()] as usize;
        let hi = self.offsets[v.idx() + 1] as usize;
        self.neighbors[lo..hi]
            .iter()
            .zip(&self.edge_idx[lo..hi])
            .map(move |(&n, &e)| (EntityId(n), &self.edges[e as usize]))
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: EntityId) -> usize {
        (self.offsets[v.idx() + 1] - self.offsets[v.idx()]) as usize
    }

    /// The edge between `u` and `v`, if present.
    pub fn edge_between(&self, u: EntityId, v: EntityId) -> Option<&EntityEdge> {
        let key = (u.0.min(v.0), u.0.max(v.0));
        self.edge_map.get(&key).map(|&i| &self.edges[i as usize])
    }

    /// Existence probability of edge `(u, v)` when `u` has label `lu` and
    /// `v` has label `lv`; zero when no edge is stored.
    pub fn edge_prob(&self, u: EntityId, v: EntityId, lu: Label, lv: Label) -> f64 {
        match self.edge_between(u, v) {
            None => 0.0,
            Some(e) => {
                if e.a == u {
                    e.prob.prob(lu, lv)
                } else {
                    e.prob.prob(lv, lu)
                }
            }
        }
    }

    /// Upper-bound existence probability of edge `(u, v)` over all labels.
    pub fn edge_prob_max(&self, u: EntityId, v: EntityId) -> f64 {
        self.edge_between(u, v).map_or(0.0, |e| e.prob.max_prob())
    }

    /// Upper-bound edge probability when only `u`'s label is known.
    pub fn edge_prob_max_given(&self, u: EntityId, v: EntityId, lu: Label) -> f64 {
        match self.edge_between(u, v) {
            None => 0.0,
            Some(e) => e.prob.max_given(lu, e.a == u),
        }
    }

    /// True when `u` and `v` share no underlying reference (so they may
    /// co-occur in a possible world).
    pub fn refs_disjoint(&self, u: EntityId, v: EntityId) -> bool {
        let (ra, rb) = (&self.nodes[u.idx()].refs, &self.nodes[v.idx()].refs);
        // Sorted-merge intersection test.
        let (mut i, mut j) = (0usize, 0usize);
        while i < ra.len() && j < rb.len() {
            match ra[i].cmp(&rb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// True when node `v` shares a reference with *any* node in `others`.
    pub fn shares_ref_with_any(&self, v: EntityId, others: &[EntityId]) -> bool {
        others.iter().any(|&o| o != v && !self.refs_disjoint(v, o))
    }
}

/// Builder accumulating nodes/edges before CSR construction.
#[derive(Debug, Default)]
pub struct EntityGraphBuilder {
    labels: LabelTable,
    nodes: Vec<EntityNode>,
    edges: Vec<EntityEdge>,
    edge_map: FxHashMap<(u32, u32), u32>,
}

impl EntityGraphBuilder {
    /// Starts a builder over the given label alphabet.
    pub fn new(labels: LabelTable) -> Self {
        Self { labels, ..Default::default() }
    }

    /// The label alphabet being built against.
    pub fn label_table(&self) -> &LabelTable {
        &self.labels
    }

    /// Adds a node; `refs` is sorted and deduplicated internally.
    pub fn add_node(&mut self, labels: LabelDist, mut refs: Vec<RefId>) -> EntityId {
        assert_eq!(labels.n_labels(), self.labels.len(), "label alphabet mismatch");
        refs.sort_unstable();
        refs.dedup();
        let id = EntityId(self.nodes.len() as u32);
        self.nodes.push(EntityNode { labels, refs });
        id
    }

    /// Adds an undirected edge. Replaces the probability if the edge exists.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: EntityId, v: EntityId, prob: EdgeProbability) {
        assert_ne!(u, v, "self loops are not part of the model");
        assert!(u.idx() < self.nodes.len() && v.idx() < self.nodes.len(), "endpoint out of range");
        let key = (u.0.min(v.0), u.0.max(v.0));
        if let Some(&i) = self.edge_map.get(&key) {
            self.edges[i as usize] = EntityEdge { a: u, b: v, prob };
        } else {
            let i = self.edges.len() as u32;
            self.edges.push(EntityEdge { a: u, b: v, prob });
            self.edge_map.insert(key, i);
        }
    }

    /// Number of nodes added so far.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Finalizes into CSR form.
    pub fn build(self) -> EntityGraph {
        let n = self.nodes.len();
        let mut degree = vec![0u32; n];
        for e in &self.edges {
            degree[e.a.idx()] += 1;
            degree[e.b.idx()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[n] as usize;
        let mut neighbors = vec![0u32; total];
        let mut edge_idx = vec![0u32; total];
        let mut cursor = offsets.clone();
        for (i, e) in self.edges.iter().enumerate() {
            let (a, b) = (e.a.idx(), e.b.idx());
            let ca = cursor[a] as usize;
            neighbors[ca] = e.b.0;
            edge_idx[ca] = i as u32;
            cursor[a] += 1;
            let cb = cursor[b] as usize;
            neighbors[cb] = e.a.0;
            edge_idx[cb] = i as u32;
            cursor[b] += 1;
        }
        // Sort each adjacency row by neighbor id for deterministic iteration.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let mut row: Vec<(u32, u32)> =
                neighbors[lo..hi].iter().copied().zip(edge_idx[lo..hi].iter().copied()).collect();
            row.sort_unstable();
            for (k, (nb, ei)) in row.into_iter().enumerate() {
                neighbors[lo + k] = nb;
                edge_idx[lo + k] = ei;
            }
        }
        EntityGraph {
            labels: self.labels,
            nodes: self.nodes,
            edges: self.edges,
            offsets,
            neighbors,
            edge_idx,
            edge_map: self.edge_map,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EntityGraph {
        let table = LabelTable::from_names(["a", "r", "i"]);
        let n = table.len();
        let mut b = EntityGraphBuilder::new(table);
        let v0 = b.add_node(LabelDist::delta(Label(0), n), vec![RefId(0)]);
        let v1 = b.add_node(LabelDist::delta(Label(1), n), vec![RefId(1)]);
        let v2 = b.add_node(
            LabelDist::from_pairs(&[(Label(1), 0.5), (Label(2), 0.5)], n),
            vec![RefId(1), RefId(2)],
        );
        b.add_edge(v0, v1, EdgeProbability::Independent(0.9));
        b.add_edge(v0, v2, EdgeProbability::Independent(0.75));
        b.build()
    }

    #[test]
    fn csr_adjacency() {
        let g = tiny();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.neighbors(EntityId(0)), &[1, 2]);
        assert_eq!(g.neighbors(EntityId(1)), &[0]);
        assert_eq!(g.degree(EntityId(0)), 2);
        let nbrs: Vec<(EntityId, f64)> =
            g.neighbor_edges(EntityId(0)).map(|(v, e)| (v, e.prob.max_prob())).collect();
        assert_eq!(nbrs, vec![(EntityId(1), 0.9), (EntityId(2), 0.75)]);
    }

    #[test]
    fn edge_lookup_and_probs() {
        let g = tiny();
        assert!(g.edge_between(EntityId(0), EntityId(1)).is_some());
        assert!(g.edge_between(EntityId(1), EntityId(0)).is_some());
        assert!(g.edge_between(EntityId(1), EntityId(2)).is_none());
        assert_eq!(g.edge_prob(EntityId(0), EntityId(2), Label(0), Label(2)), 0.75);
        assert_eq!(g.edge_prob(EntityId(1), EntityId(2), Label(0), Label(0)), 0.0);
        assert_eq!(g.edge_prob_max(EntityId(0), EntityId(1)), 0.9);
    }

    #[test]
    fn refs_disjointness() {
        let g = tiny();
        assert!(g.refs_disjoint(EntityId(0), EntityId(1)));
        assert!(!g.refs_disjoint(EntityId(1), EntityId(2)));
        assert!(g.shares_ref_with_any(EntityId(2), &[EntityId(0), EntityId(1)]));
        assert!(!g.shares_ref_with_any(EntityId(0), &[EntityId(1), EntityId(2)]));
    }

    #[test]
    fn conditional_edge_orientation() {
        let table = LabelTable::from_names(["x", "y"]);
        let n = table.len();
        let mut b = EntityGraphBuilder::new(table);
        let v0 = b.add_node(LabelDist::delta(Label(0), n), vec![RefId(0)]);
        let v1 = b.add_node(LabelDist::delta(Label(1), n), vec![RefId(1)]);
        // Asymmetric CPT: rows = label of first endpoint (v0).
        let mut cpt = crate::dist::CondTable::zeros(n);
        cpt.set(Label(0), Label(1), 0.9);
        cpt.set(Label(1), Label(0), 0.1);
        b.add_edge(v0, v1, EdgeProbability::Conditional(cpt));
        let g = b.build();
        // Query with u = v0 (labels in stored orientation).
        assert_eq!(g.edge_prob(v0, v1, Label(0), Label(1)), 0.9);
        // Query with u = v1 must flip orientation.
        assert_eq!(g.edge_prob(v1, v0, Label(1), Label(0)), 0.9);
        assert_eq!(g.edge_prob(v1, v0, Label(0), Label(1)), 0.1);
    }

    #[test]
    fn add_edge_replaces() {
        let table = LabelTable::from_names(["x"]);
        let mut b = EntityGraphBuilder::new(table);
        let v0 = b.add_node(LabelDist::delta(Label(0), 1), vec![RefId(0)]);
        let v1 = b.add_node(LabelDist::delta(Label(0), 1), vec![RefId(1)]);
        b.add_edge(v0, v1, EdgeProbability::Independent(0.2));
        b.add_edge(v1, v0, EdgeProbability::Independent(0.6));
        let g = b.build();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edge_prob_max(v0, v1), 0.6);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        let table = LabelTable::from_names(["x"]);
        let mut b = EntityGraphBuilder::new(table);
        let v0 = b.add_node(LabelDist::delta(Label(0), 1), vec![RefId(0)]);
        b.add_edge(v0, v0, EdgeProbability::Independent(0.5));
    }
}
