//! Property test: any reference graph survives a CSV save/load round trip
//! exactly (same alphabet, distributions, edges, reference sets, and
//! singleton weights), including conditional edges and hostile label names.

use graphstore::csv::{load_ref_graph_csv, save_ref_graph_csv};
use graphstore::{CondTable, EdgeProbability, Label, LabelDist, LabelTable, RefGraph, RefId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Spec {
    labels: Vec<String>,
    /// Per reference: (label, weight) pairs to normalize into a distribution.
    refs: Vec<Vec<(u16, u32)>>,
    /// (a, b, independent prob or None for a CPT derived from the seed).
    edges: Vec<(u32, u32, Option<f64>, u64)>,
    sets: Vec<(Vec<u32>, f64)>,
    singletons: Vec<(u32, f64)>,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    let label = prop_oneof![
        "[a-z]{1,6}",
        r#"[a-z, "]{1,6}"#, // needs quoting
    ];
    (prop::collection::vec(label, 1..4), 1usize..8).prop_flat_map(|(labels, n_refs)| {
        let n_labels = labels.len() as u16;
        let refs =
            prop::collection::vec(prop::collection::vec((0..n_labels, 1u32..100), 1..4), n_refs);
        let edges = prop::collection::vec(
            (0..n_refs as u32, 0..n_refs as u32, prop::option::of(0.0..=1.0f64), any::<u64>()),
            0..8,
        );
        let sets = prop::collection::vec(
            (prop::collection::vec(0..n_refs as u32, 2..4), 0.01..=1.0f64),
            0..3,
        );
        let singletons = prop::collection::vec((0..n_refs as u32, 0.01..=1.0f64), 0..3);
        (Just(labels), refs, edges, sets, singletons).prop_map(
            |(labels, refs, edges, sets, singletons)| Spec {
                labels,
                refs,
                edges,
                sets,
                singletons,
            },
        )
    })
}

fn build(spec: &Spec) -> RefGraph {
    let mut table = LabelTable::new();
    for (i, name) in spec.labels.iter().enumerate() {
        table.intern(&format!("{name}#{i}")); // force distinct names
    }
    let n = table.len();
    let mut g = RefGraph::new(table);
    for pairs in &spec.refs {
        let mut dist = LabelDist::from_pairs(
            &pairs.iter().map(|&(l, w)| (Label(l % n as u16), w as f64)).collect::<Vec<_>>(),
            n,
        );
        dist.normalize();
        g.add_ref(dist);
    }
    for &(a, b, p, seed) in &spec.edges {
        if a == b {
            continue;
        }
        let prob = match p {
            Some(p) => EdgeProbability::Independent(p),
            None => EdgeProbability::Conditional(CondTable::from_fn(n, |la, lb| {
                // Deterministic pseudo-random CPT from the seed.
                let h = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add((la.0 as u64) << 16 | lb.0 as u64);
                (h % 1000) as f64 / 1000.0
            })),
        };
        g.add_edge(RefId(a), RefId(b), prob);
    }
    for (members, w) in &spec.sets {
        let mut m: Vec<RefId> = members.iter().map(|&r| RefId(r)).collect();
        m.sort_unstable();
        m.dedup();
        if m.len() >= 2 {
            g.add_ref_set(m, *w);
        }
    }
    for &(r, w) in &spec.singletons {
        g.set_singleton_weight(RefId(r), w);
    }
    g
}

fn assert_graphs_equal(a: &RefGraph, b: &RefGraph) {
    assert_eq!(a.label_table().names(), b.label_table().names());
    assert_eq!(a.n_refs(), b.n_refs());
    for r in a.ref_ids() {
        assert_eq!(a.reference(r).labels, b.reference(r).labels, "{r:?}");
        assert_eq!(a.singleton_weight(r), b.singleton_weight(r), "{r:?}");
    }
    assert_eq!(a.n_edges(), b.n_edges());
    for ea in a.edges() {
        let eb = b.edge_between(ea.a, ea.b).expect("edge present after round trip");
        assert_eq!(ea.prob, eb.prob, "({:?},{:?})", ea.a, ea.b);
    }
    assert_eq!(a.ref_sets().len(), b.ref_sets().len());
    for (sa, sb) in a.ref_sets().iter().zip(b.ref_sets()) {
        assert_eq!(sa.members, sb.members);
        assert_eq!(sa.weight, sb.weight);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn csv_round_trip_is_exact(spec in arb_spec(), case in 0u32..1_000_000) {
        let g = build(&spec);
        let dir = std::env::temp_dir().join(format!(
            "graphstore-csv-pt-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        save_ref_graph_csv(&g, &dir).expect("save");
        let loaded = load_ref_graph_csv(&dir).expect("load");
        std::fs::remove_dir_all(&dir).ok();
        assert_graphs_equal(&g, &loaded);
    }
}
