//! Property test: entity graphs round-trip losslessly through persistence,
//! including sparse label distributions and conditional edge tables.

use graphstore::dist::{CondTable, EdgeProbability, LabelDist};
use graphstore::persist::{load_entity_graph, save_entity_graph};
use graphstore::{EntityGraphBuilder, EntityId, Label, LabelTable, RefId};
use kvstore::MemStore;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Spec {
    nodes: Vec<(Vec<f64>, Vec<u32>)>,
    edges: Vec<(u8, u8, EdgeSpec)>,
}

#[derive(Clone, Debug)]
enum EdgeSpec {
    Indep(f64),
    Cond(Vec<f64>),
}

const NL: usize = 3;

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let node =
        (proptest::collection::vec(0.0f64..=1.0, NL), proptest::collection::vec(0u32..32, 1..3));
    let edge_kind = prop_oneof![
        (0.0f64..=1.0).prop_map(EdgeSpec::Indep),
        proptest::collection::vec(0.0f64..=1.0, NL * NL).prop_map(EdgeSpec::Cond),
    ];
    (2usize..=7).prop_flat_map(move |n| {
        (
            proptest::collection::vec(node.clone(), n),
            proptest::collection::vec((0u8..n as u8, 0u8..n as u8, edge_kind.clone()), 0..=6),
        )
            .prop_map(|(nodes, edges)| Spec { nodes, edges })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_is_lossless(spec in spec_strategy()) {
        let table = LabelTable::from_names(["a", "b", "c"]);
        let mut b = EntityGraphBuilder::new(table);
        for (probs, refs) in &spec.nodes {
            let total: f64 = probs.iter().sum();
            let dist = if total > 0.0 {
                let pairs: Vec<(Label, f64)> = probs
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (Label(i as u16), p / total))
                    .collect();
                LabelDist::from_pairs(&pairs, NL)
            } else {
                LabelDist::delta(Label(0), NL)
            };
            b.add_node(dist, refs.iter().map(|&r| RefId(r)).collect());
        }
        for (x, y, kind) in &spec.edges {
            if x == y {
                continue;
            }
            let prob = match kind {
                EdgeSpec::Indep(p) => EdgeProbability::Independent(*p),
                EdgeSpec::Cond(t) => {
                    let mut cpt = CondTable::zeros(NL);
                    for a in 0..NL {
                        for c in 0..NL {
                            cpt.set(Label(a as u16), Label(c as u16), t[a * NL + c]);
                        }
                    }
                    EdgeProbability::Conditional(cpt)
                }
            };
            b.add_edge(EntityId(*x as u32), EntityId(*y as u32), prob);
        }
        let g = b.build();

        let mut kv = MemStore::new();
        save_entity_graph(&g, &mut kv).unwrap();
        let g2 = load_entity_graph(&kv).unwrap();

        prop_assert_eq!(g2.n_nodes(), g.n_nodes());
        prop_assert_eq!(g2.n_edges(), g.n_edges());
        for v in g.node_ids() {
            prop_assert_eq!(&g2.node(v).refs, &g.node(v).refs);
            for l in 0..NL as u16 {
                let (a, b2) = (g.label_prob(v, Label(l)), g2.label_prob(v, Label(l)));
                prop_assert!((a - b2).abs() < 1e-15);
            }
        }
        for u in g.node_ids() {
            for v in g.node_ids() {
                if u >= v {
                    continue;
                }
                for la in 0..NL as u16 {
                    for lb in 0..NL as u16 {
                        let a = g.edge_prob(u, v, Label(la), Label(lb));
                        let b2 = g2.edge_prob(u, v, Label(la), Label(lb));
                        prop_assert!((a - b2).abs() < 1e-15,
                            "edge ({u:?},{v:?}) labels ({la},{lb})");
                    }
                }
                prop_assert_eq!(g.refs_disjoint(u, v), g2.refs_disjoint(u, v));
            }
        }
    }
}
