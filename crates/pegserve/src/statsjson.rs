//! The one JSON rendering for every stats struct the serving layer
//! reports.
//!
//! Four structs cross the protocol boundary as statistics —
//! [`PipelineStats`] (per-query stage instrumentation),
//! [`ScatterStats`] (the sharded store's last scatter-gather),
//! [`WorkerStats`] (per-worker transport counters), and
//! [`AdmissionStats`] (the admission semaphore) — and each is rendered
//! by exactly one helper here, shared by the `stats` and `explain`
//! handlers and mirrored by `pegcli`'s pretty printers. One renderer per
//! struct is the drift guard: a field added to a struct shows up in
//! every reply that carries it, under one name, or in none — the
//! `stats`-vs-`--pretty` skew this module replaced cannot recur. The
//! schemas are documented in README.md's protocol table.

use crate::admission::{Admission, AdmissionStats};
use crate::json::{obj, Json};
use pegmatch::online::PipelineStats;
use pegshard::{ScatterStats, WorkerStats};

fn counts(v: &[usize]) -> Json {
    Json::Arr(v.iter().map(|&c| Json::Num(c as f64)).collect())
}

/// Stage-by-stage pipeline instrumentation: per-path candidate counts
/// through the three pruning stages, log10 search-space sizes, reduction
/// work, and per-stage wall times in microseconds. `candidates_us` is
/// the retrieval + context-pruning cost — on an execution-cache hit
/// (`exec_cache_hit: true`) it reports the cached-list re-filter, which
/// is the work actually done.
pub fn pipeline_json(s: &PipelineStats) -> Json {
    obj()
        .field("n_paths", s.n_paths)
        .field("raw_counts", counts(&s.raw_counts))
        .field("context_counts", counts(&s.context_counts))
        .field("final_counts", counts(&s.final_counts))
        .field("log10_ss_index", s.log10_ss_index)
        .field("log10_ss_context", s.log10_ss_context)
        .field("log10_ss_final", s.log10_ss_final)
        .field("removed_structure", s.removed_structure)
        .field("removed_upperbound", s.removed_upperbound)
        .field("message_rounds", s.message_rounds)
        .field("frontier_evals", s.frontier_evals)
        .field("full_evals_avoided", s.full_evals_avoided)
        .field("round_frontiers", counts(&s.round_frontiers))
        .field("n_matches", s.n_matches)
        .field("base_alpha", s.base_alpha)
        .field("base_reused", s.base_reused)
        .field("exec_cache_hit", s.exec_cache_hit)
        .field("decompose_us", s.decompose_time.as_micros() as u64)
        .field("candidates_us", s.candidates_time.as_micros() as u64)
        .field("join_us", s.join_time.as_micros() as u64)
        .field("reduction_us", s.reduction_time.as_micros() as u64)
        .field("generation_us", s.generation_time.as_micros() as u64)
        .field("total_us", s.total_time.as_micros() as u64)
        .build()
}

/// The sharded store's most recent scatter-gather: per-shard raw and
/// pruned candidate counts (boundary replicas included), the distinct
/// totals after the home filter, and the scatter's wall time.
pub fn scatter_json(s: &ScatterStats) -> Json {
    obj()
        .field("per_shard_raw", counts(&s.per_shard_raw))
        .field("per_shard_pruned", counts(&s.per_shard_pruned))
        .field("raw_distinct", s.raw_distinct)
        .field("pruned_distinct", s.pruned_distinct)
        .field("duplicates_dropped", s.duplicates_dropped)
        .field("prefetched", s.prefetched)
        .field("retrieve_us", s.retrieve_time.as_micros() as u64)
        .build()
}

/// Per-worker transport counters for a distributed graph: exchanges,
/// bytes each way, reconnects, full-history p50/p99 exchange latency,
/// and mux bookkeeping.
pub fn workers_json(ws: &[WorkerStats]) -> Json {
    Json::Arr(
        ws.iter()
            .map(|w| {
                obj()
                    .field("shard", w.shard)
                    .field("addr", w.addr.as_str())
                    .field("requests", w.requests)
                    .field("bytes_tx", w.bytes_tx)
                    .field("bytes_rx", w.bytes_rx)
                    .field("reconnects", w.reconnects)
                    .field("p50_us", w.p50_us)
                    .field("p99_us", w.p99_us)
                    .field("mux_tombstones", w.mux_tombstones)
                    .field("mux_inflight_hwm", w.mux_inflight_hwm)
                    .build()
            })
            .collect(),
    )
}

/// The admission semaphore's configuration and counters.
pub fn admission_json(a: &Admission, s: AdmissionStats) -> Json {
    obj()
        .field("max_sessions", a.max_sessions())
        .field("queue_depth", a.queue_depth())
        .field("deadline_ms", a.deadline().as_millis() as u64)
        .field("running", s.running)
        .field("waiting", s.waiting)
        .field("admitted", s.admitted)
        .field("rejected_overloaded", s.rejected_overloaded)
        .field("rejected_timeout", s.rejected_timeout)
        .field("peak_running", s.peak_running)
        .build()
}

/// A [`pegtrace::MetricsRegistry`] dump: sorted counters and histogram
/// snapshots, the `metrics` op's reply body.
pub fn metrics_json(registry: &pegtrace::MetricsRegistry) -> Json {
    let counters = Json::Arr(
        registry
            .counters()
            .iter()
            .map(|(name, v)| obj().field("name", name.as_str()).field("value", *v).build())
            .collect(),
    );
    let histograms = Json::Arr(
        registry
            .histograms()
            .iter()
            .map(|(name, s)| {
                obj()
                    .field("name", name.as_str())
                    .field("count", s.count)
                    .field("sum_us", s.sum_us)
                    .field("mean_us", s.mean_us)
                    .field("p50_us", s.p50_us)
                    .field("p90_us", s.p90_us)
                    .field("p99_us", s.p99_us)
                    .field("max_us", s.max_us)
                    .build()
            })
            .collect(),
    );
    obj().field("counters", counters).field("histograms", histograms).build()
}
