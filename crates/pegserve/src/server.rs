//! The query server: `std::net` TCP, thread-per-connection, line-delimited
//! JSON.
//!
//! One [`Server`] owns any number of loaded graphs; each graph carries its
//! probabilistic entity graph, offline index, and one shared
//! [`PlanCache`] — the plan-cache/session seam the online pipeline was
//! layered for. A server-wide [`ExecCache`] (sized by
//! [`ServerConfig::exec_cache_bytes`], epoch-stamped per graph) addi-
//! tionally reuses post-prune candidate retrievals across repeated-shape
//! query mixes — a hit re-prunes cached floor-threshold lists instead of
//! probing the index (or, for a distributed graph, scattering to the
//! workers at all), and replies stay bit-identical either way. Every `query` / `query_topk` request passes the
//! [`Admission`] semaphore, opens a fresh `QuerySession` over the shared
//! cacheable plan, and executes on the persistent `pegpool` pool sized by
//! the request's `threads` field. Results are therefore bit-identical to a
//! direct [`QueryPipeline::run`] / `run_topk` with the same graph,
//! threshold, and thread count — the server adds sharing and scheduling,
//! never different math.
//!
//! # Protocol
//!
//! One JSON object per line in each direction. Requests carry an `"op"`
//! and are decoded + validated through the typed registry in
//! [`crate::proto`] — one decode path, no per-handler field parsing. Any
//! request may additionally carry `"v"`, the protocol version (currently
//! `1`): absent means the untagged pre-versioning contract, a known
//! version is echoed on the reply, and an unknown version is a
//! structured `bad_request` before the op is looked at.
//!
//! | op               | fields                                                            |
//! |------------------|-------------------------------------------------------------------|
//! | `ping`           | —                                                                 |
//! | `load_graph`     | `name?`, `kind` (`synthetic`/`dblp`/`imdb`), `size`, `seed?`, `uncertainty?`, `max_len?`, `beta?`, `shards?`, `workers?`, `worker_timeout_ms?`, `exec_cache?` |
//! | `unload_graph`   | `graph` (required; `not_found` for unknown names)                 |
//! | `prepare`        | `graph?`, `pattern`, `alpha?`                                     |
//! | `query`          | `graph?`, `pattern`, `alpha?`, `limit?`, `threads?`, `debug_sleep_ms?` |
//! | `query_batch`    | `graph?`, `queries` (array of `{pattern, alpha?, limit?}`), `threads?` |
//! | `query_topk`     | `graph?`, `pattern`, `k?`, `min_alpha?`, `threads?`, `debug_sleep_ms?` |
//! | `update_graph`   | `graph?`, `ops` (array of mutation ops — see [`crate::proto`])    |
//! | `explain`        | `graph?`, `pattern`, `alpha?`, `limit?`, `threads?` — query + plan summary + pipeline/scatter stats + full span tree |
//! | `stats`          | —                                                                 |
//! | `metrics`        | — (process metrics registry dump: counters + latency histograms)  |
//! | `shutdown`       | —                                                                 |
//! | `shard_load`     | `graph?`, generator spec (`kind`/`size`/`seed?`/`uncertainty?`/`max_len?`/`beta?`), `shard`, `n_shards` |
//! | `shard_retrieve` | `graph`, `alpha`, `labels`, `edges`, `paths`, `threads?`, `version?`, `trace_id?` (reply gains `span`) |
//! | `shard_retrieve_batch` | `graph`, `queries` (array of retrieve bodies), `threads?`, `version?` |
//! | `shard_update`   | `graph`, `version`, `ops`                                         |
//! | `shard_unload`   | `graph`                                                           |
//!
//! # Live graphs
//!
//! Every protocol-loaded graph (and any graph registered through
//! [`Server::insert_live_graph`]) is **live**: `update_graph` applies a
//! mutation batch — upsert/delete entities, edges, linkage evidence —
//! and the store is incrementally recompiled rather than rebuilt, with
//! replies afterwards **f64-bit-identical** to a from-scratch rebuild of
//! the mutated network. Each applied batch bumps the graph's mutation
//! `version` and retires its execution-cache epoch, so no cached plan or
//! retrieval from before the mutation can ever serve a query after it;
//! requests already executing keep the pre-mutation store (snapshot
//! semantics — an entry swap never changes results mid-flight). On a
//! sharded store only the shards whose halo a mutation's dirty set
//! reaches are rebuilt; on a distributed store the coordinator broadcasts
//! `shard_update` and every worker applies the same batch to the same
//! effect, keeping the last two shard versions so in-flight scatters
//! pinned to the old version still answer. A failed or partially-applied
//! distributed update leaves the old store fully serviceable, and
//! retrying re-sends the same version, which workers that already hold it
//! acknowledge idempotently.
//!
//! # Request ids and in-flight concurrency
//!
//! Any request may carry a `u64` `"id"` field; the reply echoes it
//! verbatim. An id opts the request into **out-of-order** completion on
//! its connection: the thread-per-connection handler dispatches id'd
//! requests on their own threads (bounded per connection) and writes each
//! reply as it finishes, so a multiplexing client
//! ([`pegwire::MuxConn`] — notably the coordinator's shard transport)
//! overlaps many exchanges on one socket. Requests without an id keep
//! strict FIFO request/reply order. The epoll front end (see
//! [`ServeMode`]) processes each connection serially — ids are still
//! echoed, but replies stay in order; its concurrency is across
//! connections, which is the axis an event loop scales.
//!
//! `query_batch` ships many threshold queries in one line and one reply —
//! amortizing the per-exchange wire tax — and executes them under **one**
//! admission permit, prefetching all their candidate scatters in a single
//! batched round trip per shard worker when the graph is distributed.
//! Every per-query result is bit-identical to the same `query` sent
//! alone.
//!
//! `graph` may be omitted when exactly one graph is loaded. `load_graph`
//! with `shards > 1` builds a [`pegshard::ShardedGraphStore`] behind the
//! same plan-cache/session flow — replies stay bit-identical to the
//! unsharded store's. `load_graph` with `workers: [addr, ...]` goes
//! **distributed**: each worker process (any `pegserve` server — see
//! `pegcli shard-worker`) receives a `shard_load` with the same generator
//! spec plus its `(shard, n_shards)` assignment, rebuilds its shard
//! deterministically, and answers `shard_retrieve` scatters from then on,
//! while planning, k-partite reduction, and match generation stay on the
//! coordinator — results remain bit-identical to the unsharded store's. A
//! worker lost mid-query yields a structured `shard_unavailable` reply
//! within the transport deadline (never a hang), and the coordinator
//! stays serviceable for its other graphs. `unload_graph` drops the named
//! graph and its plan cache (releasing worker connections and worker-side
//! shard state for distributed graphs) so long-lived servers reclaim
//! memory. Replies are
//! `{"ok":true,...}` or `{"ok":false,"error":CODE,"message":...}` with
//! codes `bad_request`, `unknown_graph`, `not_found`, `overloaded`,
//! `timeout`, `shard_unavailable`, `internal`. `query`, `query_topk`,
//! `prepare`, `load_graph`, `shard_load`, and `shard_retrieve` (the
//! compute-occupying ops) pass admission; `load_graph`
//! additionally caps `size` at [`MAX_LOAD_SIZE`], `max_len` at
//! [`MAX_LOAD_PATH_LEN`], `shards` at [`MAX_LOAD_SHARDS`], and `beta` at
//! no less than [`MIN_LOAD_BETA`]; patterns are capped at
//! [`MAX_PATTERN_NODES`] nodes, per-query `threads` is clamped to the
//! machine's parallelism, request lines are capped at
//! [`MAX_LINE_BYTES`], and replies at [`MAX_RESULT_MATCHES`] matches.
//! `debug_sleep_ms` holds the admission permit while sleeping before
//! execution — an operational knob for exercising admission control
//! deterministically (tests, drills), not part of the query semantics —
//! and is honored only when [`ServerConfig::allow_debug_sleep`] is set.

use crate::admission::Admission;
use crate::json::{obj, Json};
use crate::proto::{self, ProtoError};
use crate::statsjson;
use graphstore::RefGraph;
use pegmatch::error::PegError;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{
    floor_alpha, CandidateSource, ExecCache, PlanCache, QueryOptions, QueryPipeline, QueryResult,
    DEFAULT_EXEC_CACHE_BYTES,
};
use pegmatch::Peg;
use pegshard::{
    wire as shard_wire, ShardedGraphStore, TcpTransport, TcpTransportConfig, WorkerShard,
};
use pegtrace::{MetricsRegistry, SpanNode, Tracer};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// The protocol limits and the graph-spec decoder moved into [`crate::proto`]
// with the typed request structs; re-exported here because they are part of
// the server's public surface (docs and callers name them on `server`).
pub use crate::proto::{
    GraphSpec, MAX_LOAD_PATH_LEN, MAX_LOAD_SHARDS, MAX_LOAD_SIZE, MAX_PATTERN_NODES,
    MAX_QUERY_BATCH, MAX_RESULT_MATCHES, MIN_LOAD_BETA,
};

/// Which connection front end [`Server::serve`] runs.
///
/// Both modes speak the identical protocol and produce byte-identical
/// replies; they differ in how connections map to OS resources.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// One OS thread per live connection (the default). Simple, and id'd
    /// requests overlap within a connection — but each idle connection
    /// pins a thread stack, so `max_connections` stays small.
    #[default]
    Threads,
    /// A single epoll readiness loop owns every socket; query execution
    /// is dispatched to a fixed worker pool so the loop never blocks.
    /// Idle connections cost one registered fd, letting `max_connections`
    /// scale far past the thread mode's ceiling. Linux only.
    Epoll,
}

impl std::str::FromStr for ServeMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "threads" => Ok(ServeMode::Threads),
            "epoll" => Ok(ServeMode::Epoll),
            other => Err(format!("unknown serve mode {other:?} (threads|epoll)")),
        }
    }
}

/// Server knobs. Admission bounds apply to `query` / `query_topk` /
/// `prepare` / `load_graph` — the ops that occupy compute.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Concurrent query sessions executing at once.
    pub max_sessions: usize,
    /// Requests allowed to wait for a session slot beyond `max_sessions`.
    pub queue_depth: usize,
    /// How long a queued request may wait before a `timeout` reply.
    pub deadline: Duration,
    /// Live connections (= handler threads) accepted at once. Connections
    /// past the bound get an `overloaded` reply and are closed — with
    /// thread-per-connection, sockets and thread stacks are a resource
    /// like any other, and idle connections hold them without ever
    /// touching admission.
    pub max_connections: usize,
    /// Honor the `debug_sleep_ms` request field (admission-drill knob).
    /// Off by default: on a public endpoint it would let any client hold
    /// session permits doing zero work; requests carrying the field are
    /// rejected with `bad_request` unless this is set.
    pub allow_debug_sleep: bool,
    /// Connection front end (see [`ServeMode`]).
    pub serve_mode: ServeMode,
    /// Byte budget for the server-wide execution cache (post-prune
    /// candidate lists keyed by graph epoch + canonical shape + quantized
    /// floor threshold). `0` disables it. Per-graph participation is a
    /// `load_graph` knob (`"exec_cache": false` opts a graph out).
    pub exec_cache_bytes: usize,
    /// Slow-query threshold: a query op whose execution (inside its
    /// admission permit) takes at least this many milliseconds is logged
    /// to stderr as one structured JSON line (`pegcli serve
    /// --slow-query-ms`). `None` disables the log.
    pub slow_query_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 4,
            queue_depth: 16,
            deadline: Duration::from_secs(5),
            max_connections: 256,
            allow_debug_sleep: false,
            serve_mode: ServeMode::default(),
            exec_cache_bytes: DEFAULT_EXEC_CACHE_BYTES,
            slow_query_ms: None,
        }
    }
}

/// How a loaded graph is stored: one offline index, or partitioned across
/// shards with scatter-gather retrieval. Both sit behind the same
/// [`PlanCache`]/`QuerySession` flow and answer bit-identically.
pub enum GraphStore {
    /// The classic single store: one PEG, one offline index.
    Unsharded {
        /// The probabilistic entity graph.
        peg: Peg,
        /// Offline index (path index + context information).
        offline: OfflineIndex,
    },
    /// A sharded store (`load_graph` with `shards > 1`).
    Sharded(ShardedGraphStore),
}

impl GraphStore {
    /// The full entity graph (for pattern parsing and stats).
    pub fn peg(&self) -> &Peg {
        match self {
            GraphStore::Unsharded { peg, .. } => peg,
            GraphStore::Sharded(store) => store.peg(),
        }
    }

    /// A pipeline over this store.
    pub fn pipeline(&self) -> QueryPipeline<'_> {
        match self {
            GraphStore::Unsharded { peg, offline } => QueryPipeline::new(peg, offline),
            GraphStore::Sharded(store) => store.pipeline(),
        }
    }

    /// Shard count (1 for the unsharded store).
    pub fn n_shards(&self) -> usize {
        match self {
            GraphStore::Unsharded { .. } => 1,
            GraphStore::Sharded(store) => store.n_shards(),
        }
    }
}

/// One loaded graph: its store and the shared per-graph plan cache all
/// sessions hit. Dropping the entry (see `unload_graph`) drops the plan
/// cache with it.
///
/// Entries are immutable snapshots: `update_graph` builds a *successor*
/// entry (new store, fresh plan cache, new epoch, `version + 1`) and
/// swaps it into the registry, so a request that already resolved this
/// entry finishes against exactly the graph it started on.
pub struct GraphEntry {
    /// Name the graph was registered under.
    pub name: String,
    /// The graph store (unsharded or sharded).
    pub store: GraphStore,
    /// Plan cache shared by every request against this graph. Plans cost
    /// against the store's histograms, so a mutation retires the whole
    /// cache along with the entry.
    pub plans: Arc<PlanCache>,
    /// Execution-cache epoch stamped at load (or at the mutation that
    /// produced this entry). Epochs are never reused, so unloading,
    /// reloading under the same name, or mutating makes every cached
    /// retrieval keyed by the old epoch unreachable — and the swap
    /// explicitly drops them.
    pub epoch: u64,
    /// Whether this graph participates in the server's execution cache
    /// (the `load_graph` `"exec_cache"` knob; defaults on).
    pub exec_enabled: bool,
    /// The reference network the store was compiled from — present iff
    /// the graph is live (mutable via `update_graph`).
    refs: Option<RefGraph>,
    /// Offline knobs the store was built with (incremental recompiles
    /// must reuse them to stay rebuild-equivalent).
    opts: OfflineOptions,
    /// Mutation counter: 0 at load, bumped by every applied
    /// `update_graph`.
    version: u64,
    /// Serializes mutations per graph. Carried across entry swaps (the
    /// successor shares the `Arc`), so two concurrent `update_graph`s
    /// against any snapshot of the same graph still run one at a time.
    update_lock: Arc<Mutex<()>>,
}

impl GraphEntry {
    /// Whether `update_graph` can mutate this graph (it carries its
    /// reference network).
    pub fn is_live(&self) -> bool {
        self.refs.is_some()
    }

    /// How many mutation batches produced this snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }
}

pub(crate) struct ServerState {
    graphs: Mutex<HashMap<String, Arc<GraphEntry>>>,
    /// Shard-worker state: one shard per graph name, loaded by a
    /// coordinator's `shard_load`. Any server can act as a worker — the
    /// coordinator/worker distinction is which ops a peer sends, not a
    /// process mode.
    worker_shards: Mutex<HashMap<String, Arc<WorkerShard>>>,
    /// Server-wide execution cache shared by every graph (per-graph
    /// isolation comes from the epoch in every key); `None` when
    /// [`ServerConfig::exec_cache_bytes`] is 0.
    exec_cache: Option<Arc<ExecCache>>,
    admission: Admission,
    allow_debug_sleep: bool,
    pub(crate) max_connections: usize,
    pub(crate) shutdown: AtomicBool,
    queries_served: AtomicU64,
    /// This server's metrics registry (per instance, not process-global:
    /// tests and embedders run several servers in one process and each
    /// `metrics` reply must describe only its own). Dumped by the
    /// `metrics` op in [`statsjson::metrics_json`]'s schema.
    metrics: MetricsRegistry,
    /// Trace-id source for `explain` and any future traced op. A plain
    /// counter, not a random id: ids only need to be unique per server,
    /// and they must stay below 2^53 to survive the JSON number type.
    trace_ids: AtomicU64,
    /// Slow-query threshold ([`ServerConfig::slow_query_ms`]).
    slow_query: Option<Duration>,
    addr: SocketAddr,
    /// Worker threads the epoll front end dispatches requests to — sized
    /// so admission (not the executor) is what queues compute: every
    /// session slot plus the full admission queue can be mid-request at
    /// once, with a little slack for cheap control ops.
    pub(crate) executor_threads: usize,
}

/// A bound (not yet serving) query server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    mode: ServeMode,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    /// The bound address (resolves port 0).
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Signals shutdown and joins the accept loop (idempotent with a
    /// protocol-level `shutdown` op).
    pub fn shutdown(self) -> std::io::Result<()> {
        request_shutdown(&self.state);
        self.join.join().expect("server thread panicked")
    }
}

fn request_shutdown(state: &ServerState) {
    state.shutdown.store(true, Ordering::SeqCst);
    // Wake the accept loop with a throwaway connection.
    let _ = TcpStream::connect(state.addr);
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            graphs: Mutex::new(HashMap::new()),
            worker_shards: Mutex::new(HashMap::new()),
            exec_cache: (config.exec_cache_bytes > 0)
                .then(|| Arc::new(ExecCache::new(config.exec_cache_bytes))),
            admission: Admission::new(config.max_sessions, config.queue_depth, config.deadline),
            allow_debug_sleep: config.allow_debug_sleep,
            max_connections: config.max_connections.max(1),
            shutdown: AtomicBool::new(false),
            queries_served: AtomicU64::new(0),
            metrics: MetricsRegistry::new(),
            trace_ids: AtomicU64::new(1),
            slow_query: config.slow_query_ms.map(Duration::from_millis),
            addr,
            executor_threads: config.max_sessions + config.queue_depth + 2,
        });
        Ok(Server { listener, state, mode: config.serve_mode })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Registers a graph under `name` before (or while) serving — the
    /// embedding-side twin of the protocol's `load_graph`. The graph is
    /// **static**: without its reference network it cannot be mutated,
    /// and `update_graph` against it is a structured `bad_request`. Use
    /// [`Server::insert_live_graph`] to register a mutable graph.
    pub fn insert_graph(&self, name: &str, peg: Peg, offline: OfflineIndex) {
        insert_store(&self.state, name, GraphStore::Unsharded { peg, offline }, true, None);
    }

    /// Registers a **live** (mutable) graph: the reference network `refs`
    /// and the offline options the store was built with ride along, so
    /// `update_graph` can incrementally recompile. `peg`/`offline` must
    /// have been built from exactly `refs` with exactly `opts` — the
    /// rebuild-equivalence guarantee is relative to them.
    pub fn insert_live_graph(
        &self,
        name: &str,
        refs: RefGraph,
        peg: Peg,
        offline: OfflineIndex,
        opts: OfflineOptions,
    ) {
        insert_store(
            &self.state,
            name,
            GraphStore::Unsharded { peg, offline },
            true,
            Some((refs, opts)),
        );
    }

    /// Registers a pre-built sharded store under `name` — the
    /// embedding-side twin of `load_graph` with `shards > 1`. Pass
    /// `Some(refs)` (the network the store was built from) to make the
    /// graph live; `None` registers it static.
    pub fn insert_sharded_graph(
        &self,
        name: &str,
        store: ShardedGraphStore,
        refs: Option<RefGraph>,
    ) {
        let live = refs.map(|r| (r, store.offline_options().clone()));
        insert_store(&self.state, name, GraphStore::Sharded(store), true, live);
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::shutdown`]),
    /// on the front end picked by [`ServerConfig::serve_mode`].
    pub fn serve(self) -> std::io::Result<()> {
        match self.mode {
            ServeMode::Threads => self.serve_threads(),
            #[cfg(target_os = "linux")]
            ServeMode::Epoll => crate::reactor::serve_epoll(self.listener, self.state),
            #[cfg(not(target_os = "linux"))]
            ServeMode::Epoll => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "epoll serve mode is linux-only; use ServeMode::Threads",
            )),
        }
    }

    /// Thread-per-connection front end: the accept loop reaps finished
    /// handlers and joins the rest before returning.
    fn serve_threads(self) -> std::io::Result<()> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) => {
                    // Persistent accept errors (e.g. fd exhaustion under
                    // load) must not busy-spin the accept thread.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            let state = self.state.clone();
            handlers.retain(|h| !h.is_finished());
            if handlers.len() >= self.state.max_connections {
                // Every handler slot is a live thread + socket; past the
                // bound, reply structured overload and close rather than
                // letting idle connections grow those resources unbounded.
                let mut stream = stream;
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let mut text = error_reply("overloaded", "connection limit reached").0.to_string();
                text.push('\n');
                let _ = stream.write_all(text.as_bytes()).and_then(|_| stream.flush());
                continue;
            }
            handlers.push(std::thread::spawn(move || handle_connection(stream, &state)));
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }

    /// Starts serving on a background thread and returns a handle.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let state = self.state.clone();
        let join = std::thread::Builder::new()
            .name("pegserve-accept".into())
            .spawn(move || self.serve())
            .expect("spawn server thread");
        ServerHandle { addr, state, join }
    }
}

fn insert_store(
    state: &ServerState,
    name: &str,
    store: GraphStore,
    exec_enabled: bool,
    live: Option<(RefGraph, OfflineOptions)>,
) {
    let epoch = state.exec_cache.as_ref().map_or(0, |c| c.next_epoch());
    let (refs, opts) = match live {
        Some((refs, opts)) => (Some(refs), opts),
        None => (None, OfflineOptions::default()),
    };
    let entry = Arc::new(GraphEntry {
        name: name.to_string(),
        store,
        plans: Arc::new(PlanCache::new()),
        epoch,
        exec_enabled,
        refs,
        opts,
        version: 0,
        update_lock: Arc::new(Mutex::new(())),
    });
    let replaced = state.graphs.lock().unwrap().insert(name.to_string(), entry);
    // Reloading under the same name retires the old epoch: its cached
    // retrievals describe a graph no client can reach anymore.
    if let (Some(old), Some(cache)) = (replaced, &state.exec_cache) {
        cache.invalidate_epoch(old.epoch);
    }
}

/// The pipeline every request against `entry` executes on, assembled
/// through the one [`QueryPipeline::builder`] entry point: the store's
/// candidate source, the graph's shared plan cache, plus the server-wide
/// execution cache (stamped with the entry's epoch) when both the server
/// and the graph opted in.
fn graph_pipeline<'a>(state: &ServerState, entry: &'a GraphEntry) -> QueryPipeline<'a> {
    let mut builder = match &entry.store {
        GraphStore::Unsharded { peg, offline } => QueryPipeline::builder(peg).index(offline),
        GraphStore::Sharded(store) => QueryPipeline::builder(store.peg()).source(store),
    }
    .plan_cache(entry.plans.clone());
    if entry.exec_enabled {
        if let Some(cache) = &state.exec_cache {
            builder = builder.exec_cache(Arc::clone(cache), entry.epoch);
        }
    }
    builder.build()
}

/// A reply-carrying protocol error.
struct Reply(Json);

impl From<ProtoError> for Reply {
    fn from(e: ProtoError) -> Reply {
        error_reply(e.code, e.message)
    }
}

fn error_reply(code: &str, message: impl std::fmt::Display) -> Reply {
    Reply(
        obj().field("ok", false).field("error", code).field("message", message.to_string()).build(),
    )
}

/// Per-request line cap: one connection cannot grow the server's memory
/// without bound by streaming bytes that never contain a newline.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// In-flight id'd requests one connection may overlap (thread front
/// end). At the cap the handler joins the oldest before reading on —
/// backpressure, not rejection: a multiplexing client this deep is
/// better slowed than disconnected.
const MAX_INFLIGHT_PER_CONN: usize = 64;

/// One framed reply write: the whole line (newline included) leaves in a
/// single `write_all` + flush under the lock. Overlapped id'd requests
/// interleave replies on one socket *as lines*, never as bytes — and a
/// single syscall per reply is also the no-Nagle latency contract.
fn write_reply(writer: &Mutex<TcpStream>, reply: &Json) -> bool {
    let mut text = reply.to_string();
    text.push('\n');
    let mut w = writer.lock().unwrap();
    w.write_all(text.as_bytes()).and_then(|_| w.flush()).is_ok()
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    // One reply per request line is the worst case for Nagle + delayed
    // ACK (a ~40ms stall per exchange on loopback, measured via the
    // shard-transport ablation): replies must leave the socket
    // immediately.
    let _ = stream.set_nodelay(true);
    // Poll for shutdown between requests: a blocked read wakes every 250ms
    // so idle connections notice a shutdown promptly. The write timeout
    // keeps a client that never drains its replies from pinning the
    // handler thread (and thereby the shutdown join) forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(writer));
    // Dispatch threads for id'd (out-of-order-eligible) requests; joined
    // before the handler returns so no reply outlives its connection.
    let mut inflight: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut reader = BufReader::new(stream);
    // Byte-level framing (not `read_line`): a read timeout firing inside a
    // multi-byte UTF-8 character must not drop the partial bytes, and a
    // `Vec<u8>` accumulator survives any split. UTF-8 is validated (lossy)
    // only once a full line is framed.
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut eof = false;
        // The cap must bound each read, not just be checked afterwards: an
        // unlimited `read_until` on a fast newline-free stream would never
        // return (and never time out), growing `buf` to OOM. Reading
        // through a `Take` of the remaining allowance makes the cap a hard
        // memory bound — the limit exhausting looks like EOF to
        // `read_until` and leaves `buf` one byte over the cap.
        let allowance = (MAX_LINE_BYTES + 1 - buf.len()) as u64;
        match (&mut reader).take(allowance).read_until(b'\n', &mut buf) {
            Ok(0) => eof = true, // client closed (any accumulated tail still answers)
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Partial line: keep accumulating.
                continue;
            }
            Err(_) => break,
        }
        if buf.len() > MAX_LINE_BYTES {
            // Over the cap (the allowance ran out before a newline): the
            // stream cannot be resynchronized, so reply and close.
            let _ = write_reply(&writer, &error_reply("bad_request", "request line too long").0);
            break;
        }
        if !buf.ends_with(b"\n") && !eof {
            // The `Take` hit EOF-of-allowance exactly at the cap boundary
            // or the socket yielded a short read without a newline; keep
            // accumulating until a newline, real EOF, or the cap trips.
            continue;
        }
        let line = String::from_utf8_lossy(&buf);
        if !line.trim().is_empty() {
            match parse_request(line.trim()) {
                Ok((req, Some(id))) => {
                    // An id opts the request into out-of-order completion:
                    // dispatch on its own thread, reply written whenever it
                    // finishes. Admission still bounds the *compute* these
                    // threads can occupy; this cap only bounds the threads
                    // one connection can pin.
                    inflight.retain(|h| !h.is_finished());
                    if inflight.len() >= MAX_INFLIGHT_PER_CONN {
                        let _ = inflight.remove(0).join();
                    }
                    let st = Arc::clone(state);
                    let wr = Arc::clone(&writer);
                    inflight.push(std::thread::spawn(move || {
                        let reply = attach_id(dispatch_parsed(&st, &req), Some(id));
                        let _ = write_reply(&wr, &reply);
                    }));
                }
                Ok((req, None)) => {
                    // No id: strict FIFO request/reply order, in line with
                    // pre-id clients.
                    if !write_reply(&writer, &dispatch_parsed(state, &req)) {
                        break;
                    }
                }
                Err(Reply(reply)) => {
                    if !write_reply(&writer, &reply) {
                        break;
                    }
                }
            }
        }
        buf.clear();
        if eof {
            break;
        }
    }
    for h in inflight {
        let _ = h.join();
    }
}

/// Parses one request line and extracts its optional `"id"`. A present
/// but non-u64 id is rejected *without* an echo — there is no
/// trustworthy id to route the error back by.
fn parse_request(line: &str) -> Result<(Json, Option<u64>), Reply> {
    let req = Json::parse(line)
        .map_err(|e| error_reply("bad_request", format!("malformed JSON: {e}")))?;
    let id = match req.get("id") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            error_reply("bad_request", "\"id\" must be an unsigned integer below 2^53")
        })?),
    };
    Ok((req, id))
}

/// Echoes the request id onto a reply — success and error replies alike,
/// because a multiplexing client routes *every* reply by its id.
fn attach_id(reply: Json, id: Option<u64>) -> Json {
    match (reply, id) {
        (Json::Obj(mut fields), Some(id)) => {
            fields.push(("id".to_string(), Json::Num(id as f64)));
            Json::Obj(fields)
        }
        (reply, _) => reply,
    }
}

/// Full request handling for one line: parse, route, echo the id. The
/// single entry point shared by the epoll front end (which frames lines
/// itself) and any serial caller.
pub(crate) fn dispatch(state: &ServerState, line: &str) -> Json {
    match parse_request(line) {
        Ok((req, id)) => attach_id(dispatch_parsed(state, &req), id),
        Err(Reply(reply)) => reply,
    }
}

/// Echoes the protocol version tag onto a reply when the request carried
/// one — success and error replies alike, like `"id"`.
fn attach_version(reply: Json, v: Option<u64>) -> Json {
    match (reply, v) {
        (Json::Obj(mut fields), Some(v)) => {
            fields.push(("v".to_string(), Json::Num(v as f64)));
            Json::Obj(fields)
        }
        (reply, _) => reply,
    }
}

fn dispatch_parsed(state: &ServerState, req: &Json) -> Json {
    // The version tag gates everything: a request from a protocol this
    // server does not speak must not be half-interpreted.
    let v = match proto::protocol_version(req) {
        Ok(v) => v,
        Err(e) => return Reply::from(e).0,
    };
    let parsed = match proto::Request::decode(req) {
        Ok(parsed) => parsed,
        Err(e) => return attach_version(Reply::from(e).0, v),
    };
    use proto::Request as R;
    let result = match &parsed {
        R::Ping => Ok(obj().field("ok", true).field("pong", true).build()),
        R::LoadGraph(r) => op_load_graph(state, r),
        R::UnloadGraph(name) => op_unload_graph(state, name),
        R::Prepare(r) => op_prepare(state, r),
        R::Query(r) => op_query(state, r),
        R::QueryBatch(r) => op_query_batch(state, r),
        R::QueryTopk(r) => op_query_topk(state, r),
        R::UpdateGraph(r) => op_update_graph(state, r),
        R::Explain(r) => op_explain(state, r),
        R::Stats => Ok(op_stats(state)),
        R::Metrics => Ok(obj()
            .field("ok", true)
            .field("metrics", statsjson::metrics_json(&state.metrics))
            .build()),
        R::ShardLoad(r) => op_shard_load(state, r),
        R::ShardRetrieve(r) => op_shard_retrieve(state, r),
        R::ShardRetrieveBatch(r) => op_shard_retrieve_batch(state, r),
        R::ShardUpdate(r) => op_shard_update(state, r),
        R::ShardUnload(name) => op_shard_unload(state, name),
        R::Shutdown => {
            request_shutdown(state);
            Ok(obj().field("ok", true).field("shutdown", true).build())
        }
    };
    let reply = match result {
        Ok(reply) => reply,
        Err(Reply(reply)) => reply,
    };
    attach_version(reply, v)
}

fn resolve_graph(state: &ServerState, name: Option<&str>) -> Result<Arc<GraphEntry>, Reply> {
    let graphs = state.graphs.lock().unwrap();
    match name {
        Some(name) => graphs
            .get(name)
            .cloned()
            .ok_or_else(|| error_reply("unknown_graph", format!("no graph named '{name}'"))),
        None if graphs.len() == 1 => Ok(graphs.values().next().unwrap().clone()),
        None if graphs.is_empty() => {
            Err(error_reply("unknown_graph", "no graph loaded; send load_graph first"))
        }
        None => Err(error_reply(
            "bad_request",
            format!("{} graphs loaded; specify \"graph\"", graphs.len()),
        )),
    }
}

/// Maps a pipeline error to its protocol code: a lost shard worker is
/// `shard_unavailable` (retryable, operational), everything else a
/// client-side `bad_request`.
fn peg_error_reply(e: PegError) -> Reply {
    match &e {
        PegError::ShardUnavailable { .. } => error_reply("shard_unavailable", e),
        _ => error_reply("bad_request", e),
    }
}

/// Builds a graph + offline index from a `load_graph` request (the same
/// generator specs `pegcli` exposes; the registry-free environment has no
/// external data files to point at). The build runs *inside* an admission
/// permit — it occupies the shared compute pool like a query session does
/// — with `size` capped at [`MAX_LOAD_SIZE`], `max_len` at
/// [`MAX_LOAD_PATH_LEN`], and `beta` floored at [`MIN_LOAD_BETA`], so a
/// public endpoint cannot be driven to OOM or pool monopolization by one
/// request's build parameters.
///
/// With `workers: [addr, ...]` the graph goes distributed: one shard per
/// worker (so `shards`, if given, must equal the worker count), loaded by
/// forwarding the generator spec to each worker and connected through a
/// persistent [`TcpTransport`]. `worker_timeout_ms` bounds every wire
/// exchange with the workers (default 30s — it must also cover the
/// worker-side shard build triggered by the handshake).
fn op_load_graph(state: &ServerState, r: &proto::LoadGraph) -> Result<Json, Reply> {
    let name = r.name.clone();
    let _permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let refs = r.spec.build_refs();
    let t0 = Instant::now();
    let peg = PegBuilder::new()
        .build(&refs)
        .map_err(|e| error_reply("internal", format!("model build failed: {e}")))?;
    let opts = OfflineOptions { index: r.index.clone() };
    let (nodes, edges) = (peg.graph.n_nodes(), peg.graph.n_edges());
    let mut reply = obj()
        .field("ok", true)
        .field("graph", name.as_str())
        .field("nodes", nodes)
        .field("edges", edges)
        .field("shards", r.shards);
    let store = if !r.workers.is_empty() {
        let config = TcpTransportConfig { io_timeout: r.worker_timeout, ..Default::default() };
        let transport = TcpTransport::connect(&name, &r.workers, config)
            .map_err(|e| peg_error_reply(e.into_peg()))?;
        let sharded = ShardedGraphStore::connect(peg, &opts, transport, |shard, n_shards| {
            r.spec.shard_load_json(&name, &opts.index, shard, n_shards)
        })
        .map_err(peg_error_reply)?;
        let s = sharded.stats();
        reply = reply
            .field("workers", Json::Arr(r.workers.iter().map(|a| Json::Str(a.clone())).collect()))
            .field("replicated_nodes", s.replicated_nodes)
            .field("replication_factor", s.replication_factor);
        GraphStore::Sharded(sharded)
    } else if r.shards > 1 {
        let sharded = ShardedGraphStore::build(peg, &opts, r.shards)
            .map_err(|e| error_reply("internal", format!("sharded build failed: {e}")))?;
        let s = sharded.stats();
        reply = reply
            .field("replicated_nodes", s.replicated_nodes)
            .field("replication_factor", s.replication_factor);
        GraphStore::Sharded(sharded)
    } else {
        let offline = OfflineIndex::build(&peg, &opts)
            .map_err(|e| error_reply("internal", format!("offline phase failed: {e}")))?;
        GraphStore::Unsharded { peg, offline }
    };
    // Protocol-loaded graphs are live: the reference network the build
    // started from rides along so `update_graph` can recompile it
    // incrementally.
    insert_store(state, &name, store, r.exec_cache, Some((refs, opts)));
    Ok(reply.field("build_us", t0.elapsed().as_micros() as u64).build())
}

/// Worker side of the distributed handshake: rebuilds one shard of the
/// spec's graph (same generator, same placement hash, same halo rule as
/// the coordinator would use in-process) and holds it for subsequent
/// `shard_retrieve` scatters. Spec and index knobs are bounded exactly
/// like `load_graph`'s — a worker is a public endpoint too.
fn op_shard_load(state: &ServerState, r: &proto::ShardLoad) -> Result<Json, Reply> {
    let _permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let refs = r.spec.build_refs();
    let t0 = Instant::now();
    let peg = PegBuilder::new()
        .build(&refs)
        .map_err(|e| error_reply("internal", format!("model build failed: {e}")))?;
    let opts = OfflineOptions { index: r.index.clone() };
    // The worker keeps the reference network: `shard_update` mutates it
    // and recompiles, so the coordinator never ships anything
    // graph-sized.
    let ws = WorkerShard::build(refs, peg, &opts, r.shard, r.n_shards)
        .map_err(|e| error_reply("internal", format!("shard build failed: {e}")))?;
    let info = ws.info();
    let hist = shard_wire::encode_histogram(&ws.histogram());
    let reply = obj()
        .field("ok", true)
        .field("graph", r.graph.as_str())
        .field("shard", r.shard)
        .field("n_shards", r.n_shards)
        .field("nodes", ws.full_nodes())
        .field("edges", ws.full_edges())
        .field("shard_nodes", info.nodes)
        .field("owned_nodes", info.owned_nodes)
        .field("shard_edges", info.edges)
        .field("index_entries", info.index_entries)
        .field("index_bytes", info.index_bytes)
        .field("hist", hist)
        .field("build_us", t0.elapsed().as_micros() as u64)
        .build();
    state.worker_shards.lock().unwrap().insert(r.graph.clone(), Arc::new(ws));
    Ok(reply)
}

/// Worker side of one scatter leg: decode the query + decomposition
/// paths, run the shared per-path retrieval unit over the worker's pool,
/// and encode the home-filtered partials back. Compute-occupying, so it
/// passes admission like a query session.
fn op_shard_retrieve(state: &ServerState, r: &proto::ShardRetrieve) -> Result<Json, Reply> {
    let ws = lookup_worker_shard(state, &r.graph)?;
    let _permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let pool = pegpool::pool_with(r.threads);
    let t0 = Instant::now();
    // A request carrying the coordinator's trace id gets its retrieval
    // timed under a worker-side "shard_retrieve" root span, shipped back
    // in the reply's "span" field; the coordinator's transport grafts it
    // into the live request tree for an end-to-end distributed trace.
    // Untraced requests (the common case, and every batch) skip even the
    // per-path clock reads.
    let tracer = match r.trace_id {
        Some(id) => Tracer::enabled(id),
        None => Tracer::disabled(),
    };
    let span = tracer.span("shard_retrieve");
    span.tag("shard", ws.shard_index());
    span.tag("alpha", r.alpha);
    span.tag("n_paths", r.paths.len());
    let reply = ws
        .retrieve_traced(&r.query, &r.paths, r.alpha, r.version, &span, &pool)
        .map_err(peg_error_reply)?;
    drop(span);
    state.metrics.histogram("serve.shard_retrieve_us").record(t0.elapsed());
    let encoded = shard_wire::encode_retrieve_reply(&reply);
    Ok(match tracer.take().pop() {
        Some(node) => match encoded {
            Json::Obj(mut fields) => {
                fields.push(("span".to_string(), shard_wire::encode_span(&node)));
                Json::Obj(fields)
            }
            other => other,
        },
        None => encoded,
    })
}

fn lookup_worker_shard(state: &ServerState, name: &str) -> Result<Arc<WorkerShard>, Reply> {
    state
        .worker_shards
        .lock()
        .unwrap()
        .get(name)
        .cloned()
        .ok_or_else(|| error_reply("unknown_graph", format!("no shard loaded for '{name}'")))
}

/// Worker side of a batched scatter: decode `queries`, run each through
/// the shared per-path retrieval unit, encode every reply into one line.
/// One admission permit covers the whole batch — it is one exchange on
/// the wire, and splitting permits across items would let a batch
/// deadlock against the admission queue it already holds a slot in.
fn op_shard_retrieve_batch(
    state: &ServerState,
    r: &proto::ShardRetrieveBatch,
) -> Result<Json, Reply> {
    let ws = lookup_worker_shard(state, &r.graph)?;
    let _permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let pool = pegpool::pool_with(r.threads);
    let mut replies = Vec::with_capacity(r.items.len());
    for (query, paths, alpha) in &r.items {
        replies.push(ws.retrieve(query, paths, *alpha, r.version, &pool).map_err(peg_error_reply)?);
    }
    Ok(shard_wire::encode_retrieve_batch_reply(&replies))
}

/// Worker side of a live-graph mutation: apply the batch to the held
/// reference network, recompile, and advance the shard to `version` —
/// rebuilding this shard's subgraph + index only when the mutation's
/// dirty set reaches its halo. The previous version is kept so scatters
/// pinned to it (a coordinator mid-query, or one that failed its update
/// broadcast partway) still answer; a resend of the already-latest
/// version is acknowledged idempotently (the transport may redial and
/// resend once). Compute-occupying, so it passes admission.
fn op_shard_update(state: &ServerState, r: &proto::ShardUpdate) -> Result<Json, Reply> {
    let ws = lookup_worker_shard(state, &r.graph)?;
    let _permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let t0 = Instant::now();
    let up = ws.apply_update(&r.ops, r.version).map_err(peg_error_reply)?;
    Ok(obj()
        .field("ok", true)
        .field("graph", r.graph.as_str())
        .field("version", up.version)
        .field("nodes", up.full_nodes)
        .field("edges", up.full_edges)
        .field("shard_nodes", up.info.nodes)
        .field("owned_nodes", up.info.owned_nodes)
        .field("shard_edges", up.info.edges)
        .field("index_entries", up.info.index_entries)
        .field("index_bytes", up.info.index_bytes)
        .field("rebuilt", up.rebuilt)
        .field("n_dirty", up.n_dirty)
        .field("hist", shard_wire::encode_histogram(&up.hist))
        .field("update_us", t0.elapsed().as_micros() as u64)
        .build())
}

/// Drops a worker's shard state for a graph (sent by the coordinator's
/// `unload_graph`).
fn op_shard_unload(state: &ServerState, name: &str) -> Result<Json, Reply> {
    match state.worker_shards.lock().unwrap().remove(name) {
        Some(ws) => Ok(obj()
            .field("ok", true)
            .field("unloaded", name)
            .field("shard", ws.shard_index())
            .build()),
        None => Err(error_reply("not_found", format!("no shard loaded for '{name}'"))),
    }
}

/// Drops a loaded graph so a long-lived server can reclaim its memory:
/// the store (graph + index or shards) and the graph's plan cache go with
/// the entry once in-flight requests holding it finish. For a distributed
/// graph, the workers are released too — each gets a best-effort
/// `shard_unload` so it frees its shard state, and the persistent
/// connections close. Unknown names get a structured `not_found` reply.
/// `graph` is required — implicit resolution would make "unload the only
/// graph" too easy to do by accident from a script.
fn op_unload_graph(state: &ServerState, name: &str) -> Result<Json, Reply> {
    // Take the entry out under the lock, release workers *after* dropping
    // it: releasing a distributed graph's workers is blocking network I/O
    // (up to the worker deadline per socket operation), and holding the
    // server-wide graphs mutex through that would stall every request on
    // every other graph.
    let removed = state.graphs.lock().unwrap().remove(name);
    match removed {
        Some(entry) => {
            if let GraphStore::Sharded(store) = &entry.store {
                store.release_workers();
            }
            // Drop the graph's cached retrievals now rather than letting
            // them age out: the epoch is never reissued, so the entries
            // are pure dead weight against the byte budget.
            if let Some(cache) = &state.exec_cache {
                cache.invalidate_epoch(entry.epoch);
            }
            Ok(obj()
                .field("ok", true)
                .field("unloaded", name)
                .field("shards", entry.store.n_shards())
                .build())
        }
        None => Err(error_reply("not_found", format!("no graph named '{name}'"))),
    }
}

/// The tentpole mutation handler: applies a batch of graph ops to a live
/// graph and swaps in an incrementally-recompiled successor entry.
///
/// Copy-on-write, not in-place: the resolved entry (and every store
/// snapshot an in-flight request holds) is never touched. The successor
/// gets the mutated store, a **fresh plan cache** (plans cost against
/// histograms the mutation changed), a **new execution-cache epoch**
/// (old-epoch retrievals become unreachable and are dropped eagerly),
/// and `version + 1`. Per-graph mutations serialize on a lock the
/// successor inherits; the swap itself re-checks that the registry still
/// holds exactly the entry the mutation was computed from, so racing an
/// `unload_graph`/`load_graph` aborts cleanly instead of resurrecting a
/// graph.
fn op_update_graph(state: &ServerState, r: &proto::UpdateGraph) -> Result<Json, Reply> {
    let resolved = resolve_graph(state, r.graph.as_deref())?;
    // Serialize with other mutations of this graph *by name*: the lock
    // Arc is carried across entry swaps, so holding it makes the
    // re-resolved entry below the newest — and the only — contender.
    let lock = Arc::clone(&resolved.update_lock);
    let _mutations = lock.lock().unwrap();
    let entry = resolve_graph(state, Some(resolved.name.as_str()))?;
    if !Arc::ptr_eq(&entry.update_lock, &lock) {
        // The graph was unloaded and reloaded while we waited: the held
        // lock no longer guards the current entry.
        return Err(error_reply(
            "bad_request",
            format!("graph '{}' was reloaded during the update; retry", entry.name),
        ));
    }
    let Some(refs) = entry.refs.as_ref() else {
        return Err(error_reply(
            "bad_request",
            format!(
                "graph '{}' is not live (registered without its reference network); \
                 reload it via load_graph or insert_live_graph",
                entry.name
            ),
        ));
    };
    // A mutation recompiles on the shared pool — compute like a session.
    let _permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let t0 = Instant::now();
    let builder = PegBuilder::new();
    let (store, new_refs, n_dirty, rebuilt_shards, reused_components) = match &entry.store {
        GraphStore::Unsharded { peg, offline } => {
            let up = pegmatch::live::apply_ops(&builder, &entry.opts, refs, peg, offline, &r.ops)
                .map_err(peg_error_reply)?;
            let (n_dirty, reused) = (up.n_dirty(), up.reused_components);
            let store = GraphStore::Unsharded { peg: up.peg, offline: up.index };
            (store, up.refs, n_dirty, 0, reused)
        }
        GraphStore::Sharded(sharded) => {
            let (next, new_refs, stats) =
                sharded.apply_update(refs, &builder, &r.ops).map_err(peg_error_reply)?;
            (
                GraphStore::Sharded(next),
                new_refs,
                stats.n_dirty,
                stats.rebuilt_shards,
                stats.reused_components,
            )
        }
    };
    let (nodes, edges) = (store.peg().graph.n_nodes(), store.peg().graph.n_edges());
    let shards = store.n_shards();
    let epoch = state.exec_cache.as_ref().map_or(entry.epoch + 1, |c| c.next_epoch());
    let next = Arc::new(GraphEntry {
        name: entry.name.clone(),
        store,
        plans: Arc::new(PlanCache::new()),
        epoch,
        exec_enabled: entry.exec_enabled,
        refs: Some(new_refs),
        opts: entry.opts.clone(),
        version: entry.version + 1,
        update_lock: Arc::clone(&entry.update_lock),
    });
    {
        let mut graphs = state.graphs.lock().unwrap();
        match graphs.get(&entry.name) {
            Some(current) if Arc::ptr_eq(current, &entry) => {
                graphs.insert(entry.name.clone(), Arc::clone(&next));
            }
            // Unloaded (or replaced) while the mutation computed: do not
            // resurrect it — the unload already won.
            _ => {
                return Err(error_reply(
                    "unknown_graph",
                    format!("graph '{}' was unloaded during the update", entry.name),
                ));
            }
        }
    }
    // Retire the pre-mutation epoch: no key can reach those retrievals
    // anymore (new entry, new epoch), so they are dead weight against
    // the cache budget. In-flight sessions on the old entry re-retrieve
    // on a miss — same math, same bits.
    if let Some(cache) = &state.exec_cache {
        cache.invalidate_epoch(entry.epoch);
    }
    Ok(obj()
        .field("ok", true)
        .field("graph", next.name.as_str())
        .field("version", next.version)
        .field("epoch", next.epoch)
        .field("nodes", nodes)
        .field("edges", edges)
        .field("shards", shards)
        .field("n_ops", r.ops.len())
        .field("n_dirty", n_dirty)
        .field("rebuilt_shards", rebuilt_shards)
        .field("reused_components", reused_components)
        .field("update_us", t0.elapsed().as_micros() as u64)
        .build())
}

fn parse_request_query(
    entry: &GraphEntry,
    pattern: &str,
) -> Result<pegmatch::query::QueryGraph, Reply> {
    let query = pegmatch::pattern::parse_pattern(pattern, entry.store.peg().graph.label_table())
        .map_err(|e| error_reply("bad_request", format!("bad pattern: {e}")))?;
    if query.n_nodes() > proto::MAX_PATTERN_NODES {
        return Err(error_reply(
            "bad_request",
            format!("pattern has {} nodes, limit is {}", query.n_nodes(), proto::MAX_PATTERN_NODES),
        ));
    }
    Ok(query)
}

/// Rejects `debug_sleep_ms` unless the server opted in; sleeps inside
/// the permit when it did (an operational drill knob, not query
/// semantics).
fn check_debug_sleep(state: &ServerState, requested: Option<u64>) -> Result<(), Reply> {
    if requested.is_some() && !state.allow_debug_sleep {
        return Err(error_reply(
            "bad_request",
            "debug_sleep_ms requires the server's allow_debug_sleep knob (pegcli serve --debug-sleep)",
        ));
    }
    Ok(())
}

fn op_prepare(state: &ServerState, r: &proto::Prepare) -> Result<Json, Reply> {
    let entry = resolve_graph(state, r.graph.as_deref())?;
    let query = parse_request_query(&entry, &r.pattern)?;
    // Planning is compute too (decomposition + cost estimation over the
    // index), so `prepare` takes an admission permit like the query ops.
    let _permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let pipe = graph_pipeline(state, &entry);
    let prepared =
        pipe.prepare(&query, r.alpha, &QueryOptions::default()).map_err(peg_error_reply)?;
    Ok(obj()
        .field("ok", true)
        .field("graph", entry.name.as_str())
        .field("n_paths", prepared.n_paths())
        .field("from_cache", prepared.from_cache())
        .field_opt("shape_hash", prepared.shape_hash().map(|h| format!("{h:016x}")))
        .field("plan_us", prepared.decompose_time().as_micros() as u64)
        .build())
}

/// Per-query bookkeeping shared by every query-shaped op: bumps the
/// served counter, records the op's latency histogram in the metrics
/// registry, and — when the server has a slow-query threshold and this
/// query crossed it — writes one structured JSON line to stderr, so an
/// operator can grep offenders out of a server log without any
/// proportional overhead on the fast path.
struct QueryNote<'a> {
    op: &'a str,
    graph: &'a str,
    pattern: &'a str,
    alpha: f64,
    n_matches: usize,
    /// Queries answered under this note (>1 for batches).
    count: u64,
}

fn note_query(state: &ServerState, note: QueryNote<'_>, elapsed: Duration) {
    state.queries_served.fetch_add(note.count, Ordering::Relaxed);
    state.metrics.counter("serve.queries").add(note.count);
    state.metrics.histogram(&format!("serve.{}_us", note.op)).record(elapsed);
    if let Some(threshold) = state.slow_query {
        if elapsed >= threshold {
            state.metrics.counter("serve.slow_queries").incr();
            let line = obj()
                .field("slow_query", true)
                .field("op", note.op)
                .field("graph", note.graph)
                .field("pattern", note.pattern)
                .field("alpha", note.alpha)
                .field("elapsed_us", elapsed.as_micros() as u64)
                .field("threshold_ms", threshold.as_millis() as u64)
                .field("n", note.n_matches)
                .build();
            eprintln!("{line}");
        }
    }
}

fn op_query(state: &ServerState, r: &proto::Query) -> Result<Json, Reply> {
    let entry = resolve_graph(state, r.graph.as_deref())?;
    let query = parse_request_query(&entry, &r.pattern)?;
    let opts = QueryOptions { threads: r.threads, ..Default::default() };
    check_debug_sleep(state, r.debug_sleep_ms)?;
    let permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    if let Some(ms) = r.debug_sleep_ms {
        std::thread::sleep(Duration::from_millis(ms.min(60_000)));
    }
    let pipe = graph_pipeline(state, &entry);
    let t0 = Instant::now();
    let prepared = pipe.prepare(&query, r.alpha, &opts).map_err(peg_error_reply)?;
    let mut session = pipe.session(&prepared, &opts);
    let result = session.run_at(r.alpha, Some(r.limit)).map_err(peg_error_reply)?;
    let elapsed = t0.elapsed();
    drop(permit);
    note_query(
        state,
        QueryNote {
            op: "query",
            graph: &entry.name,
            pattern: &r.pattern,
            alpha: r.alpha,
            n_matches: result.matches.len(),
            count: 1,
        },
        elapsed,
    );
    Ok(obj()
        .field("ok", true)
        .field("graph", entry.name.as_str())
        .field("n", result.matches.len())
        .field("truncated", result.truncated)
        .field("plan_from_cache", prepared.from_cache())
        .field("elapsed_us", elapsed.as_micros() as u64)
        .field("matches", matches_json(&result))
        .build())
}

fn op_query_topk(state: &ServerState, r: &proto::QueryTopk) -> Result<Json, Reply> {
    let entry = resolve_graph(state, r.graph.as_deref())?;
    let query = parse_request_query(&entry, &r.pattern)?;
    let opts = QueryOptions { threads: r.threads, ..Default::default() };
    check_debug_sleep(state, r.debug_sleep_ms)?;
    let permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    if let Some(ms) = r.debug_sleep_ms {
        std::thread::sleep(Duration::from_millis(ms.min(60_000)));
    }
    let pipe = graph_pipeline(state, &entry);
    let t0 = Instant::now();
    let result: QueryResult =
        pipe.run_topk(&query, r.k, r.min_alpha, &opts).map_err(peg_error_reply)?;
    let elapsed = t0.elapsed();
    drop(permit);
    note_query(
        state,
        QueryNote {
            op: "query_topk",
            graph: &entry.name,
            pattern: &r.pattern,
            alpha: r.min_alpha,
            n_matches: result.matches.len(),
            count: 1,
        },
        elapsed,
    );
    Ok(obj()
        .field("ok", true)
        .field("graph", entry.name.as_str())
        .field("n", result.matches.len())
        .field("truncated", result.truncated)
        .field("elapsed_us", elapsed.as_micros() as u64)
        .field("matches", matches_json(&result))
        .build())
}

/// `explain`: a threshold query that additionally reports *how* it ran —
/// plan summary, stage-by-stage pipeline statistics, scatter statistics
/// (sharded graphs), and the full request span tree, worker-side scatter
/// spans included when the graph is distributed.
///
/// The span tree is assembled here: the handler times `prepare`
/// server-side (sessions only see prepared plans) and grafts the
/// session's root-level stage spans — `retrieve` / `join` / `reduce` /
/// `generate`, emitted in chronological order — under one `"request"`
/// root whose elapsed time covers prepare + execution. Everything except
/// `elapsed_us` values and the `trace_id` is a deterministic function of
/// the request, which `tests/trace_determinism.rs` pins across thread
/// counts, shard counts, and both serve modes.
fn op_explain(state: &ServerState, r: &proto::Explain) -> Result<Json, Reply> {
    let entry = resolve_graph(state, r.graph.as_deref())?;
    let query = parse_request_query(&entry, &r.pattern)?;
    let opts = QueryOptions { threads: r.threads, ..Default::default() };
    let permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let trace_id = state.trace_ids.fetch_add(1, Ordering::Relaxed);
    let tracer = Tracer::enabled(trace_id);
    let pipe = graph_pipeline(state, &entry);
    let t0 = Instant::now();
    let prepared = pipe.prepare(&query, r.alpha, &opts).map_err(peg_error_reply)?;
    let prepare_elapsed = t0.elapsed();
    let mut session = pipe.session(&prepared, &opts);
    session.set_tracer(tracer.clone());
    let result = session.run_at(r.alpha, Some(r.limit)).map_err(peg_error_reply)?;
    let elapsed = t0.elapsed();
    drop(permit);
    note_query(
        state,
        QueryNote {
            op: "explain",
            graph: &entry.name,
            pattern: &r.pattern,
            alpha: r.alpha,
            n_matches: result.matches.len(),
            count: 1,
        },
        elapsed,
    );

    let mut root = SpanNode::new("request", elapsed)
        .with_tag("op", "explain")
        .with_tag("graph", entry.name.as_str())
        .with_tag("alpha", r.alpha)
        .with_tag("shards", entry.store.n_shards());
    root.children.push(
        SpanNode::new("prepare", prepare_elapsed)
            .with_tag("from_cache", prepared.from_cache())
            .with_tag("n_paths", prepared.n_paths()),
    );
    root.children.extend(tracer.take());

    let plan = obj()
        .field("n_paths", prepared.n_paths())
        .field("from_cache", prepared.from_cache())
        .field_opt("shape_hash", prepared.shape_hash().map(|h| format!("{h:016x}")))
        .field("plan_us", prepared.decompose_time().as_micros() as u64)
        .build();
    let scatter: Option<Json> = match &entry.store {
        GraphStore::Sharded(store) => Some(statsjson::scatter_json(&store.last_scatter())),
        GraphStore::Unsharded { .. } => None,
    };
    Ok(obj()
        .field("ok", true)
        .field("graph", entry.name.as_str())
        .field("trace_id", trace_id)
        .field("n", result.matches.len())
        .field("truncated", result.truncated)
        .field("elapsed_us", elapsed.as_micros() as u64)
        .field("plan", plan)
        .field("pipeline", statsjson::pipeline_json(&result.stats))
        .field_opt("scatter", scatter)
        .field("span", shard_wire::encode_span(&root))
        .field("matches", matches_json(&result))
        .build())
}

/// Encodes a result's match list: `{"nodes":[...],"prle":..,"prn":..,
/// "prob":..}` per match, f64s bit-exact on the JSON round trip.
fn matches_json(result: &QueryResult) -> Json {
    Json::Arr(
        result
            .matches
            .iter()
            .map(|m| {
                obj()
                    .field(
                        "nodes",
                        Json::Arr(m.nodes.iter().map(|e| Json::Num(e.0 as f64)).collect()),
                    )
                    .field("prle", m.prle)
                    .field("prn", m.prn)
                    .field("prob", m.prob())
                    .build()
            })
            .collect(),
    )
}

/// Rewraps a per-item validation error with the item's index, keeping
/// the structured code.
fn item_reply(Reply(r): Reply, i: usize) -> Reply {
    let code = r.get("error").and_then(Json::as_str).unwrap_or("bad_request").to_string();
    let msg = r.get("message").and_then(Json::as_str).unwrap_or("invalid").to_string();
    error_reply(&code, format!("queries[{i}]: {msg}"))
}

/// `query_batch`: many threshold queries in one line and one reply,
/// amortizing the per-exchange wire tax the transport ablation measured.
/// Every item is validated *before* the single admission permit is
/// taken; execution shares the graph's plan cache and the per-request
/// session flow, so each per-item result is bit-identical to the same
/// `query` sent alone. On a distributed graph, every item's candidate
/// scatter is prefetched in one `shard_retrieve_batch` round trip per
/// worker before the sessions run (best-effort: a missed prefetch just
/// falls back to a live scatter). Failure is whole-batch: results are
/// not useful if their siblings silently vanished.
fn op_query_batch(state: &ServerState, r: &proto::QueryBatch) -> Result<Json, Reply> {
    let entry = resolve_graph(state, r.graph.as_deref())?;
    let opts = QueryOptions { threads: r.threads, ..Default::default() };
    // Pattern parsing needs the graph's label table, so it happens here
    // rather than in the protocol layer — still before the permit.
    let mut parsed = Vec::with_capacity(r.items.len());
    for (i, item) in r.items.iter().enumerate() {
        let query = parse_request_query(&entry, &item.pattern).map_err(|e| item_reply(e, i))?;
        parsed.push((query, item.alpha, item.limit));
    }
    let permit = state.admission.admit().map_err(|e| error_reply(e.code(), e))?;
    let pipe = graph_pipeline(state, &entry);
    let t0 = Instant::now();
    let mut prepared = Vec::with_capacity(parsed.len());
    for (query, alpha, _) in &parsed {
        prepared.push(pipe.prepare(query, *alpha, &opts).map_err(peg_error_reply)?);
    }
    if let GraphStore::Sharded(store) = &entry.store {
        // With the execution cache attached, sessions that miss retrieve
        // at the *floor* threshold (so the cached lists serve the whole
        // quantization bucket) — the prefetch must scatter at the same
        // floored alpha or its entries would never be consumed.
        let exec_on = entry.exec_enabled && state.exec_cache.is_some();
        let beta = CandidateSource::beta(store);
        let batch: Vec<(&pegmatch::online::PreparedQuery, f64)> = prepared
            .iter()
            .zip(&parsed)
            .map(|(p, (_, alpha, _))| (p, if exec_on { floor_alpha(*alpha, beta) } else { *alpha }))
            .collect();
        let pool = pegpool::pool_with(r.threads);
        store.prefetch(&batch, &pool);
    }
    let mut results = Vec::with_capacity(parsed.len());
    let mut total_matches = 0usize;
    for (p, (_, alpha, limit)) in prepared.iter().zip(&parsed) {
        let t_item = Instant::now();
        let mut session = pipe.session(p, &opts);
        let res = session.run_at(*alpha, Some(*limit)).map_err(peg_error_reply)?;
        total_matches += res.matches.len();
        results.push(
            obj()
                .field("n", res.matches.len())
                .field("truncated", res.truncated)
                .field("plan_from_cache", p.from_cache())
                .field("elapsed_us", t_item.elapsed().as_micros() as u64)
                .field("matches", matches_json(&res))
                .build(),
        );
    }
    let elapsed = t0.elapsed();
    drop(permit);
    note_query(
        state,
        QueryNote {
            op: "query_batch",
            graph: &entry.name,
            pattern: &format!("[{} queries]", parsed.len()),
            alpha: 0.0,
            n_matches: total_matches,
            count: parsed.len() as u64,
        },
        elapsed,
    );
    Ok(obj()
        .field("ok", true)
        .field("graph", entry.name.as_str())
        .field("n", results.len())
        .field("elapsed_us", elapsed.as_micros() as u64)
        .field("results", Json::Arr(results))
        .build())
}

fn op_stats(state: &ServerState) -> Json {
    // Clone the entry Arcs out and drop the map lock before touching any
    // store: the graphs mutex is the server-wide hot lock and must never
    // be held across per-graph work.
    let mut entries: Vec<Arc<GraphEntry>> = {
        let graphs = state.graphs.lock().unwrap();
        graphs.values().cloned().collect()
    };
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    let graph_stats: Vec<Json> = entries
        .iter()
        .map(|g| {
            let p = g.plans.stats();
            // Distributed graphs report their per-worker transport
            // counters — rendered by the one shared schema helper, the
            // same one pegcli's pretty printer reads.
            let workers: Option<Json> = match &g.store {
                GraphStore::Sharded(store) => {
                    store.worker_stats().map(|ws| statsjson::workers_json(&ws))
                }
                GraphStore::Unsharded { .. } => None,
            };
            // Per-graph execution-cache residency: how much of the
            // server-wide budget this graph's epoch currently holds.
            let exec: Option<Json> =
                state.exec_cache.as_ref().filter(|_| g.exec_enabled).map(|cache| {
                    let (entries, bytes) = cache.epoch_stats(g.epoch);
                    obj()
                        .field("epoch", g.epoch)
                        .field("entries", entries)
                        .field("bytes", bytes)
                        .build()
                });
            obj()
                .field("name", g.name.as_str())
                .field("nodes", g.store.peg().graph.n_nodes())
                .field("edges", g.store.peg().graph.n_edges())
                .field("shards", g.store.n_shards())
                .field("live", g.is_live())
                .field("version", g.version)
                .field_opt("workers", workers)
                .field(
                    "plan_cache",
                    obj()
                        .field("hits", p.hits)
                        .field("misses", p.misses)
                        .field("entries", p.entries)
                        .field("evictions", p.evictions)
                        .field("hit_rate", p.hit_rate())
                        .field("saved_us", p.saved.as_micros() as u64)
                        .build(),
                )
                .field_opt("exec_cache", exec)
                .build()
        })
        .collect();
    let exec_cache: Option<Json> = state.exec_cache.as_ref().map(|cache| {
        let s = cache.stats();
        obj()
            .field("hits", s.hits)
            .field("misses", s.misses)
            .field("evictions", s.evictions)
            .field("hit_rate", s.hit_rate())
            .field("entries", s.entries)
            .field("bytes", s.bytes)
            .field("budget", s.budget)
            .build()
    });
    obj()
        .field("ok", true)
        .field("queries_served", state.queries_served.load(Ordering::Relaxed))
        .field("graphs", Json::Arr(graph_stats))
        .field_opt("exec_cache", exec_cache)
        .field("admission", statsjson::admission_json(&state.admission, state.admission.stats()))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use pathindex::PathIndexConfig;

    fn tiny_server(config: ServerConfig) -> (ServerHandle, Client) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let refs = datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper_with_uncertainty(
            200, 0.2,
        ));
        let peg = PegBuilder::new().build(&refs).unwrap();
        let opts = OfflineOptions {
            index: PathIndexConfig { max_len: 2, beta: 0.3, ..Default::default() },
        };
        let offline = OfflineIndex::build(&peg, &opts).unwrap();
        server.insert_live_graph("tiny", refs, peg, offline, opts);
        let handle = server.spawn();
        let client = Client::connect(handle.addr).unwrap();
        (handle, client)
    }

    #[test]
    fn ping_query_and_stats_round_trip() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        let pong = client.request(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));

        let reply = client
            .request(
                &Json::parse(r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3}"#).unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        let n = reply.get("n").unwrap().as_usize().unwrap();
        assert_eq!(reply.get("matches").unwrap().as_arr().unwrap().len(), n);
        assert_eq!(reply.get("plan_from_cache"), Some(&Json::Bool(false)));

        // The isomorphic renumbering hits the shared plan cache.
        let reply = client
            .request(
                &Json::parse(r#"{"op":"query","pattern":"(a:l1)-(b:l0)","alpha":0.3}"#).unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("plan_from_cache"), Some(&Json::Bool(true)), "{reply}");

        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        assert_eq!(stats.get("queries_served").unwrap().as_u64(), Some(2));
        let graphs = stats.get("graphs").unwrap().as_arr().unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].get("plan_cache").unwrap().get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("admission").unwrap().get("admitted").unwrap().as_u64(), Some(2));

        let bye = client.request(&Json::parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
        handle.shutdown().unwrap();
    }

    #[test]
    fn protocol_errors_are_structured() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        let bad = client.request_line("this is not json").unwrap();
        assert!(bad.contains("\"error\":\"bad_request\""), "{bad}");
        let reply = client.request(&Json::parse(r#"{"op":"warp"}"#).unwrap()).unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"));
        let reply = client
            .request(&Json::parse(r#"{"op":"query","graph":"nope","pattern":"(x:l0)"}"#).unwrap())
            .unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("unknown_graph"));
        let reply = client
            .request(&Json::parse(r#"{"op":"query","pattern":"(x:nosuch)"}"#).unwrap())
            .unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"));
        handle.shutdown().unwrap();
    }

    #[test]
    fn oversized_threads_and_load_size_are_bounded() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        // A huge "threads" is clamped to the machine's parallelism, not
        // turned into a million-thread pool.
        let reply = client
            .request(
                &Json::parse(
                    r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3,"threads":1000000}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        // load_graph over the ceilings is rejected before any build work:
        // size, path length, and pruning threshold are each bounded.
        for bad in [
            r#"{"op":"load_graph","kind":"synthetic","size":999999999}"#,
            r#"{"op":"load_graph","kind":"synthetic","size":100,"max_len":12}"#,
            r#"{"op":"load_graph","kind":"synthetic","size":100,"beta":0}"#,
        ] {
            let reply = client.request(&Json::parse(bad).unwrap()).unwrap();
            assert_eq!(
                reply.get("error").and_then(Json::as_str),
                Some("bad_request"),
                "{bad}: {reply}"
            );
        }
        // Replies are capped: a permissive threshold query cannot
        // materialize more than MAX_RESULT_MATCHES matches, and an
        // explicit limit above the cap is clamped the same way.
        let reply = client
            .request(
                &Json::parse(
                    r#"{"op":"query","pattern":"(x:l0)","alpha":0.0001,"limit":99999999}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert!(reply.get("n").unwrap().as_usize().unwrap() <= MAX_RESULT_MATCHES, "{reply}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn slow_partial_request_lines_survive_the_read_timeout() {
        use std::io::{BufRead, BufReader, Write};
        let (handle, _client) = tiny_server(ServerConfig::default());
        // Write a request in two fragments with a gap longer than the
        // server's 250ms poll timeout; the partial first fragment must be
        // kept, not discarded.
        let mut stream = std::net::TcpStream::connect(handle.addr).unwrap();
        stream.write_all(br#"{"op":"query","pattern":"#).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(600));
        stream.write_all(b"\"(x:l0)-(y:l1)\",\"alpha\":0.3}\n").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).unwrap();
        let reply = Json::parse(reply.trim()).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn connection_limit_rejects_with_structured_reply() {
        let (handle, mut first) =
            tiny_server(ServerConfig { max_connections: 1, ..ServerConfig::default() });
        // The first connection owns the only handler slot.
        let pong = first.request(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        // A second connection is told it's over the limit and closed.
        let mut second = Client::connect(handle.addr).unwrap();
        let reply = second.request_line(r#"{"op":"ping"}"#);
        // The server may instead close the socket before our write lands
        // (an Err) — either way no handler was granted, which is the bound.
        if let Ok(line) = reply {
            assert!(line.contains("\"error\":\"overloaded\""), "{line}");
        }
        // The first connection keeps working.
        let pong = first.request(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        handle.shutdown().unwrap();
    }

    #[test]
    fn sharded_load_graph_round_trip() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        let reply = client
            .request(
                &Json::parse(
                    r#"{"op":"load_graph","name":"sh","kind":"synthetic","size":200,"max_len":2,"shards":3}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("shards").and_then(Json::as_usize), Some(3));
        assert!(reply.get("replication_factor").unwrap().as_f64().unwrap() >= 1.0);
        // Queries flow through the same plan-cache/session path.
        let reply = client
            .request(
                &Json::parse(
                    r#"{"op":"query","graph":"sh","pattern":"(x:l0)-(y:l1)","alpha":0.3}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        let reply = client
            .request(
                &Json::parse(
                    r#"{"op":"query","graph":"sh","pattern":"(a:l1)-(b:l0)","alpha":0.3}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("plan_from_cache"), Some(&Json::Bool(true)), "{reply}");
        // Stats report the shard count.
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let graphs = stats.get("graphs").unwrap().as_arr().unwrap();
        let sh = graphs
            .iter()
            .find(|g| g.get("name").and_then(Json::as_str) == Some("sh"))
            .expect("sharded graph listed");
        assert_eq!(sh.get("shards").and_then(Json::as_usize), Some(3));
        // An over-the-cap shard count is rejected before any build.
        let reply = client
            .request(
                &Json::parse(r#"{"op":"load_graph","kind":"synthetic","size":100,"shards":99}"#)
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"));
        handle.shutdown().unwrap();
    }

    #[test]
    fn unload_graph_drops_entry_and_reports_not_found() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        let reply = client
            .request(
                &Json::parse(r#"{"op":"load_graph","name":"scratch","kind":"synthetic","size":120,"max_len":1}"#)
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        let reply = client
            .request(&Json::parse(r#"{"op":"unload_graph","graph":"scratch"}"#).unwrap())
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("unloaded").and_then(Json::as_str), Some("scratch"));
        // The graph is gone for queries...
        let reply = client
            .request(
                &Json::parse(r#"{"op":"query","graph":"scratch","pattern":"(x:l0)"}"#).unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("unknown_graph"));
        // ...and a second unload (or any unknown name) is a structured
        // not_found, distinguishable from transport failure in scripts.
        let reply = client
            .request(&Json::parse(r#"{"op":"unload_graph","graph":"scratch"}"#).unwrap())
            .unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("not_found"), "{reply}");
        // The op requires an explicit name.
        let reply = client.request(&Json::parse(r#"{"op":"unload_graph"}"#).unwrap()).unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"));
        // The preloaded graph is untouched.
        let reply = client
            .request(&Json::parse(r#"{"op":"query","graph":"tiny","pattern":"(x:l0)"}"#).unwrap())
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn worker_ops_round_trip_and_validate() {
        // Any server can act as a shard worker: shard_load builds one
        // shard from the spec, shard_retrieve answers scatters,
        // shard_unload frees it.
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let handle = server.spawn();
        let mut client = Client::connect(handle.addr).unwrap();
        let reply = client
            .request(
                &Json::parse(
                    r#"{"op":"shard_load","graph":"w","kind":"synthetic","size":200,"max_len":2,"beta":0.3,"shard":1,"n_shards":2}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("shard").and_then(Json::as_usize), Some(1));
        assert!(reply.get("nodes").unwrap().as_usize().unwrap() > 0);
        assert!(
            reply.get("owned_nodes").unwrap().as_usize().unwrap()
                <= reply.get("shard_nodes").unwrap().as_usize().unwrap()
        );
        assert!(reply.get("hist").unwrap().as_arr().is_some(), "{reply}");

        let reply = client
            .request(
                &Json::parse(
                    r#"{"op":"shard_retrieve","graph":"w","alpha":0.3,"labels":[0,1],"edges":[[0,1]],"paths":[[0,1]]}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        let paths = reply.get("paths").unwrap().as_arr().unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].get("raw_total").unwrap().as_usize().is_some());

        // Malformed scatter requests are structured bad_request replies.
        for bad in [
            r#"{"op":"shard_retrieve","graph":"w","alpha":2.0,"labels":[0],"edges":[],"paths":[[0]]}"#,
            r#"{"op":"shard_retrieve","graph":"w","alpha":0.5,"labels":[0],"edges":[],"paths":[[9]]}"#,
            r#"{"op":"shard_retrieve","graph":"nope","alpha":0.5,"labels":[0],"edges":[],"paths":[[0]]}"#,
            r#"{"op":"shard_load","kind":"synthetic","size":100,"shard":5,"n_shards":2}"#,
        ] {
            let reply = client.request(&Json::parse(bad).unwrap()).unwrap();
            assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{bad}: {reply}");
        }

        let reply =
            client.request(&Json::parse(r#"{"op":"shard_unload","graph":"w"}"#).unwrap()).unwrap();
        assert_eq!(reply.get("unloaded").and_then(Json::as_str), Some("w"), "{reply}");
        let reply =
            client.request(&Json::parse(r#"{"op":"shard_unload","graph":"w"}"#).unwrap()).unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("not_found"), "{reply}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn load_graph_over_the_wire() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let handle = server.spawn();
        let mut client = Client::connect(handle.addr).unwrap();
        // No graph yet.
        let reply =
            client.request(&Json::parse(r#"{"op":"query","pattern":"(x:l0)"}"#).unwrap()).unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("unknown_graph"));
        let reply = client
            .request(
                &Json::parse(r#"{"op":"load_graph","kind":"synthetic","size":150,"max_len":1}"#)
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert!(reply.get("nodes").unwrap().as_u64().unwrap() > 0);
        let reply = client
            .request(
                &Json::parse(r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.4}"#).unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn request_ids_echo_on_success_and_error() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        // Success replies echo the id verbatim.
        let reply = client
            .request(
                &Json::parse(r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3,"id":7}"#)
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(7), "{reply}");
        // Error replies echo it too — a multiplexing client must be able
        // to route failures to the caller that owns them.
        let reply = client.request(&Json::parse(r#"{"op":"warp","id":8}"#).unwrap()).unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"), "{reply}");
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(8), "{reply}");
        // A non-integer id cannot be trusted as routing state: structured
        // rejection *without* an echo.
        for bad in
            [r#"{"op":"ping","id":1.5}"#, r#"{"op":"ping","id":-3}"#, r#"{"op":"ping","id":"x"}"#]
        {
            let reply = client.request(&Json::parse(bad).unwrap()).unwrap();
            assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"), "{reply}");
            assert!(reply.get("id").is_none(), "{bad}: {reply}");
        }
        // A request without an id gets a reply without one.
        let reply = client.request(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert!(reply.get("id").is_none(), "{reply}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn id_requests_overlap_out_of_order_within_a_connection() {
        let (handle, client) =
            tiny_server(ServerConfig { allow_debug_sleep: true, ..Default::default() });
        drop(client);
        // Raw socket: pipeline a slow id'd query and a fast id'd ping in
        // one write. The fast reply overtakes the slow one — id'd
        // requests run concurrently within a connection.
        let mut stream = TcpStream::connect(handle.addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .write_all(
                concat!(
                    r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3,"debug_sleep_ms":400,"id":1}"#,
                    "\n",
                    r#"{"op":"ping","id":2}"#,
                    "\n",
                )
                .as_bytes(),
            )
            .unwrap();
        stream.flush().unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut read_id = || {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Json::parse(line.trim()).unwrap().get("id").and_then(Json::as_u64).unwrap()
        };
        assert_eq!(read_id(), 2, "the fast id'd request must not queue behind the slow one");
        assert_eq!(read_id(), 1);
        // Un-id'd requests afterwards still run strictly FIFO.
        stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim()).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert!(reply.get("id").is_none(), "{reply}");
        drop(reader);
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn query_batch_matches_individual_queries_bit_exactly() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        let patterns = ["(x:l0)-(y:l1)", "(a:l1)-(b:l0)", "(x:l0)-(y:l1)-(z:l0)"];
        let individual: Vec<Json> = patterns
            .iter()
            .map(|p| {
                let reply = client
                    .request(
                        &obj()
                            .field("op", "query")
                            .field("pattern", *p)
                            .field("alpha", 0.3)
                            .build(),
                    )
                    .unwrap();
                assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
                reply.get("matches").unwrap().clone()
            })
            .collect();
        let items: Vec<Json> = patterns
            .iter()
            .map(|p| obj().field("pattern", *p).field("alpha", 0.3).build())
            .collect();
        let reply = client
            .request(&obj().field("op", "query_batch").field("queries", Json::Arr(items)).build())
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("n").and_then(Json::as_usize), Some(patterns.len()), "{reply}");
        let results = reply.get("results").unwrap().as_arr().unwrap();
        for (i, want) in individual.iter().enumerate() {
            assert_eq!(
                results[i].get("matches"),
                Some(want),
                "batch item {i} must match the lone query bit for bit"
            );
        }
        // Admission charges the batch once but the query counter sees
        // every item.
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        assert_eq!(stats.get("queries_served").unwrap().as_u64(), Some(6), "{stats}");
        assert_eq!(
            stats.get("admission").unwrap().get("admitted").unwrap().as_u64(),
            Some(4),
            "{stats}"
        );

        // A bad item fails the whole batch, naming the offender.
        let items = vec![
            obj().field("pattern", "(x:l0)").build(),
            obj().field("pattern", "(x:nosuch)").build(),
        ];
        let reply = client
            .request(&obj().field("op", "query_batch").field("queries", Json::Arr(items)).build())
            .unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"), "{reply}");
        assert!(
            reply.get("message").and_then(Json::as_str).unwrap().contains("queries[1]"),
            "{reply}"
        );
        // Size bounds: empty and past MAX_QUERY_BATCH are both refused.
        for n in [0usize, MAX_QUERY_BATCH + 1] {
            let items: Vec<Json> =
                (0..n).map(|_| obj().field("pattern", "(x:l0)").build()).collect();
            let reply = client
                .request(
                    &obj().field("op", "query_batch").field("queries", Json::Arr(items)).build(),
                )
                .unwrap();
            assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"), "{reply}");
        }
        handle.shutdown().unwrap();
    }

    #[test]
    fn exec_cache_reuses_repeated_shapes_bit_identically() {
        let (h_on, mut on) = tiny_server(ServerConfig::default());
        let (h_off, mut off) =
            tiny_server(ServerConfig { exec_cache_bytes: 0, ..Default::default() });
        // Warm hits must reproduce the uncached server's replies bit for
        // bit (matches carry f64s; the in-tree JSON round trip is
        // bit-exact). Alphas 0.3 and 0.35 share a quantization bucket
        // (both floor to the same key), so the second shape+alpha pair
        // exercises the floor-threshold re-prune path, not just an exact
        // repeat.
        for q in [
            r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3}"#,
            r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3}"#,
            r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.35}"#,
            r#"{"op":"query_topk","pattern":"(x:l0)-(y:l1)","k":5}"#,
        ] {
            let want = off.request(&Json::parse(q).unwrap()).unwrap();
            let got = on.request(&Json::parse(q).unwrap()).unwrap();
            assert_eq!(got.get("ok"), Some(&Json::Bool(true)), "{got}");
            assert_eq!(got.get("matches"), want.get("matches"), "{q}");
        }
        let stats = on.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let ec = stats.get("exec_cache").expect("cache-on server reports exec_cache");
        assert!(ec.get("hits").unwrap().as_u64().unwrap() >= 2, "{stats}");
        assert!(ec.get("entries").unwrap().as_u64().unwrap() >= 1, "{stats}");
        let graphs = stats.get("graphs").unwrap().as_arr().unwrap();
        let tiny = &graphs[0];
        assert!(
            tiny.get("exec_cache").unwrap().get("bytes").unwrap().as_u64().unwrap() > 0,
            "{stats}"
        );
        // The cache-off server reports no exec_cache block at all.
        let stats = off.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        assert!(stats.get("exec_cache").is_none(), "{stats}");
        h_on.shutdown().unwrap();
        h_off.shutdown().unwrap();
    }

    #[test]
    fn exec_cache_epoch_invalidates_on_unload_and_honors_the_load_knob() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        // A graph loaded with "exec_cache": false never populates the
        // cache and reports no per-graph exec_cache stats.
        let reply = client
            .request(
                &Json::parse(
                    r#"{"op":"load_graph","name":"optout","kind":"synthetic","size":120,"max_len":1,"exec_cache":false}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        let q = r#"{"op":"query","graph":"optout","pattern":"(x:l0)-(y:l1)","alpha":0.3}"#;
        client.request(&Json::parse(q).unwrap()).unwrap();
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let graphs = stats.get("graphs").unwrap().as_arr().unwrap();
        let optout =
            graphs.iter().find(|g| g.get("name").and_then(Json::as_str) == Some("optout")).unwrap();
        assert!(optout.get("exec_cache").is_none(), "{stats}");
        assert_eq!(
            stats.get("exec_cache").unwrap().get("entries").unwrap().as_u64(),
            Some(0),
            "{stats}"
        );
        // Unloading a cached graph drops its epoch's entries entirely.
        let q = r#"{"op":"query","graph":"tiny","pattern":"(x:l0)-(y:l1)","alpha":0.3}"#;
        client.request(&Json::parse(q).unwrap()).unwrap();
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        assert!(
            stats.get("exec_cache").unwrap().get("entries").unwrap().as_u64().unwrap() > 0,
            "{stats}"
        );
        client.request(&Json::parse(r#"{"op":"unload_graph","graph":"tiny"}"#).unwrap()).unwrap();
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        assert_eq!(
            stats.get("exec_cache").unwrap().get("entries").unwrap().as_u64(),
            Some(0),
            "{stats}"
        );
        handle.shutdown().unwrap();
    }

    fn mutation_ops() -> Vec<graphstore::GraphOp> {
        use graphstore::{GraphOp, RefId};
        vec![
            GraphOp::UpsertRef { r: None, labels: vec![(0, 0.9), (1, 0.1)] },
            GraphOp::UpsertEdge { a: RefId(3), b: RefId(11), p: 0.8 },
            GraphOp::SetSingletonWeight { r: RefId(7), weight: 0.5 },
            GraphOp::DeleteRef { r: RefId(9) },
            GraphOp::PairPosterior { a: RefId(12), b: RefId(13), q: 0.6 },
        ]
    }

    fn update_request(ops: &[graphstore::GraphOp]) -> Json {
        obj().field("op", "update_graph").field("ops", shard_wire::encode_ops(ops)).build()
    }

    /// Queries the named graph and returns the reply's serialized
    /// `matches` array — pegwire's shortest-round-trip f64 encoding makes
    /// string equality bit equality on every probability.
    fn matches_text(client: &mut Client, graph: &str, pattern: &str, alpha: f64) -> String {
        let req = obj()
            .field("op", "query")
            .field("graph", graph)
            .field("pattern", pattern)
            .field("alpha", alpha)
            .build();
        let reply = client.request(&req).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        reply.get("matches").unwrap().to_string()
    }

    #[test]
    fn protocol_version_echoes_on_success_and_error() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        // Tagged requests get the tag echoed, success and error alike.
        let reply = client.request(&Json::parse(r#"{"op":"ping","v":1}"#).unwrap()).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("v").and_then(Json::as_u64), Some(1), "{reply}");
        let reply = client.request(&Json::parse(r#"{"op":"warp","v":1}"#).unwrap()).unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"), "{reply}");
        assert_eq!(reply.get("v").and_then(Json::as_u64), Some(1), "{reply}");
        // Untagged requests get untagged replies (wire compatibility).
        let reply = client.request(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert!(reply.get("v").is_none(), "{reply}");
        // An unknown version is a structured rejection without an echo —
        // the tag was never validated, so it cannot be trusted as state.
        let reply = client.request(&Json::parse(r#"{"op":"ping","v":9}"#).unwrap()).unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"), "{reply}");
        assert!(reply.get("v").is_none(), "{reply}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn update_graph_matches_fresh_rebuild_bitwise() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        let ops = mutation_ops();
        let reply = client.request(&update_request(&ops)).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("version").and_then(Json::as_u64), Some(1), "{reply}");
        assert!(reply.get("n_dirty").unwrap().as_usize().unwrap() > 0, "{reply}");

        // A second server built from scratch over the locally-mutated
        // network must answer bit-identically.
        let mut refs = datagen::synthetic_refgraph(
            &datagen::SyntheticConfig::paper_with_uncertainty(200, 0.2),
        );
        refs.apply_all(&ops).unwrap();
        let peg = PegBuilder::new().build(&refs).unwrap();
        assert_eq!(reply.get("nodes").and_then(Json::as_usize), Some(peg.graph.n_nodes()));
        assert_eq!(reply.get("edges").and_then(Json::as_usize), Some(peg.graph.n_edges()));
        let opts = OfflineOptions {
            index: pathindex::PathIndexConfig { max_len: 2, beta: 0.3, ..Default::default() },
        };
        let offline = OfflineIndex::build(&peg, &opts).unwrap();
        let fresh = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        fresh.insert_live_graph("tiny", refs, peg, offline, opts);
        let fresh_handle = fresh.spawn();
        let mut fresh_client = Client::connect(fresh_handle.addr).unwrap();
        for pattern in ["(x:l0)-(y:l1)", "(a:l1)-(b:l0)-(c:l2)"] {
            for alpha in [0.1, 0.3] {
                assert_eq!(
                    matches_text(&mut client, "tiny", pattern, alpha),
                    matches_text(&mut fresh_client, "tiny", pattern, alpha),
                    "{pattern} at {alpha}"
                );
            }
        }
        // Stats report the graph live at version 1.
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let g = &stats.get("graphs").unwrap().as_arr().unwrap()[0];
        assert_eq!(g.get("live"), Some(&Json::Bool(true)), "{stats}");
        assert_eq!(g.get("version").and_then(Json::as_u64), Some(1), "{stats}");
        fresh_handle.shutdown().unwrap();
        handle.shutdown().unwrap();
    }

    #[test]
    fn update_graph_rolls_the_exec_cache_epoch() {
        let (handle, mut client) = tiny_server(ServerConfig::default());
        let pattern = "(x:l0)-(y:l1)";
        // Warm the execution cache on the pre-mutation epoch.
        matches_text(&mut client, "tiny", pattern, 0.3);
        matches_text(&mut client, "tiny", pattern, 0.3);
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let cache = stats.get("exec_cache").unwrap();
        let hits_before = cache.get("hits").unwrap().as_u64().unwrap();
        let misses_before = cache.get("misses").unwrap().as_u64().unwrap();
        assert!(hits_before > 0, "{stats}");
        let epoch_before = stats.get("graphs").unwrap().as_arr().unwrap()[0]
            .get("exec_cache")
            .unwrap()
            .get("epoch")
            .unwrap()
            .as_u64()
            .unwrap();

        let reply = client.request(&update_request(&mutation_ops())).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        let epoch_after = reply.get("epoch").unwrap().as_u64().unwrap();
        assert_ne!(epoch_after, epoch_before, "{reply}");

        // The old epoch's entries were retired with it: the first
        // post-mutation query MUST miss (a pre-mutation candidate list is
        // unreachable under the new epoch), then warm normally.
        let cold = matches_text(&mut client, "tiny", pattern, 0.3);
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let cache = stats.get("exec_cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64().unwrap(), hits_before, "{stats}");
        assert!(cache.get("misses").unwrap().as_u64().unwrap() > misses_before, "{stats}");
        let g = &stats.get("graphs").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            g.get("exec_cache").unwrap().get("epoch").unwrap().as_u64(),
            Some(epoch_after),
            "{stats}"
        );
        let warm = matches_text(&mut client, "tiny", pattern, 0.3);
        assert_eq!(warm, cold, "cache-served results must be bit-identical");
        let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        assert!(
            stats.get("exec_cache").unwrap().get("hits").unwrap().as_u64().unwrap() > hits_before,
            "{stats}"
        );
        handle.shutdown().unwrap();
    }

    #[test]
    fn update_graph_requires_a_live_graph() {
        // A graph registered without its reference network is static.
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let refs = datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper_with_uncertainty(
            120, 0.2,
        ));
        let peg = PegBuilder::new().build(&refs).unwrap();
        let opts = OfflineOptions::default();
        let offline = OfflineIndex::build(&peg, &opts).unwrap();
        server.insert_graph("frozen", peg, offline);
        let handle = server.spawn();
        let mut client = Client::connect(handle.addr).unwrap();
        let reply = client.request(&update_request(&mutation_ops())).unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"), "{reply}");
        assert!(
            reply.get("message").and_then(Json::as_str).unwrap().contains("not live"),
            "{reply}"
        );
        // Unknown graphs and malformed batches stay structured too.
        let reply = client
            .request(&Json::parse(r#"{"op":"update_graph","graph":"nope","ops":[]}"#).unwrap())
            .unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("bad_request"), "{reply}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn distributed_update_graph_stays_bit_exact() {
        // Two worker processes (played by two Server instances), a
        // coordinator loading one shard per worker — then a mutation
        // through the coordinator, which broadcasts `shard_update`. The
        // distributed answers must stay bit-identical to a local live
        // server given the identical mutation.
        let w1 = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn();
        let w2 = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn();
        let (handle, mut client) = tiny_server(ServerConfig::default());
        let req = obj()
            .field("op", "load_graph")
            .field("name", "dist")
            .field("kind", "synthetic")
            .field("size", 200usize)
            .field("seed", 42u64)
            .field("uncertainty", 0.2)
            .field("max_len", 2usize)
            .field("beta", 0.3)
            .field(
                "workers",
                Json::Arr(vec![Json::Str(w1.addr.to_string()), Json::Str(w2.addr.to_string())]),
            )
            .build();
        let reply = client.request(&req).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");

        let ops = mutation_ops();
        let req = obj()
            .field("op", "update_graph")
            .field("graph", "dist")
            .field("ops", shard_wire::encode_ops(&ops))
            .build();
        let reply = client.request(&req).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("version").and_then(Json::as_u64), Some(1), "{reply}");
        assert_eq!(reply.get("shards").and_then(Json::as_usize), Some(2), "{reply}");

        // The local "tiny" graph is the same spec (tiny_server builds
        // synthetic(200, 0.2) with the default seed and a max_len-2
        // index); apply the same mutation to it and the distributed
        // answers must match bit for bit.
        let req = obj()
            .field("op", "update_graph")
            .field("graph", "tiny")
            .field("ops", shard_wire::encode_ops(&ops))
            .build();
        let reply = client.request(&req).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        for pattern in ["(x:l0)-(y:l1)", "(a:l1)-(b:l0)-(c:l2)"] {
            for alpha in [0.1, 0.3] {
                assert_eq!(
                    matches_text(&mut client, "dist", pattern, alpha),
                    matches_text(&mut client, "tiny", pattern, alpha),
                    "{pattern} at {alpha}"
                );
            }
        }
        handle.shutdown().unwrap();
        w1.shutdown().unwrap();
        w2.shutdown().unwrap();
    }

    /// The epoll front end speaks the identical protocol (Linux only).
    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_front_end_round_trips_the_protocol() {
        let (handle, mut client) =
            tiny_server(ServerConfig { serve_mode: ServeMode::Epoll, ..Default::default() });
        let pong = client.request(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        let reply = client
            .request(
                &Json::parse(r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3,"id":11}"#)
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(11), "{reply}");
        let n = reply.get("n").unwrap().as_usize().unwrap();
        assert_eq!(reply.get("matches").unwrap().as_arr().unwrap().len(), n);
        // Structured protocol errors, same as thread mode.
        let bad = client.request_line("this is not json").unwrap();
        assert!(bad.contains("\"error\":\"bad_request\""), "{bad}");
        let reply = client
            .request(&Json::parse(r#"{"op":"query","graph":"nope","pattern":"(x:l0)"}"#).unwrap())
            .unwrap();
        assert_eq!(reply.get("error").and_then(Json::as_str), Some("unknown_graph"), "{reply}");
        // Pipelined requests come back in order (the loop reads one
        // request per connection at a time; the socket buffers the rest).
        let mut stream = TcpStream::connect(handle.addr).unwrap();
        stream.write_all(b"{\"op\":\"ping\",\"id\":1}\n{\"op\":\"ping\",\"id\":2}\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        for want in [1u64, 2] {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let reply = Json::parse(line.trim()).unwrap();
            assert_eq!(reply.get("id").and_then(Json::as_u64), Some(want), "{reply}");
        }
        drop(reader);
        drop(client);
        handle.shutdown().unwrap();
    }

    /// The epoll front end sheds connections past `max_connections` with
    /// a structured reply, like thread mode.
    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_connection_limit_rejects_with_structured_reply() {
        let (handle, client) = tiny_server(ServerConfig {
            serve_mode: ServeMode::Epoll,
            max_connections: 1,
            ..Default::default()
        });
        // `client` holds the one slot; the next connection is refused
        // with an `overloaded` line and closed.
        let mut second = Client::connect(handle.addr).unwrap();
        let line = second.request_line(r#"{"op":"ping"}"#);
        match line {
            Ok(text) => assert!(text.contains("\"error\":\"overloaded\""), "{text}"),
            // The server may close before our request is written.
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}"),
        }
        drop(second);
        drop(client);
        handle.shutdown().unwrap();
    }
}
