//! Query admission control: a counting semaphore with a bounded wait queue
//! and a per-request deadline.
//!
//! A server without admission control degrades badly past saturation:
//! every accepted query opens a session and contends for the shared
//! compute pool, so latency climbs for *all* requests until none meet
//! their deadline. Bounding concurrency keeps the pool at a productive
//! multiprogramming level and converts overload into fast, structured
//! rejections:
//!
//! * up to `max_sessions` queries execute at once;
//! * up to `queue_depth` more wait for a slot, served strictly in arrival
//!   order (a fresh arrival never barges past a queued waiter);
//! * anything beyond that is rejected immediately ([`AdmitError::Overloaded`]);
//! * a waiter whose `deadline` elapses before a slot frees is rejected
//!   with [`AdmitError::Timeout`].
//!
//! Rejections never block and admitted work is never interrupted, so the
//! caller can always produce a reply — overload degrades predictably
//! instead of hanging connections.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a request was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Concurrency and the wait queue are both full; rejected immediately.
    Overloaded {
        /// Sessions executing at rejection time.
        running: usize,
        /// Requests already waiting at rejection time.
        waiting: usize,
    },
    /// A queue slot was granted but no session slot freed within the
    /// deadline.
    Timeout {
        /// How long the request waited before giving up.
        waited: Duration,
    },
}

impl AdmitError {
    /// The protocol error code (`overloaded` / `timeout`).
    pub fn code(&self) -> &'static str {
        match self {
            AdmitError::Overloaded { .. } => "overloaded",
            AdmitError::Timeout { .. } => "timeout",
        }
    }
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Overloaded { running, waiting } => {
                write!(f, "server overloaded ({running} running, {waiting} queued)")
            }
            AdmitError::Timeout { waited } => {
                write!(f, "no session slot freed within deadline (waited {waited:?})")
            }
        }
    }
}

#[derive(Debug, Default)]
struct State {
    running: usize,
    /// FIFO of ticket numbers still waiting; the front waiter has priority
    /// over both later waiters and fresh arrivals (no barging).
    queue: std::collections::VecDeque<u64>,
    next_ticket: u64,
    admitted: u64,
    rejected_overloaded: u64,
    rejected_timeout: u64,
    peak_running: usize,
}

impl State {
    fn grant(&mut self) {
        self.running += 1;
        self.admitted += 1;
        self.peak_running = self.peak_running.max(self.running);
    }
}

/// Counter snapshot for `stats` replies.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmissionStats {
    /// Sessions executing right now.
    pub running: usize,
    /// Requests waiting for a slot right now.
    pub waiting: usize,
    /// Requests admitted since start.
    pub admitted: u64,
    /// Requests rejected because queue and sessions were full.
    pub rejected_overloaded: u64,
    /// Requests rejected because the deadline elapsed while queued.
    pub rejected_timeout: u64,
    /// Highest concurrent session count observed.
    pub peak_running: usize,
}

/// The counting semaphore. One per server; admission wraps only query
/// *execution* (the part that opens a session and occupies the pool).
#[derive(Debug)]
pub struct Admission {
    max_sessions: usize,
    queue_depth: usize,
    deadline: Duration,
    state: Mutex<State>,
    cv: Condvar,
}

impl Admission {
    /// A semaphore admitting `max_sessions` concurrent sessions (min 1)
    /// with `queue_depth` wait slots and the given queue deadline.
    pub fn new(max_sessions: usize, queue_depth: usize, deadline: Duration) -> Self {
        Self {
            max_sessions: max_sessions.max(1),
            queue_depth,
            deadline,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// Concurrent-session bound.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Wait-queue bound.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Per-request queueing deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Tries to admit one session, waiting in the bounded FIFO queue up to
    /// the deadline. Queued requests are served strictly in arrival order
    /// — a fresh arrival never takes a freed slot past a waiter (barging
    /// would starve queued requests to timeout under sustained load while
    /// later arrivals get served). The returned permit releases its slot
    /// on drop.
    pub fn admit(&self) -> Result<Permit<'_>, AdmitError> {
        let mut s = self.state.lock().unwrap();
        if s.running < self.max_sessions && s.queue.is_empty() {
            s.grant();
            return Ok(Permit(self));
        }
        if s.queue.len() >= self.queue_depth {
            s.rejected_overloaded += 1;
            return Err(AdmitError::Overloaded { running: s.running, waiting: s.queue.len() });
        }
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.queue.push_back(ticket);
        let start = Instant::now();
        loop {
            if s.running < self.max_sessions && s.queue.front() == Some(&ticket) {
                s.queue.pop_front();
                s.grant();
                // A successor may also fit (e.g. several slots freed at
                // once); pass the wakeup along.
                self.cv.notify_all();
                return Ok(Permit(self));
            }
            let waited = start.elapsed();
            let Some(remaining) = self.deadline.checked_sub(waited) else {
                s.queue.retain(|&t| t != ticket);
                s.rejected_timeout += 1;
                // Our departure may unblock the new front waiter.
                self.cv.notify_all();
                return Err(AdmitError::Timeout { waited });
            };
            let (guard, _) = self.cv.wait_timeout(s, remaining).unwrap();
            s = guard;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        let s = self.state.lock().unwrap();
        AdmissionStats {
            running: s.running,
            waiting: s.queue.len(),
            admitted: s.admitted,
            rejected_overloaded: s.rejected_overloaded,
            rejected_timeout: s.rejected_timeout,
            peak_running: s.peak_running,
        }
    }
}

/// An admitted session slot; dropping it frees the slot and wakes one
/// waiter.
#[derive(Debug)]
pub struct Permit<'a>(&'a Admission);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = self.0.state.lock().unwrap();
        s.running -= 1;
        drop(s);
        // notify_all, not notify_one: only the front-of-queue waiter may
        // take the slot, and notify_one could wake a different one.
        self.0.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admits_up_to_the_bound_then_queues_then_rejects() {
        let adm = Arc::new(Admission::new(2, 1, Duration::from_secs(5)));
        let a = adm.admit().unwrap();
        let b = adm.admit().unwrap();
        // Sessions full, queue has one slot: a third caller waits; a
        // concurrent fourth is rejected outright.
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || adm2.admit().map(|_| ()));
        // Let the waiter enter the queue.
        while adm.stats().waiting == 0 {
            std::thread::yield_now();
        }
        let rejected = adm.admit();
        assert!(matches!(rejected, Err(AdmitError::Overloaded { running: 2, waiting: 1 })));
        // Freeing a slot admits the waiter.
        drop(a);
        assert!(waiter.join().unwrap().is_ok());
        drop(b);
        let s = adm.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.rejected_overloaded, 1);
        assert_eq!(s.peak_running, 2);
    }

    #[test]
    fn queued_request_times_out_at_the_deadline() {
        let adm = Admission::new(1, 4, Duration::from_millis(30));
        let held = adm.admit().unwrap();
        let t0 = Instant::now();
        let err = adm.admit().unwrap_err();
        assert!(matches!(err, AdmitError::Timeout { .. }), "{err:?}");
        assert_eq!(err.code(), "timeout");
        assert!(t0.elapsed() >= Duration::from_millis(30));
        drop(held);
        let s = adm.stats();
        assert_eq!((s.rejected_timeout, s.waiting, s.running), (1, 0, 0));
        // The slot is usable again.
        assert!(adm.admit().is_ok());
    }

    #[test]
    fn queued_waiters_are_served_fifo_without_barging() {
        let adm = Arc::new(Admission::new(1, 4, Duration::from_secs(5)));
        let held = adm.admit().unwrap();
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let spawn_waiter = |label: char| {
            let (adm, order) = (adm.clone(), order.clone());
            std::thread::spawn(move || {
                let _permit = adm.admit().unwrap();
                order.lock().unwrap().push(label);
                std::thread::sleep(Duration::from_millis(5));
            })
        };
        let a = spawn_waiter('A');
        while adm.stats().waiting < 1 {
            std::thread::yield_now();
        }
        let b = spawn_waiter('B');
        while adm.stats().waiting < 2 {
            std::thread::yield_now();
        }
        // Free the slot, then let a late arrival race the queued waiters:
        // FIFO means it must be served last no matter how the wakeups land.
        drop(held);
        let c = spawn_waiter('C');
        for h in [a, b, c] {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec!['A', 'B', 'C']);
    }

    #[test]
    fn concurrency_never_exceeds_the_bound() {
        let adm = Arc::new(Admission::new(3, 64, Duration::from_secs(5)));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (adm, live, peak) = (adm.clone(), live.clone(), peak.clone());
                std::thread::spawn(move || {
                    let _permit = adm.admit().unwrap();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
        let s = adm.stats();
        assert_eq!(s.admitted, 16);
        assert!(s.peak_running <= 3);
    }
}
