//! A blocking line-protocol client for [`Server`](crate::server::Server).
//!
//! One request per call: write a JSON line, read the JSON reply line.
//! Requests on one connection are processed in order by a dedicated server
//! thread, so the pairing is exact. Concurrency comes from opening one
//! client per thread, which is also what gives the server's admission
//! control something to arbitrate.

use crate::json::{Json, JsonError};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Client-side failure: transport or malformed reply.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's reply line was not valid JSON.
    BadReply(JsonError, String),
    /// The server closed the connection.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::BadReply(e, line) => write!(f, "bad reply ({e}): {line}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends a raw line and returns the raw reply line (no JSON handling);
    /// the scripting path `pegcli client` uses.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        // One framed write per request: `writeln!` straight into an
        // unbuffered TcpStream would issue a write syscall per format
        // fragment, and a request split across segments invites the
        // Nagle + delayed-ACK stall the no-Nagle socket contract exists
        // to avoid.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Sends one request object and parses the reply.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        let line = self.request_line(&req.to_string())?;
        Json::parse(&line).map_err(|e| ClientError::BadReply(e, line))
    }
}
