//! The typed protocol: every request the server speaks, decoded and
//! validated in one place.
//!
//! The wire format is one JSON object per line (see [`crate::server`]'s
//! framing); this module owns everything *between* the framed line and a
//! handler — the op registry, per-field validation, range ceilings, and
//! the optional protocol version tag — so a handler receives a typed
//! struct whose invariants already hold and no `req.get(...)` parsing is
//! scattered through the dispatch path.
//!
//! # Protocol versioning
//!
//! Requests may carry `"v"`, the protocol version the client speaks.
//! Absent means "whatever the server speaks" (the pre-versioning
//! contract); `1` is the current version and is echoed verbatim on the
//! reply (success and error alike, like `"id"`); any other value is a
//! structured `bad_request` *before* the op is even looked at, so a
//! client built against a future protocol fails loudly instead of
//! half-working.
//!
//! # Validation stance
//!
//! Decoding enforces everything that does not need graph state: field
//! types, range ceilings ([`MAX_LOAD_SIZE`], [`MAX_QUERY_BATCH`], ...),
//! thread-count clamping, and mutation-batch structure (via
//! [`pegshard::wire`]'s shared op codec, so `update_graph` and the
//! worker-side `shard_update` reject malformed ops identically). What
//! *does* need graph state — pattern parsing against a graph's label
//! table, entity-id bounds inside a mutation — stays with the handler
//! (patterns) or the mutation engine (ids), which report through the same
//! structured error shape.

use crate::json::Json;
use graphstore::GraphOp;
use pathindex::PathIndexConfig;
use pegmatch::online::QueryPath;
use pegmatch::query::QueryGraph;
use pegshard::wire as shard_wire;
use std::time::Duration;

/// The protocol version this server speaks. Requests tagged `"v": 1`
/// get the tag echoed; other versions are rejected.
pub const PROTOCOL_VERSION: u64 = 1;

/// Reference-count ceiling for protocol-initiated graph builds: the
/// paper's largest evaluation size. Anything bigger must be loaded by the
/// embedder (`Server::insert_graph`), not by a remote request.
pub const MAX_LOAD_SIZE: usize = 1_000_000;

/// Index path-length ceiling for protocol-initiated builds: the paper's
/// `L = 3`. Path enumeration grows like `degree^max_len`, so an
/// uncapped `max_len` would let one request force an exponential index
/// build regardless of the size ceiling.
pub const MAX_LOAD_PATH_LEN: usize = 3;

/// Lowest `beta` a protocol-initiated build may use. `beta` is the path
/// index's probability-pruning threshold — driving it to 0 disables
/// pruning and blows up the index; the embedder can still build with any
/// `beta` via `Server::insert_graph`.
pub const MIN_LOAD_BETA: f64 = 0.01;

/// Shard-count ceiling for protocol-initiated builds. Each shard costs a
/// halo-replicated subgraph plus its own index build; uncapped, one
/// request could multiply the graph's memory footprint arbitrarily.
pub const MAX_LOAD_SHARDS: usize = 16;

/// Largest `hist_grid` a protocol request may carry (defaults have ~10
/// points; the cap only bounds a hostile request's memory).
const MAX_HIST_GRID_POINTS: usize = 128;

/// Matches returned per reply, tops. Replies are one JSON line held fully
/// in memory, so the reply direction needs a hard bound symmetric to the
/// request direction's line cap: a low-threshold broad pattern on a
/// 1M-node graph would otherwise materialize a multi-GB reply. Threshold
/// queries report `truncated: true` when the cap bites; `k` is clamped
/// silently (top-k is already a "best N" contract).
pub const MAX_RESULT_MATCHES: usize = 10_000;

/// Query-pattern node ceiling. The paper's largest query is 15 nodes and
/// planning cost grows steeply with pattern size, so a public endpoint
/// caps patterns well below anything the engine is sized for rather than
/// letting one request monopolize its handler thread.
pub const MAX_PATTERN_NODES: usize = 64;

/// Queries one `query_batch` may carry, tops. A batch runs under a
/// single admission permit, so the cap bounds the compute one permit can
/// occupy — and, with [`MAX_RESULT_MATCHES`] per item, the reply line.
pub const MAX_QUERY_BATCH: usize = 32;

/// A request rejected at decode: a structured error code plus detail,
/// before any handler ran.
#[derive(Debug)]
pub struct ProtoError {
    /// Protocol error code (`bad_request` for everything decode catches).
    pub code: &'static str,
    /// Human-readable detail naming the offending field.
    pub message: String,
}

fn bad(message: impl std::fmt::Display) -> ProtoError {
    ProtoError { code: "bad_request", message: message.to_string() }
}

/// Validates the optional `"v"` protocol-version tag. `None` (absent or
/// null) is the untagged pre-versioning contract; [`PROTOCOL_VERSION`]
/// is accepted and echoed; anything else is a structured rejection.
pub fn protocol_version(req: &Json) -> Result<Option<u64>, ProtoError> {
    match req.get("v") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_u64() {
            Some(PROTOCOL_VERSION) => Ok(Some(PROTOCOL_VERSION)),
            Some(other) => Err(bad(format!(
                "unsupported protocol version {other} (this server speaks v{PROTOCOL_VERSION})"
            ))),
            None => Err(bad("\"v\" must be an unsigned integer")),
        },
    }
}

fn field_f64(req: &Json, key: &str, default: f64) -> Result<f64, ProtoError> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| bad(format!("\"{key}\" must be a number"))),
    }
}

fn field_usize(req: &Json, key: &str, default: usize) -> Result<usize, ProtoError> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => {
            v.as_usize().ok_or_else(|| bad(format!("\"{key}\" must be a non-negative integer")))
        }
    }
}

fn field_graph(req: &Json) -> Result<Option<String>, ProtoError> {
    match req.get("graph") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| bad("\"graph\" must be a string"))
        }
    }
}

fn require_graph(req: &Json) -> Result<String, ProtoError> {
    field_graph(req)?.ok_or_else(|| bad("missing \"graph\""))
}

fn machine_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Per-query lanes default to 1: a multi-client server gets its
/// parallelism across sessions; `threads: 0` opts one query into all
/// cores. Clamped to the machine's parallelism — an unbounded client
/// value would otherwise spawn that many OS threads and leak a
/// persistent pool per distinct count.
fn query_threads(req: &Json) -> Result<usize, ProtoError> {
    Ok(field_usize(req, "threads", 1)?.min(machine_cores()))
}

/// Workers default to all cores (`threads: 0`): a shard worker is a
/// dedicated process, not one session among many. Explicit counts are
/// clamped to the machine like `query`'s.
fn worker_threads(req: &Json) -> Result<usize, ProtoError> {
    Ok(match field_usize(req, "threads", 0)? {
        0 => 0,
        t => t.min(machine_cores()),
    })
}

fn field_limit(req: &Json) -> Result<usize, ProtoError> {
    match req.get("limit") {
        None | Some(Json::Null) => Ok(MAX_RESULT_MATCHES),
        Some(v) => v
            .as_usize()
            .map(|l| l.min(MAX_RESULT_MATCHES))
            .ok_or_else(|| bad("\"limit\" must be a non-negative integer")),
    }
}

fn field_debug_sleep(req: &Json) -> Result<Option<u64>, ProtoError> {
    match req.get("debug_sleep_ms") {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad("\"debug_sleep_ms\" must be an unsigned integer")),
    }
}

fn decode_mutation_ops(req: &Json) -> Result<Vec<GraphOp>, ProtoError> {
    shard_wire::decode_ops(req).map_err(|e| bad(format!("bad mutation batch: {e}")))
}

/// The deterministic generator spec a protocol-loaded graph is built
/// from. The distributed path leans on determinism twice: the coordinator
/// builds the full graph from the spec, and each worker rebuilds *its
/// shard* of the same graph from the same spec (forwarded in
/// `shard_load`) — so nothing graph-sized ever crosses the wire, and the
/// coordinator can cross-check node/edge counts to catch spec drift.
#[derive(Clone, Debug)]
pub struct GraphSpec {
    /// Generator family: `synthetic`, `dblp`, or `imdb`.
    pub kind: String,
    /// Reference count the generator is scaled to.
    pub size: usize,
    /// Generator seed.
    pub seed: u64,
    /// Identity-uncertainty knob (synthetic generator only).
    pub uncertainty: f64,
}

impl GraphSpec {
    /// Parses the spec fields shared by `load_graph` and `shard_load`,
    /// enforcing the [`MAX_LOAD_SIZE`] ceiling.
    fn from_request(req: &Json) -> Result<GraphSpec, ProtoError> {
        let kind = req.get("kind").and_then(Json::as_str).ok_or_else(|| bad("missing \"kind\""))?;
        if !matches!(kind, "synthetic" | "dblp" | "imdb") {
            return Err(bad(format!("unknown kind '{kind}'")));
        }
        let size = req
            .get("size")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing or bad \"size\""))?;
        if size > MAX_LOAD_SIZE {
            return Err(bad(format!(
                "\"size\" {size} exceeds the load_graph ceiling of {MAX_LOAD_SIZE}"
            )));
        }
        let seed = req.get("seed").and_then(Json::as_u64).unwrap_or(42);
        let uncertainty = field_f64(req, "uncertainty", 0.2)?;
        Ok(GraphSpec { kind: kind.to_string(), size, seed, uncertainty })
    }

    /// Runs the generator.
    pub fn build_refs(&self) -> graphstore::RefGraph {
        match self.kind.as_str() {
            "synthetic" => datagen::synthetic_refgraph(&datagen::SyntheticConfig {
                seed: self.seed,
                ..datagen::SyntheticConfig::paper_with_uncertainty(self.size, self.uncertainty)
            }),
            "dblp" => datagen::dblp_like(&datagen::DblpConfig {
                seed: self.seed,
                ..datagen::DblpConfig::scaled(self.size)
            }),
            "imdb" => datagen::imdb_like(&datagen::ImdbConfig {
                seed: self.seed,
                ..datagen::ImdbConfig::scaled(self.size)
            }),
            other => unreachable!("kind '{other}' validated at parse"),
        }
    }

    /// The `shard_load` request that makes a worker rebuild shard `shard`
    /// of `n_shards` of this spec's graph under `graph`. The **whole**
    /// index config crosses the wire — `gamma` and `hist_grid` included,
    /// not just `max_len`/`beta` — because any result-affecting knob the
    /// worker filled in from its own defaults would silently build a
    /// different index than the coordinator assumes, breaking
    /// bit-exactness in a way the node/edge-count cross-check cannot see.
    /// (f64 knobs survive bit-exactly on the JSON round-trip guarantee.)
    pub fn shard_load_json(
        &self,
        graph: &str,
        index: &PathIndexConfig,
        shard: usize,
        n_shards: usize,
    ) -> Json {
        crate::json::obj()
            .field("op", shard_wire::OP_SHARD_LOAD)
            .field("graph", graph)
            .field("kind", self.kind.as_str())
            .field("size", self.size)
            .field("seed", self.seed)
            .field("uncertainty", self.uncertainty)
            .field("max_len", index.max_len)
            .field("beta", index.beta)
            .field("gamma", index.gamma)
            .field("hist_grid", Json::Arr(index.hist_grid.iter().map(|&g| Json::Num(g)).collect()))
            .field("shard", shard)
            .field("n_shards", n_shards)
            .build()
    }
}

/// Parses and bounds the offline-index knobs shared by `load_graph` and
/// `shard_load`: `max_len` capped at [`MAX_LOAD_PATH_LEN`], `beta`
/// floored at [`MIN_LOAD_BETA`], `gamma`/`hist_grid` validated when given
/// (they default like the local build's config, so both sides agree even
/// when the coordinator omits them).
fn parse_index_opts(req: &Json) -> Result<PathIndexConfig, ProtoError> {
    let defaults = PathIndexConfig::default();
    let max_len = field_usize(req, "max_len", 2)?;
    if !(1..=MAX_LOAD_PATH_LEN).contains(&max_len) {
        return Err(bad(format!("\"max_len\" {max_len} out of range 1..={MAX_LOAD_PATH_LEN}")));
    }
    let beta = field_f64(req, "beta", 0.3)?;
    if !(MIN_LOAD_BETA..=1.0).contains(&beta) {
        return Err(bad(format!("\"beta\" {beta} out of range {MIN_LOAD_BETA}..=1")));
    }
    let gamma = field_f64(req, "gamma", defaults.gamma)?;
    if !(gamma > 0.0 && gamma <= 1.0) {
        return Err(bad(format!("\"gamma\" {gamma} out of range 0..=1")));
    }
    let hist_grid = match req.get("hist_grid") {
        None | Some(Json::Null) => defaults.hist_grid,
        Some(v) => {
            let points = v.as_arr().ok_or_else(|| bad("\"hist_grid\" must be an array"))?;
            if points.is_empty() || points.len() > MAX_HIST_GRID_POINTS {
                return Err(bad(format!(
                    "\"hist_grid\" must carry 1..={MAX_HIST_GRID_POINTS} points"
                )));
            }
            let grid = points
                .iter()
                .map(|p| {
                    p.as_f64()
                        .filter(|x| (0.0..=1.0).contains(x))
                        .ok_or_else(|| bad("\"hist_grid\" points must be numbers in 0..=1"))
                })
                .collect::<Result<Vec<f64>, _>>()?;
            if !grid.windows(2).all(|w| w[0] < w[1]) {
                return Err(bad("\"hist_grid\" points must be strictly ascending"));
            }
            grid
        }
    };
    Ok(PathIndexConfig { max_len, beta, gamma, hist_grid, ..defaults })
}

/// A validated `load_graph`.
pub struct LoadGraph {
    /// Name to register the graph under (default `"default"`).
    pub name: String,
    /// Generator spec the graph is built from.
    pub spec: GraphSpec,
    /// Offline-index knobs, bounded by the load ceilings.
    pub index: PathIndexConfig,
    /// Worker addresses for a distributed load (empty = local).
    pub workers: Vec<String>,
    /// Shard count (1 = unsharded; must equal the worker count when
    /// workers are given).
    pub shards: usize,
    /// Per-exchange deadline for worker wire traffic.
    pub worker_timeout: Duration,
    /// Whether the graph participates in the server's execution cache.
    pub exec_cache: bool,
}

impl LoadGraph {
    fn decode(req: &Json) -> Result<LoadGraph, ProtoError> {
        let name = req.get("name").and_then(Json::as_str).unwrap_or("default").to_string();
        let spec = GraphSpec::from_request(req)?;
        let index = parse_index_opts(req)?;
        let workers: Vec<String> = match req.get("workers") {
            None | Some(Json::Null) => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| bad("\"workers\" must be an array"))?
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad("worker addresses must be strings"))
                })
                .collect::<Result<_, _>>()?,
        };
        let shards = field_usize(req, "shards", workers.len().max(1))?;
        if !(1..=MAX_LOAD_SHARDS).contains(&shards) {
            return Err(bad(format!("\"shards\" {shards} out of range 1..={MAX_LOAD_SHARDS}")));
        }
        if !workers.is_empty() && shards != workers.len() {
            return Err(bad(format!(
                "\"shards\" {shards} conflicts with {} workers (one shard per worker)",
                workers.len()
            )));
        }
        let worker_timeout =
            Duration::from_millis(field_usize(req, "worker_timeout_ms", 30_000)? as u64);
        let exec_cache = match req.get("exec_cache") {
            None | Some(Json::Null) => true,
            Some(v) => v.as_bool().ok_or_else(|| bad("\"exec_cache\" must be a boolean"))?,
        };
        Ok(LoadGraph { name, spec, index, workers, shards, worker_timeout, exec_cache })
    }
}

/// A validated `prepare`.
pub struct Prepare {
    /// Target graph (`None` resolves the only loaded graph).
    pub graph: Option<String>,
    /// Pattern text, parsed against the graph's label table by the
    /// handler.
    pub pattern: String,
    /// Probability threshold the plan is costed at.
    pub alpha: f64,
}

/// A validated `explain`: a threshold query that additionally returns
/// its plan summary, pipeline/scatter statistics, and the full request
/// span tree (worker-side scatter spans included on a distributed
/// graph). Same fields as `query`; the matches themselves ride along so
/// one request answers "what did it do" and "what did it find" together.
pub struct Explain {
    /// Target graph (`None` resolves the only loaded graph).
    pub graph: Option<String>,
    /// Pattern text, parsed against the graph's label table by the
    /// handler.
    pub pattern: String,
    /// Probability threshold.
    pub alpha: f64,
    /// Match-count cap, clamped to [`MAX_RESULT_MATCHES`].
    pub limit: usize,
    /// Execution lanes, clamped to the machine (0 = all cores).
    pub threads: usize,
}

/// A validated threshold `query`.
pub struct Query {
    /// Target graph (`None` resolves the only loaded graph).
    pub graph: Option<String>,
    /// Pattern text, parsed against the graph's label table by the
    /// handler.
    pub pattern: String,
    /// Probability threshold.
    pub alpha: f64,
    /// Match-count cap, clamped to [`MAX_RESULT_MATCHES`].
    pub limit: usize,
    /// Execution lanes, clamped to the machine (0 = all cores).
    pub threads: usize,
    /// Admission-drill sleep (honored only with the server knob).
    pub debug_sleep_ms: Option<u64>,
}

/// A validated `query_topk`.
pub struct QueryTopk {
    /// Target graph (`None` resolves the only loaded graph).
    pub graph: Option<String>,
    /// Pattern text, parsed against the graph's label table by the
    /// handler.
    pub pattern: String,
    /// How many top matches to return, clamped to
    /// [`MAX_RESULT_MATCHES`].
    pub k: usize,
    /// Threshold floor the incremental search may stop at.
    pub min_alpha: f64,
    /// Execution lanes, clamped to the machine (0 = all cores).
    pub threads: usize,
    /// Admission-drill sleep (honored only with the server knob).
    pub debug_sleep_ms: Option<u64>,
}

/// One item of a `query_batch`.
pub struct BatchItem {
    /// Pattern text, parsed against the graph's label table by the
    /// handler.
    pub pattern: String,
    /// Probability threshold.
    pub alpha: f64,
    /// Match-count cap, clamped to [`MAX_RESULT_MATCHES`].
    pub limit: usize,
}

/// A validated `query_batch`.
pub struct QueryBatch {
    /// Target graph (`None` resolves the only loaded graph).
    pub graph: Option<String>,
    /// Execution lanes shared by every item.
    pub threads: usize,
    /// The batch, 1..=[`MAX_QUERY_BATCH`] items.
    pub items: Vec<BatchItem>,
}

impl QueryBatch {
    fn decode(req: &Json) -> Result<QueryBatch, ProtoError> {
        let graph = field_graph(req)?;
        let threads = query_threads(req)?;
        let items = req
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing \"queries\" array"))?;
        if items.is_empty() || items.len() > MAX_QUERY_BATCH {
            return Err(bad(format!("\"queries\" must carry 1..={MAX_QUERY_BATCH} items")));
        }
        let items = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let pattern = item
                    .get("pattern")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(format!("queries[{i}]: missing \"pattern\"")))?
                    .to_string();
                let alpha = field_f64(item, "alpha", 0.5)
                    .map_err(|e| bad(format!("queries[{i}]: {}", e.message)))?;
                let limit =
                    field_limit(item).map_err(|e| bad(format!("queries[{i}]: {}", e.message)))?;
                Ok(BatchItem { pattern, alpha, limit })
            })
            .collect::<Result<Vec<_>, ProtoError>>()?;
        Ok(QueryBatch { graph, threads, items })
    }
}

/// A validated `update_graph`: a mutation batch against a live graph.
pub struct UpdateGraph {
    /// Target graph (`None` resolves the only loaded graph).
    pub graph: Option<String>,
    /// The mutation batch, structurally validated (entity-id bounds are
    /// the mutation engine's, reported through the same error shape).
    pub ops: Vec<GraphOp>,
}

/// A validated `shard_load` (worker side of the distributed handshake).
pub struct ShardLoad {
    /// Graph name the shard is held under.
    pub graph: String,
    /// Generator spec to rebuild the full graph from.
    pub spec: GraphSpec,
    /// Offline-index knobs, bounded like `load_graph`'s.
    pub index: PathIndexConfig,
    /// This worker's shard number.
    pub shard: usize,
    /// Total shard count of the partition.
    pub n_shards: usize,
}

impl ShardLoad {
    fn decode(req: &Json) -> Result<ShardLoad, ProtoError> {
        let graph = req.get("graph").and_then(Json::as_str).unwrap_or("default").to_string();
        let spec = GraphSpec::from_request(req)?;
        let index = parse_index_opts(req)?;
        let shard = req
            .get("shard")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing or bad \"shard\""))?;
        let n_shards = req
            .get("n_shards")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing or bad \"n_shards\""))?;
        if !(1..=MAX_LOAD_SHARDS).contains(&n_shards) || shard >= n_shards {
            return Err(bad(format!(
                "shard {shard} of {n_shards} out of range (1..={MAX_LOAD_SHARDS} shards)"
            )));
        }
        Ok(ShardLoad { graph, spec, index, shard, n_shards })
    }
}

/// A validated `shard_retrieve` (worker side of one scatter leg).
pub struct ShardRetrieve {
    /// Graph name the shard is held under.
    pub graph: String,
    /// Shard version to retrieve against (`None` = latest).
    pub version: Option<u64>,
    /// Worker pool lanes (0 = all cores).
    pub threads: usize,
    /// The decoded query graph.
    pub query: QueryGraph,
    /// The decomposition paths to retrieve.
    pub paths: Vec<QueryPath>,
    /// Probability threshold.
    pub alpha: f64,
    /// Coordinator's trace id, when this scatter leg belongs to a traced
    /// request: the worker times its per-path retrieval and ships the
    /// span subtree back in the reply's `"span"` field.
    pub trace_id: Option<u64>,
}

impl ShardRetrieve {
    fn decode(req: &Json) -> Result<ShardRetrieve, ProtoError> {
        let graph = require_graph(req)?;
        let version =
            shard_wire::decode_version(req).map_err(|e| bad(format!("bad shard_retrieve: {e}")))?;
        let threads = worker_threads(req)?;
        let (query, paths, alpha) = shard_wire::decode_retrieve_request(req)
            .map_err(|e| bad(format!("bad shard_retrieve: {e}")))?;
        let trace_id = shard_wire::decode_trace_id(req)
            .map_err(|e| bad(format!("bad shard_retrieve: {e}")))?;
        Ok(ShardRetrieve { graph, version, threads, query, paths, alpha, trace_id })
    }
}

/// A validated `shard_retrieve_batch` (many scatter legs, one line).
pub struct ShardRetrieveBatch {
    /// Graph name the shard is held under.
    pub graph: String,
    /// Shard version to retrieve against (`None` = latest).
    pub version: Option<u64>,
    /// Worker pool lanes (0 = all cores).
    pub threads: usize,
    /// The decoded retrieve bodies.
    pub items: Vec<(QueryGraph, Vec<QueryPath>, f64)>,
}

impl ShardRetrieveBatch {
    fn decode(req: &Json) -> Result<ShardRetrieveBatch, ProtoError> {
        let graph = require_graph(req)?;
        let version = shard_wire::decode_version(req)
            .map_err(|e| bad(format!("bad shard_retrieve_batch: {e}")))?;
        let threads = worker_threads(req)?;
        let items = shard_wire::decode_retrieve_batch_request(req)
            .map_err(|e| bad(format!("bad shard_retrieve_batch: {e}")))?;
        Ok(ShardRetrieveBatch { graph, version, threads, items })
    }
}

/// A validated `shard_update` (worker side of a live-graph mutation).
pub struct ShardUpdate {
    /// Graph name the shard is held under.
    pub graph: String,
    /// The version this batch advances the shard to (must be exactly
    /// latest + 1; resends of the latest are acknowledged idempotently).
    pub version: u64,
    /// The mutation batch.
    pub ops: Vec<GraphOp>,
}

impl ShardUpdate {
    fn decode(req: &Json) -> Result<ShardUpdate, ProtoError> {
        let graph = require_graph(req)?;
        let version = shard_wire::decode_version(req)
            .map_err(|e| bad(format!("bad shard_update: {e}")))?
            .ok_or_else(|| bad("missing \"version\""))?;
        let ops = decode_mutation_ops(req)?;
        Ok(ShardUpdate { graph, version, ops })
    }
}

/// Every request the protocol speaks, decoded and validated. One decode
/// path ([`Request::decode`]) replaces per-op ad-hoc field parsing — a
/// handler receives a struct whose ranges and types already hold.
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Build + register a graph from a generator spec.
    LoadGraph(LoadGraph),
    /// Drop a loaded graph (explicit name required).
    UnloadGraph(String),
    /// Plan a pattern without executing it.
    Prepare(Prepare),
    /// Threshold query.
    Query(Query),
    /// Many threshold queries, one line, one admission permit.
    QueryBatch(QueryBatch),
    /// Top-k query.
    QueryTopk(QueryTopk),
    /// Mutate a live graph in place (epoch-bumping).
    UpdateGraph(UpdateGraph),
    /// Threshold query + plan summary + full span tree.
    Explain(Explain),
    /// Server-wide counters.
    Stats,
    /// Process-wide metrics registry dump (counters + latency
    /// histograms).
    Metrics,
    /// Stop serving.
    Shutdown,
    /// Worker: rebuild and hold one shard from a spec.
    ShardLoad(ShardLoad),
    /// Worker: one scatter leg.
    ShardRetrieve(ShardRetrieve),
    /// Worker: many scatter legs in one line.
    ShardRetrieveBatch(ShardRetrieveBatch),
    /// Worker: apply a mutation batch, advancing the shard version.
    ShardUpdate(ShardUpdate),
    /// Worker: drop shard state for a graph.
    ShardUnload(String),
}

impl Request {
    /// Decodes one request object (already framed and JSON-parsed).
    /// Everything graph-state-independent is validated here; unknown ops
    /// and malformed fields come back as structured [`ProtoError`]s.
    pub fn decode(req: &Json) -> Result<Request, ProtoError> {
        let Some(op) = req.get("op").and_then(Json::as_str) else {
            return Err(bad("missing \"op\""));
        };
        match op {
            "ping" => Ok(Request::Ping),
            "load_graph" => LoadGraph::decode(req).map(Request::LoadGraph),
            "unload_graph" => require_graph(req).map(Request::UnloadGraph),
            "prepare" => Ok(Request::Prepare(Prepare {
                graph: field_graph(req)?,
                pattern: req
                    .get("pattern")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing \"pattern\""))?
                    .to_string(),
                alpha: field_f64(req, "alpha", 0.5)?,
            })),
            "query" => Ok(Request::Query(Query {
                graph: field_graph(req)?,
                pattern: req
                    .get("pattern")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing \"pattern\""))?
                    .to_string(),
                alpha: field_f64(req, "alpha", 0.5)?,
                limit: field_limit(req)?,
                threads: query_threads(req)?,
                debug_sleep_ms: field_debug_sleep(req)?,
            })),
            "query_topk" => Ok(Request::QueryTopk(QueryTopk {
                graph: field_graph(req)?,
                pattern: req
                    .get("pattern")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing \"pattern\""))?
                    .to_string(),
                k: field_usize(req, "k", 10)?.min(MAX_RESULT_MATCHES),
                min_alpha: field_f64(req, "min_alpha", 1e-9)?,
                threads: query_threads(req)?,
                debug_sleep_ms: field_debug_sleep(req)?,
            })),
            "query_batch" => QueryBatch::decode(req).map(Request::QueryBatch),
            "explain" => Ok(Request::Explain(Explain {
                graph: field_graph(req)?,
                pattern: req
                    .get("pattern")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing \"pattern\""))?
                    .to_string(),
                alpha: field_f64(req, "alpha", 0.5)?,
                limit: field_limit(req)?,
                threads: query_threads(req)?,
            })),
            "update_graph" => Ok(Request::UpdateGraph(UpdateGraph {
                graph: field_graph(req)?,
                ops: decode_mutation_ops(req)?,
            })),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            shard_wire::OP_SHARD_LOAD => ShardLoad::decode(req).map(Request::ShardLoad),
            shard_wire::OP_SHARD_RETRIEVE => ShardRetrieve::decode(req).map(Request::ShardRetrieve),
            shard_wire::OP_SHARD_RETRIEVE_BATCH => {
                ShardRetrieveBatch::decode(req).map(Request::ShardRetrieveBatch)
            }
            shard_wire::OP_SHARD_UPDATE => ShardUpdate::decode(req).map(Request::ShardUpdate),
            shard_wire::OP_SHARD_UNLOAD => require_graph(req).map(Request::ShardUnload),
            other => Err(bad(format!("unknown op '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_tag_accepts_current_rejects_others() {
        assert_eq!(protocol_version(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap(), None);
        assert_eq!(
            protocol_version(&Json::parse(r#"{"op":"ping","v":1}"#).unwrap()).unwrap(),
            Some(1)
        );
        for bad in [r#"{"op":"ping","v":2}"#, r#"{"op":"ping","v":"x"}"#] {
            let err = protocol_version(&Json::parse(bad).unwrap()).unwrap_err();
            assert_eq!(err.code, "bad_request", "{bad}");
        }
    }

    fn decode_err(line: &str) -> ProtoError {
        match Request::decode(&Json::parse(line).unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("expected decode error for {line}"),
        }
    }

    #[test]
    fn decode_validates_ranges_in_one_place() {
        // Unknown op.
        let err = decode_err(r#"{"op":"warp"}"#);
        assert!(err.message.contains("unknown op"), "{}", err.message);
        // Query limit clamps, threads clamp, defaults fill.
        let q = match Request::decode(
            &Json::parse(r#"{"op":"query","pattern":"(x:l0)","limit":99999999,"threads":1000000}"#)
                .unwrap(),
        )
        .unwrap()
        {
            Request::Query(q) => q,
            _ => panic!("decoded wrong variant"),
        };
        assert_eq!(q.limit, MAX_RESULT_MATCHES);
        assert!(q.threads <= std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        assert_eq!(q.alpha, 0.5);
        // Load ceilings hold at decode, before any build work.
        for bad in [
            r#"{"op":"load_graph","kind":"synthetic","size":999999999}"#,
            r#"{"op":"load_graph","kind":"synthetic","size":100,"max_len":12}"#,
            r#"{"op":"load_graph","kind":"synthetic","size":100,"beta":0}"#,
            r#"{"op":"load_graph","kind":"synthetic","size":100,"shards":99}"#,
        ] {
            assert!(Request::decode(&Json::parse(bad).unwrap()).is_err(), "{bad}");
        }
        // Mutation batches share the worker-side codec.
        let err = decode_err(r#"{"op":"update_graph","ops":[{"op":"warp"}]}"#);
        assert!(err.message.contains("ops[0]"), "{}", err.message);
        // shard_update requires an explicit version.
        let err =
            decode_err(r#"{"op":"shard_update","graph":"g","ops":[{"op":"delete_ref","r":1}]}"#);
        assert!(err.message.contains("version"), "{}", err.message);
    }
}
