//! The epoll readiness-loop front end (Linux only).
//!
//! Thread-per-connection pins one OS thread stack (~8 MiB of address
//! space, a kernel task, two context switches per exchange) on every
//! *idle* connection, which caps `ServerState::max_connections` in the
//! hundreds. This module is the classic answer, hand-rolled over raw
//! `epoll(7)` syscalls because the registry (and with it tokio/mio) is
//! unreachable: **one** event loop owns every socket and an idle
//! connection costs one registered fd.
//!
//! Division of labor:
//!
//! * The **event loop** does only O(bytes) work — non-blocking accept,
//!   byte-level line framing (same `MAX_LINE_BYTES` cap as the thread
//!   front end, partial lines survive across readiness events), and
//!   draining per-connection write buffers. It never parses JSON and
//!   never executes a query, so one slow session cannot stall another
//!   connection's bytes.
//! * A fixed **executor pool** (`ServerState::executor_threads` — sized
//!   so admission, not the executor, is what queues compute) runs
//!   `dispatch` on framed request lines and hands finished replies back
//!   through a completion queue + eventfd wake.
//!
//! Each connection is processed **serially**: one request line in flight
//! at a time, replies in request order, and `EPOLLIN` interest is dropped
//! while a request runs so a pipelining client is backpressured into the
//! socket buffer instead of ballooning server memory. (Request-id
//! multiplexing still works — ids are echoed by `dispatch` — but
//! out-of-order overlap *within* one connection is the thread front end's
//! trade; the event loop's scaling axis is connection count.) Admission
//! semantics are unchanged: permits are taken inside the op handlers,
//! FIFO ticket order included, so `overloaded`/`timeout` replies are
//! byte-identical across front ends.
//!
//! Failure semantics mirror the thread front end: an over-cap request
//! line gets a structured `bad_request` and the connection closes (the
//! stream cannot be resynchronized); EOF with a buffered tail still
//! answers the tail; a connection that stops draining its replies is
//! dropped after `WRITE_STALL`; past `max_connections`, new sockets get
//! a best-effort `overloaded` line and are closed.

use crate::json::obj;
use crate::server::{dispatch, ServerState, MAX_LINE_BYTES};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Raw `epoll(7)` / `eventfd(2)` bindings. Hand-declared because the
/// in-tree workspace has no `libc` crate; the symbols live in the
/// platform libc that `std` already links.
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    // The kernel's epoll_event is 12 bytes; x86-64 declares it
    // __attribute__((packed)) while other architectures use natural
    // alignment — the repr must match or epoll_wait scribbles past the
    // buffer.
    #[cfg(target_arch = "x86_64")]
    #[derive(Clone, Copy)]
    #[repr(C, packed)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[derive(Clone, Copy)]
    #[repr(C)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// A connection that stops draining replies for this long is dropped —
/// the same bound as the thread front end's per-write socket timeout.
const WRITE_STALL: Duration = Duration::from_secs(10);

/// Event-loop tick. Bounds how stale the shutdown check and the
/// write-stall sweep can be; matches the thread handlers' read-poll tick.
const TICK_MS: i32 = 250;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        token: u64,
        events: u32,
    ) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent { events, data: token };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, events)
    }

    fn modify(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, events)
    }

    fn del(&self, fd: RawFd) {
        // Deregistration is best-effort: the fd is about to close, which
        // removes it from the interest set anyway.
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        let _ = unsafe { sys::epoll_ctl(self.fd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Waits one tick; EINTR retries with the same timeout.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            let n = unsafe {
                sys::epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// The executor→loop wake channel: workers bump the counter, the loop
/// sees `TOKEN_WAKE` readable and drains the completion queue.
struct EventFd {
    fd: RawFd,
}

impl EventFd {
    fn new() -> std::io::Result<EventFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    fn signal(&self) {
        let one: u64 = 1;
        let _ =
            unsafe { sys::write(self.fd, (&one as *const u64).cast(), std::mem::size_of::<u64>()) };
    }

    fn drain(&self) {
        let mut val: u64 = 0;
        let _ = unsafe {
            sys::read(self.fd, (&mut val as *mut u64).cast(), std::mem::size_of::<u64>())
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

struct Conn {
    stream: TcpStream,
    /// Read accumulator: partial lines survive across readiness events,
    /// exactly like the thread handler's `Vec<u8>` framing buffer.
    buf: Vec<u8>,
    /// Reply bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// A request line is at the executor; reads are paused until its
    /// reply comes back (serial per connection).
    busy: bool,
    /// Close once `out` drains and no request is in flight.
    closing: bool,
    /// Peer closed its write half; any buffered tail still answers.
    eof: bool,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Set when a flush leaves bytes behind; cleared on progress.
    stalled_since: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            busy: false,
            closing: false,
            eof: false,
            interest: sys::EPOLLIN,
            stalled_since: None,
        }
    }

    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn queue_reply(&mut self, text: &str) {
        self.out.extend_from_slice(text.as_bytes());
        self.out.push(b'\n');
    }

    /// Non-blocking drain of the write buffer. Returns `false` when the
    /// socket is dead.
    fn try_flush(&mut self) -> bool {
        while self.pending_out() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => break,
                Ok(n) => {
                    self.out_pos += n;
                    self.stalled_since = None;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.pending_out() {
            if self.stalled_since.is_none() {
                self.stalled_since = Some(Instant::now());
            }
        } else {
            self.out.clear();
            self.out_pos = 0;
            self.stalled_since = None;
            let _ = self.stream.flush();
        }
        true
    }

    /// Length of the trailing incomplete line (the only part of `buf`
    /// the line cap applies to — complete lines drain promptly).
    fn partial_len(&self) -> usize {
        match self.buf.iter().rposition(|&b| b == b'\n') {
            Some(p) => self.buf.len() - p - 1,
            None => self.buf.len(),
        }
    }
}

fn error_line(code: &str, message: &str) -> String {
    obj().field("ok", false).field("error", code).field("message", message).build().to_string()
}

/// Serves the bound listener on the epoll readiness loop until shutdown.
/// Entered via [`crate::server::Server::serve`] with
/// [`ServeMode::Epoll`](crate::server::ServeMode::Epoll).
pub(crate) fn serve_epoll(listener: TcpListener, state: Arc<ServerState>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let ep = Epoll::new()?;
    let wake = Arc::new(EventFd::new()?);
    ep.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN)?;
    ep.add(wake.fd, TOKEN_WAKE, sys::EPOLLIN)?;

    // Executor pool: framed lines in, finished reply text out. Workers
    // exit when the job sender drops at loop exit.
    type Completions = Arc<Mutex<Vec<(u64, String)>>>;
    let completions: Completions = Arc::new(Mutex::new(Vec::new()));
    let (jobs_tx, jobs_rx) = mpsc::channel::<(u64, String)>();
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    let mut workers = Vec::with_capacity(state.executor_threads);
    for i in 0..state.executor_threads {
        let rx = Arc::clone(&jobs_rx);
        let st = Arc::clone(&state);
        let done = Arc::clone(&completions);
        let wk = Arc::clone(&wake);
        workers.push(std::thread::Builder::new().name(format!("pegserve-exec-{i}")).spawn(
            move || {
                loop {
                    // Hold the receiver lock only while dequeuing, never
                    // while executing.
                    let job = rx.lock().unwrap().recv();
                    let Ok((token, line)) = job else { break };
                    let reply = dispatch(&st, &line).to_string();
                    done.lock().unwrap().push((token, reply));
                    wk.signal();
                }
            },
        )?);
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
    let mut dead: Vec<u64> = Vec::new();

    // Advances one connection's framing: dispatches the next complete
    // (or EOF-tail) line unless a request is already in flight. Blank
    // lines are skipped like the thread handler's.
    let advance = |conn: &mut Conn, token: u64, jobs: &mpsc::Sender<(u64, String)>| {
        while !conn.busy && !conn.closing {
            if let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = conn.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    conn.busy = true;
                    let _ = jobs.send((token, trimmed.to_string()));
                }
            } else if conn.eof {
                let text = String::from_utf8_lossy(&conn.buf);
                let trimmed = text.trim().to_string();
                conn.buf.clear();
                // EOF ends the connection either way; a non-blank tail
                // still gets its answer first.
                conn.closing = true;
                if !trimmed.is_empty() {
                    conn.busy = true;
                    let _ = jobs.send((token, trimmed));
                }
                return;
            } else {
                return;
            }
        }
    };

    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let n = ep.wait(&mut events, TICK_MS)?;
        let mut touched: Vec<u64> = Vec::new();
        for ev in events.iter().take(n).copied() {
            let (token, bits) = (ev.data, ev.events);
            match token {
                TOKEN_LISTENER => loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            if conns.len() >= state.max_connections {
                                // Same contract as the thread front end:
                                // a structured overload line, best-effort
                                // (the fresh socket buffer almost always
                                // takes it), then close.
                                let mut s = stream;
                                let mut text = error_line("overloaded", "connection limit reached");
                                text.push('\n');
                                let _ = s.write_all(text.as_bytes());
                                continue;
                            }
                            let token = next_token;
                            next_token += 1;
                            if ep.add(stream.as_raw_fd(), token, sys::EPOLLIN).is_ok() {
                                conns.insert(token, Conn::new(stream));
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                },
                TOKEN_WAKE => wake.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else { continue };
                    if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                        dead.push(token);
                        continue;
                    }
                    if bits & sys::EPOLLOUT != 0 && !conn.try_flush() {
                        dead.push(token);
                        continue;
                    }
                    if bits & sys::EPOLLIN != 0 && !conn.busy && !conn.closing {
                        let mut chunk = [0u8; 4096];
                        loop {
                            match conn.stream.read(&mut chunk) {
                                Ok(0) => {
                                    conn.eof = true;
                                    break;
                                }
                                Ok(got) => {
                                    conn.buf.extend_from_slice(&chunk[..got]);
                                    if conn.partial_len() > MAX_LINE_BYTES {
                                        // The stream cannot be
                                        // resynchronized past an over-cap
                                        // line: answer and close.
                                        conn.queue_reply(&error_line(
                                            "bad_request",
                                            "request line too long",
                                        ));
                                        conn.buf.clear();
                                        conn.closing = true;
                                        break;
                                    }
                                    // A complete line pauses reading —
                                    // serial per connection.
                                    if conn.buf.contains(&b'\n') {
                                        break;
                                    }
                                }
                                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                                Err(_) => {
                                    dead.push(token);
                                    break;
                                }
                            }
                        }
                        advance(conn, token, &jobs_tx);
                    }
                    touched.push(token);
                }
            }
        }

        // Finished replies: queue bytes, resume framing (more lines may
        // already be buffered), flush what the socket will take now.
        let finished: Vec<(u64, String)> = {
            let mut done = completions.lock().unwrap();
            done.drain(..).collect()
        };
        for (token, reply) in finished {
            let Some(conn) = conns.get_mut(&token) else { continue };
            conn.busy = false;
            conn.queue_reply(&reply);
            advance(conn, token, &jobs_tx);
            if !conn.try_flush() {
                dead.push(token);
                continue;
            }
            touched.push(token);
        }

        // Interest bookkeeping for every connection whose state moved,
        // plus the sweeps: write-stalled connections are dropped, closing
        // connections leave once their replies drain.
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            let Some(conn) = conns.get_mut(&token) else { continue };
            let mut desired = 0u32;
            if !conn.busy && !conn.closing && !conn.eof {
                desired |= sys::EPOLLIN;
            }
            if conn.pending_out() {
                desired |= sys::EPOLLOUT;
            }
            if desired != conn.interest {
                if ep.modify(conn.stream.as_raw_fd(), token, desired).is_err() {
                    dead.push(token);
                    continue;
                }
                conn.interest = desired;
            }
        }
        let now = Instant::now();
        for (&token, conn) in &conns {
            let stalled = conn.stalled_since.is_some_and(|t| now.duration_since(t) > WRITE_STALL);
            let drained = conn.closing && !conn.busy && !conn.pending_out();
            if stalled || drained {
                dead.push(token);
            }
        }
        dead.sort_unstable();
        dead.dedup();
        for token in dead.drain(..) {
            if let Some(conn) = conns.remove(&token) {
                ep.del(conn.stream.as_raw_fd());
            }
        }
    }

    // Shutdown: close every socket, let queued jobs finish, join the
    // executor. Late completions land in a queue nobody reads — their
    // connections are gone with the process about to follow.
    for (_, conn) in conns.drain() {
        ep.del(conn.stream.as_raw_fd());
    }
    drop(jobs_tx);
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}
