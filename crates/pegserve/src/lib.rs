#![warn(missing_docs)]

//! `pegserve` — the multi-client query serving layer.
//!
//! The online pipeline's prepared-plan / session split was built for
//! exactly this: a long-lived server holds one
//! [`PlanCache`](pegmatch::online::PlanCache) per loaded graph + index and
//! opens a `QuerySession` per request, so repeated-shape query mixes (the
//! common case for multi-user traffic) pay planning once per shape instead
//! of once per query. This crate supplies the process around that seam:
//!
//! * [`server`] — `std::net` TCP, line-delimited JSON protocol
//!   (`load_graph`, `prepare`, `query`, `query_batch`, `query_topk`,
//!   `stats`, `shutdown`) behind two interchangeable front ends: classic
//!   thread-per-connection, or the [`reactor`] epoll readiness loop for
//!   connection counts far past what per-connection thread stacks allow.
//!   No async runtime: the registry is unreachable, so tokio is out of
//!   reach, and blocking threads over the persistent `pegpool` compute
//!   pool are all the online phase needs.
//! * [`reactor`] — the hand-rolled epoll front end (Linux only): one
//!   event loop owns every socket, query execution runs on a fixed
//!   executor pool, replies are identical to thread mode byte for byte.
//! * [`admission`] — the query-admission semaphore: bounded concurrent
//!   sessions, bounded wait queue, per-request deadline, structured
//!   `overloaded` / `timeout` rejections so overload degrades predictably
//!   instead of thrashing the pool.
//! * [`client`] — a blocking client (`pegcli client`, tests, and the
//!   `experiments serving-mix` workload driver).
//! * [`json`] — the minimal in-tree JSON value the protocol speaks.
//!
//! Server answers are bit-identical to direct
//! [`QueryPipeline`](pegmatch::online::QueryPipeline) runs with the same
//! graph, threshold, and thread count — serving adds sharing and
//! scheduling, never different results.

pub mod admission;
pub mod client;
pub mod proto;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod statsjson;

/// The protocol's JSON value, re-exported from [`pegwire`] (it moved
/// below this crate so the shard transport can speak the same encoding
/// without a circular dependency).
pub use pegwire::json;

pub use admission::{AdmissionStats, AdmitError};
pub use client::{Client, ClientError};
pub use json::{obj, Json};
pub use server::{
    GraphEntry, GraphSpec, GraphStore, ServeMode, Server, ServerConfig, ServerHandle,
};
