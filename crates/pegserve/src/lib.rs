#![warn(missing_docs)]

//! `pegserve` — the multi-client query serving layer.
//!
//! The online pipeline's prepared-plan / session split was built for
//! exactly this: a long-lived server holds one
//! [`PlanCache`](pegmatch::online::PlanCache) per loaded graph + index and
//! opens a `QuerySession` per request, so repeated-shape query mixes (the
//! common case for multi-user traffic) pay planning once per shape instead
//! of once per query. This crate supplies the process around that seam:
//!
//! * [`server`] — `std::net` TCP, thread-per-connection, line-delimited
//!   JSON protocol (`load_graph`, `prepare`, `query`, `query_topk`,
//!   `stats`, `shutdown`). No async runtime: the registry is unreachable,
//!   so tokio is out of reach, and blocking threads over the persistent
//!   `pegpool` compute pool are all the online phase needs.
//! * [`admission`] — the query-admission semaphore: bounded concurrent
//!   sessions, bounded wait queue, per-request deadline, structured
//!   `overloaded` / `timeout` rejections so overload degrades predictably
//!   instead of thrashing the pool.
//! * [`client`] — a blocking client (`pegcli client`, tests, and the
//!   `experiments serving-mix` workload driver).
//! * [`json`] — the minimal in-tree JSON value the protocol speaks.
//!
//! Server answers are bit-identical to direct
//! [`QueryPipeline`](pegmatch::online::QueryPipeline) runs with the same
//! graph, threshold, and thread count — serving adds sharing and
//! scheduling, never different results.

pub mod admission;
pub mod client;
pub mod server;

/// The protocol's JSON value, re-exported from [`pegwire`] (it moved
/// below this crate so the shard transport can speak the same encoding
/// without a circular dependency).
pub use pegwire::json;

pub use admission::{AdmissionStats, AdmitError};
pub use client::{Client, ClientError};
pub use json::{obj, Json};
pub use server::{GraphEntry, GraphSpec, GraphStore, Server, ServerConfig, ServerHandle};
