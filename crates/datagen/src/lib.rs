#![warn(missing_docs)]

//! `datagen` — workload generators for the paper's evaluation (Section 6).
//!
//! * [`synthetic`] — preferential-attachment reference networks with
//!   Zipf-skewed label/edge probabilities, reference-set injection
//!   (k groups × s nodes × r pairs), and a degree-of-uncertainty knob —
//!   the paper's synthetic setting (50k…1m references, relations = 5×).
//! * [`queries`] — random pattern queries `q(n, m)` and data-driven queries
//!   sampled from an entity graph (guaranteed to have matches at low α).
//! * [`patterns`] — the five real-world pattern queries of Figure 8
//!   (BF1, BF2, GR, ST, TR).
//! * [`dblp`] / [`imdb`] — synthetic stand-ins for the paper's real-world
//!   datasets, preserving their shapes: a DBLP-like collaboration network
//!   with *label-correlated* edge probabilities, and an IMDB-like
//!   co-starring network with independent edge probabilities (see DESIGN.md
//!   for the substitution rationale).

pub mod dblp;
pub mod imdb;
pub mod patterns;
pub mod queries;
pub mod synthetic;
pub mod zipf;

pub use dblp::{dblp_like, DblpConfig};
pub use imdb::{imdb_like, ImdbConfig};
pub use patterns::{pattern_query, Pattern};
pub use queries::{permuted_query, random_query, sampled_query, QuerySpec};
pub use synthetic::{synthetic_refgraph, SyntheticConfig};
