//! A DBLP-like collaboration network (Section 6.3 substitute).
//!
//! The paper's DBLP workload: authors labeled with a distribution over
//! research areas (Databases / Machine Learning / Software Engineering)
//! derived from publication venues; collaboration edges with base
//! probability in [0.5, 1] scaled by 0.8 when the endpoint areas differ
//! (**label-correlated** edge probabilities — the CPT code path); reference
//! sets from name-similarity duplicates. We synthesize a graph with the same
//! shape (default 16.8k nodes / ~40.3k edges).

use crate::zipf::zipf_label_dist;
use graphstore::dist::{CondTable, EdgeProbability, LabelDist};
use graphstore::{Label, LabelTable, RefGraph, RefId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DBLP-like generator parameters.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Author count (paper: 16.8k).
    pub n_authors: usize,
    /// Collaboration edge count (paper: 40.3k).
    pub n_edges: usize,
    /// Fraction of authors with a name-similar duplicate (drives identity
    /// uncertainty).
    pub dup_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self { n_authors: 16_800, n_edges: 40_300, dup_fraction: 0.01, seed: 7 }
    }
}

impl DblpConfig {
    /// A scaled-down version preserving the density and uncertainty mix.
    pub fn scaled(n_authors: usize) -> Self {
        let full = Self::default();
        Self { n_authors, n_edges: n_authors * full.n_edges / full.n_authors, ..full }
    }
}

/// Generates the DBLP-like reference network with correlated edges.
pub fn dblp_like(cfg: &DblpConfig) -> RefGraph {
    assert!(cfg.n_authors >= 4);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let table = LabelTable::from_names(["D", "M", "S"]);
    let n_labels = table.len();
    let mut g = RefGraph::new(table);

    // Authors: area distribution from simulated venue counts. Most authors
    // publish predominantly in one area.
    for _ in 0..cfg.n_authors {
        let dist = if rng.gen_bool(0.7) {
            // Dominant area with some spillover.
            let main = rng.gen_range(0..n_labels);
            let spill = rng.gen_range(0.0..0.3);
            let mut pairs = vec![(Label(main as u16), 1.0 - spill)];
            let other = (main + 1 + rng.gen_range(0..n_labels - 1)) % n_labels;
            pairs.push((Label(other as u16), spill));
            LabelDist::from_pairs(&pairs, n_labels)
        } else {
            zipf_label_dist(&mut rng, n_labels)
        };
        g.add_ref(dist);
    }

    // Collaboration edges: preferential attachment for a heavy-tailed
    // co-author degree distribution; CPT = base for agreeing areas,
    // 0.8·base otherwise (the paper's correlation scheme).
    let mut endpoints: Vec<u32> = Vec::new();
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < cfg.n_edges && guard < 20 * cfg.n_edges {
        guard += 1;
        let a = rng.gen_range(0..cfg.n_authors) as u32;
        let b = if endpoints.is_empty() || rng.gen_bool(0.3) {
            rng.gen_range(0..cfg.n_authors) as u32
        } else {
            endpoints[rng.gen_range(0..endpoints.len())]
        };
        if a == b || g.edge_between(RefId(a), RefId(b)).is_some() {
            continue;
        }
        // Base probability from the number of collaborations.
        let collaborations = 1 + rng.gen_range(0..10);
        let base = 0.5 + 0.5 * (collaborations as f64 / 10.0);
        let cpt = CondTable::from_fn(n_labels, |x, y| if x == y { base } else { 0.8 * base });
        g.add_edge(RefId(a), RefId(b), EdgeProbability::Conditional(cpt));
        endpoints.push(a);
        endpoints.push(b);
        added += 1;
    }

    // Name-similarity duplicates: pair sets with high merge posterior.
    let dups = ((cfg.n_authors as f64) * cfg.dup_fraction) as usize;
    let mut used: Vec<u32> = Vec::new();
    let mut made = 0usize;
    let mut guard = 0usize;
    while made < dups && guard < 20 * dups.max(1) {
        guard += 1;
        let a = rng.gen_range(0..cfg.n_authors) as u32;
        let b = rng.gen_range(0..cfg.n_authors) as u32;
        if a == b || used.contains(&a) || used.contains(&b) {
            continue;
        }
        let q = rng.gen_range(0.5..0.95);
        g.add_pair_set_with_posterior(RefId(a), RefId(b), q);
        used.push(a);
        used.push(b);
        made += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegmatch::model::PegBuilder;

    #[test]
    fn scaled_generator_shape() {
        let cfg = DblpConfig::scaled(1000);
        let g = dblp_like(&cfg);
        assert_eq!(g.n_refs(), 1000);
        let e = g.n_edges();
        assert!((2000..=2600).contains(&e), "edges = {e}"); // ~2.4 per author
        assert!(!g.ref_sets().is_empty());
    }

    #[test]
    fn edges_are_conditional() {
        let g = dblp_like(&DblpConfig::scaled(200));
        assert!(g.edges().iter().all(|e| matches!(e.prob, EdgeProbability::Conditional(_))));
        // Agreement beats disagreement by the 0.8 factor.
        let e = &g.edges()[0];
        let same = e.prob.prob(Label(0), Label(0));
        let diff = e.prob.prob(Label(0), Label(1));
        assert!((diff - 0.8 * same).abs() < 1e-12);
        assert!((0.5..=1.0).contains(&same));
    }

    #[test]
    fn builds_peg_with_identity_uncertainty() {
        let g = dblp_like(&DblpConfig::scaled(500));
        let peg = PegBuilder::new().build(&g).unwrap();
        assert!(peg.existence.n_components() > 0);
    }
}
