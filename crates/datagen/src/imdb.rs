//! An IMDB-like co-starring network (Section 6.3 substitute).
//!
//! The paper's IMDB workload: actors labeled with a distribution over four
//! movie genres (Drama, Comedy, Family, Action) derived from their
//! filmography; co-starring edges with **independent** probabilities from
//! co-star counts; identity uncertainty from name duplicates/misspellings.
//! Shape target: ~90.6k nodes / ~936k edges (avg degree ≈ 20).

use graphstore::dist::{EdgeProbability, LabelDist};
use graphstore::{Label, LabelTable, RefGraph, RefId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// IMDB-like generator parameters.
#[derive(Clone, Debug)]
pub struct ImdbConfig {
    /// Actor count (paper: 90,612).
    pub n_actors: usize,
    /// Co-star edge count (paper: 936,308).
    pub n_edges: usize,
    /// Fraction of actors with a duplicate mention.
    pub dup_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self { n_actors: 90_612, n_edges: 936_308, dup_fraction: 0.005, seed: 13 }
    }
}

impl ImdbConfig {
    /// A scaled-down version preserving density.
    pub fn scaled(n_actors: usize) -> Self {
        let full = Self::default();
        Self { n_actors, n_edges: n_actors * full.n_edges / full.n_actors, ..full }
    }
}

/// Generates the IMDB-like reference network with independent edges.
pub fn imdb_like(cfg: &ImdbConfig) -> RefGraph {
    assert!(cfg.n_actors >= 4);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let table = LabelTable::from_names(["Drama", "Comedy", "Family", "Action"]);
    let n_labels = table.len();
    let mut g = RefGraph::new(table);

    // Actors: genre distribution from simulated filmography counts.
    for _ in 0..cfg.n_actors {
        let mut counts = [0u32; 4];
        let movies = 1 + rng.gen_range(0..20);
        // A preferred genre plus occasional others.
        let fav = rng.gen_range(0..n_labels);
        for _ in 0..movies {
            let genre = if rng.gen_bool(0.6) { fav } else { rng.gen_range(0..n_labels) };
            counts[genre] += 1;
        }
        let total: u32 = counts.iter().sum();
        let pairs: Vec<(Label, f64)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Label(i as u16), c as f64 / total as f64))
            .collect();
        g.add_ref(LabelDist::from_pairs(&pairs, n_labels));
    }

    // Co-star edges with preferential attachment; independent probability
    // grows with the number of shared movies.
    let mut endpoints: Vec<u32> = Vec::new();
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < cfg.n_edges && guard < 20 * cfg.n_edges {
        guard += 1;
        let a = rng.gen_range(0..cfg.n_actors) as u32;
        let b = if endpoints.is_empty() || rng.gen_bool(0.3) {
            rng.gen_range(0..cfg.n_actors) as u32
        } else {
            endpoints[rng.gen_range(0..endpoints.len())]
        };
        if a == b || g.edge_between(RefId(a), RefId(b)).is_some() {
            continue;
        }
        let costars = 1 + rng.gen_range(0..5);
        let p = 1.0 - 0.5f64.powi(costars); // 0.5, 0.75, ..., saturating
        g.add_edge(RefId(a), RefId(b), EdgeProbability::Independent(p));
        endpoints.push(a);
        endpoints.push(b);
        added += 1;
    }

    // Duplicate mentions.
    let dups = ((cfg.n_actors as f64) * cfg.dup_fraction) as usize;
    let mut used: Vec<u32> = Vec::new();
    let mut made = 0usize;
    let mut guard = 0usize;
    while made < dups && guard < 20 * dups.max(1) {
        guard += 1;
        let a = rng.gen_range(0..cfg.n_actors) as u32;
        let b = rng.gen_range(0..cfg.n_actors) as u32;
        if a == b || used.contains(&a) || used.contains(&b) {
            continue;
        }
        let q = rng.gen_range(0.6..0.98);
        g.add_pair_set_with_posterior(RefId(a), RefId(b), q);
        used.push(a);
        used.push(b);
        made += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegmatch::model::PegBuilder;

    #[test]
    fn scaled_shape() {
        let g = imdb_like(&ImdbConfig::scaled(1000));
        assert_eq!(g.n_refs(), 1000);
        let e = g.n_edges();
        // ~10.3 edges per actor.
        assert!((9000..=10_500).contains(&e), "edges = {e}");
    }

    #[test]
    fn edges_are_independent() {
        let g = imdb_like(&ImdbConfig::scaled(300));
        assert!(g.edges().iter().all(|e| matches!(e.prob, EdgeProbability::Independent(_))));
        assert!(g.edges().iter().all(|e| e.prob.max_prob() >= 0.5));
    }

    #[test]
    fn actors_have_valid_genre_distributions() {
        let g = imdb_like(&ImdbConfig::scaled(200));
        for r in g.ref_ids() {
            assert!(g.reference(r).labels.validate());
        }
        let peg = PegBuilder::new().build(&g).unwrap();
        assert!(peg.graph.n_nodes() >= 200);
    }
}
