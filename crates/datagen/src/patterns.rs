//! The Figure-8 pattern queries (BF1, BF2, GR, ST, TR).
//!
//! The figure is not fully recoverable from the paper's text source; the
//! shapes below follow the names and stated node counts (see DESIGN.md):
//!
//! * **BF1** — butterfly: two triangles sharing a center (5 nodes, 6 edges),
//! * **BF2** — wider butterfly: two diamonds sharing a center (7 nodes, 8 edges),
//! * **GR**  — group: a 4-clique with a pendant pair (6 nodes, 8 edges),
//! * **ST**  — star: a center with 4 leaves (5 nodes, 4 edges),
//! * **TR**  — tree: a depth-2 binary tree (7 nodes, 6 edges).
//!
//! Labels are drawn from the three research-area labels (D, M, S) the paper
//! uses for DBLP; for IMDB-style workloads pass the same label for every
//! node (co-starring within one genre).

use graphstore::Label;
use pegmatch::error::PegError;
use pegmatch::query::{QNode, QueryGraph};

/// The five Figure-8 patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Butterfly 1: two triangles sharing a node.
    Bf1,
    /// Butterfly 2: two diamonds sharing a node.
    Bf2,
    /// Group: 4-clique plus a pendant pair.
    Gr,
    /// Star: center plus four leaves.
    St,
    /// Tree: depth-2 binary tree.
    Tr,
}

impl Pattern {
    /// All five patterns in the paper's display order.
    pub const ALL: [Pattern; 5] =
        [Pattern::Bf1, Pattern::Bf2, Pattern::Gr, Pattern::St, Pattern::Tr];

    /// The paper's axis label for the pattern.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Bf1 => "BF1",
            Pattern::Bf2 => "BF2",
            Pattern::Gr => "GR",
            Pattern::St => "ST",
            Pattern::Tr => "TR",
        }
    }
}

/// Builds a pattern query over labels `(d, m, s)` — the DBLP research areas
/// (Databases, Machine Learning, Software Engineering).
pub fn pattern_query(p: Pattern, d: Label, m: Label, s: Label) -> Result<QueryGraph, PegError> {
    let (labels, edges): (Vec<Label>, Vec<(QNode, QNode)>) = match p {
        Pattern::Bf1 => (vec![s, d, m, d, m], vec![(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4)]),
        Pattern::Bf2 => (
            vec![s, d, m, d, d, m, d],
            vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (5, 6), (6, 0)],
        ),
        Pattern::Gr => (
            vec![m, m, s, d, d, d],
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (2, 4), (4, 5)],
        ),
        Pattern::St => (vec![s, d, d, m, m], vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
        Pattern::Tr => {
            (vec![s, d, d, m, m, m, m], vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)])
        }
    };
    QueryGraph::new(labels, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_as_documented() {
        let (d, m, s) = (Label(0), Label(1), Label(2));
        let sizes: Vec<(usize, usize)> = Pattern::ALL
            .iter()
            .map(|&p| {
                let q = pattern_query(p, d, m, s).unwrap();
                (q.n_nodes(), q.n_edges())
            })
            .collect();
        assert_eq!(sizes, vec![(5, 6), (7, 8), (6, 8), (5, 4), (7, 6)]);
    }

    #[test]
    fn names_match() {
        assert_eq!(Pattern::Bf1.name(), "BF1");
        assert_eq!(Pattern::Tr.name(), "TR");
        assert_eq!(Pattern::ALL.len(), 5);
    }

    #[test]
    fn uniform_labels_accepted() {
        // IMDB-style: all nodes share one genre label.
        let g = Label(3);
        for p in Pattern::ALL {
            let q = pattern_query(p, g, g, g).unwrap();
            assert!(q.n_nodes() >= 5);
        }
    }
}
