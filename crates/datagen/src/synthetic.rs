//! Synthetic reference networks (the paper's Section 6 setting).
//!
//! Structure from the Barabási–Albert preferential-attachment model;
//! probabilities Zipf-skewed; identity uncertainty injected as `k` node
//! groups of size `s` with `r` random pairs each becoming reference sets
//! (so sets have size 2 and existence components have at most `s` nodes).

use crate::zipf::{zipf_label, zipf_label_dist};
use graphstore::dist::{EdgeProbability, LabelDist};
use graphstore::{LabelTable, RefGraph, RefId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of references (the paper: 50k, 100k, 500k, 1m).
    pub n_refs: usize,
    /// Relations per reference (the paper: 5×).
    pub relations_factor: usize,
    /// Label alphabet size.
    pub n_labels: usize,
    /// Fraction of references/relations/sets carrying a *non-trivial*
    /// probability distribution (the paper's degree of uncertainty, 20%
    /// unless stated otherwise).
    pub uncertainty: f64,
    /// Number of identity groups `k` (the paper: refs/1000).
    pub k_groups: usize,
    /// Nodes per group `s` (the paper: 4).
    pub group_size: usize,
    /// Reference-set pairs per group `r` (the paper: 4).
    pub pairs_per_group: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's parameterization for a given reference count.
    pub fn paper(n_refs: usize) -> Self {
        Self {
            n_refs,
            relations_factor: 5,
            n_labels: 5,
            uncertainty: 0.2,
            k_groups: (n_refs / 1000).max(1),
            group_size: 4,
            pairs_per_group: 4,
            seed: 42,
        }
    }

    /// Same, with an explicit degree of uncertainty (Figures 6(e)/(f)).
    pub fn paper_with_uncertainty(n_refs: usize, uncertainty: f64) -> Self {
        Self { uncertainty, ..Self::paper(n_refs) }
    }
}

/// Generates a reference network per the configuration.
///
/// # Example
///
/// ```
/// use datagen::{synthetic_refgraph, SyntheticConfig};
/// let g = synthetic_refgraph(&SyntheticConfig::paper(500));
/// assert_eq!(g.n_refs(), 500);
/// assert!(g.n_edges() >= 2000); // relations ≈ 5× references
/// ```
pub fn synthetic_refgraph(cfg: &SyntheticConfig) -> RefGraph {
    assert!(cfg.n_refs >= 2, "need at least two references");
    assert!((0.0..=1.0).contains(&cfg.uncertainty));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let names: Vec<String> = (0..cfg.n_labels).map(|i| format!("l{i}")).collect();
    let table = LabelTable::from_names(&names);
    let n_labels = table.len();
    let mut g = RefGraph::new(table);

    // --- Node labels: uncertain fraction gets a full distribution. ---
    for _ in 0..cfg.n_refs {
        let dist = if rng.gen_bool(cfg.uncertainty) {
            zipf_label_dist(&mut rng, n_labels)
        } else {
            LabelDist::delta(zipf_label(&mut rng, n_labels), n_labels)
        };
        g.add_ref(dist);
    }

    // --- Preferential attachment edges. ---
    // The attachment list holds every edge endpoint; sampling from it is
    // proportional to degree (plus one smoothing entry per node).
    let m = cfg.relations_factor.max(1);
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * cfg.n_refs * m);
    let mut added_edges = 0usize;
    let target_edges = cfg.n_refs * cfg.relations_factor;
    // Seed clique over the first m+1 nodes (or a single edge for tiny n).
    let seed_n = (m + 1).min(cfg.n_refs);
    for a in 0..seed_n {
        for b in a + 1..seed_n {
            push_edge(&mut g, &mut rng, cfg, a as u32, b as u32, n_labels);
            endpoints.push(a as u32);
            endpoints.push(b as u32);
            added_edges += 1;
        }
    }
    for v in seed_n..cfg.n_refs {
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m && guard < 20 * m {
            guard += 1;
            let target = if endpoints.is_empty() || rng.gen_bool(0.05) {
                rng.gen_range(0..v) as u32
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if target == v as u32 {
                continue;
            }
            if g.edge_between(RefId(v as u32), RefId(target)).is_some() {
                continue;
            }
            push_edge(&mut g, &mut rng, cfg, v as u32, target, n_labels);
            endpoints.push(v as u32);
            endpoints.push(target);
            added_edges += 1;
            attached += 1;
        }
    }
    // Top up with random edges until the target count (BA gives ~n·m).
    let mut guard = 0usize;
    while added_edges < target_edges && guard < 10 * target_edges {
        guard += 1;
        let a = rng.gen_range(0..cfg.n_refs) as u32;
        let b = rng.gen_range(0..cfg.n_refs) as u32;
        if a == b || g.edge_between(RefId(a), RefId(b)).is_some() {
            continue;
        }
        push_edge(&mut g, &mut rng, cfg, a, b, n_labels);
        added_edges += 1;
    }

    // --- Identity groups: k groups of s nodes, r pairs each. ---
    for _ in 0..cfg.k_groups {
        let mut group: Vec<u32> = Vec::with_capacity(cfg.group_size);
        while group.len() < cfg.group_size.min(cfg.n_refs) {
            let v = rng.gen_range(0..cfg.n_refs) as u32;
            if !group.contains(&v) {
                group.push(v);
            }
        }
        let mut pairs_done = 0usize;
        let mut used: Vec<(u32, u32)> = Vec::new();
        let mut guard = 0usize;
        while pairs_done < cfg.pairs_per_group && guard < 50 {
            guard += 1;
            let a = group[rng.gen_range(0..group.len())];
            let b = group[rng.gen_range(0..group.len())];
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if used.contains(&key) {
                continue;
            }
            used.push(key);
            let q = if rng.gen_bool(cfg.uncertainty) {
                rng.gen_range(0.05..0.95)
            } else {
                // Deterministically merged pair.
                1.0
            };
            g.add_pair_set_with_posterior(RefId(key.0), RefId(key.1), q);
            pairs_done += 1;
        }
    }
    g
}

fn push_edge(
    g: &mut RefGraph,
    rng: &mut StdRng,
    cfg: &SyntheticConfig,
    a: u32,
    b: u32,
    _n_labels: usize,
) {
    let p = if rng.gen_bool(cfg.uncertainty) { rng.gen_range(0.05..1.0) } else { 1.0 };
    g.add_edge(RefId(a), RefId(b), EdgeProbability::Independent(p));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegmatch::model::PegBuilder;

    #[test]
    fn paper_shape_small() {
        let cfg = SyntheticConfig::paper(1000);
        let g = synthetic_refgraph(&cfg);
        assert_eq!(g.n_refs(), 1000);
        // Edge count within 20% of 5× (duplicates are retried, not dropped).
        let e = g.n_edges();
        assert!((4000..=5100).contains(&e), "edges = {e}");
        assert!(!g.ref_sets().is_empty());
        assert!(g.ref_sets().iter().all(|s| s.members.len() == 2));
    }

    #[test]
    fn determinism_by_seed() {
        let a = synthetic_refgraph(&SyntheticConfig::paper(500));
        let b = synthetic_refgraph(&SyntheticConfig::paper(500));
        assert_eq!(a.n_edges(), b.n_edges());
        let c = synthetic_refgraph(&SyntheticConfig { seed: 7, ..SyntheticConfig::paper(500) });
        // Different seeds virtually always give different edge sets; compare
        // a robust summary.
        let sum_a: u64 = a.edges().iter().map(|e| (e.a.0 + e.b.0) as u64).sum();
        let sum_c: u64 = c.edges().iter().map(|e| (e.a.0 + e.b.0) as u64).sum();
        assert_ne!(sum_a, sum_c);
    }

    #[test]
    fn uncertainty_knob_changes_distributions() {
        let low = synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(400, 0.0));
        let high = synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(400, 1.0));
        let uncertain_nodes = |g: &RefGraph| {
            g.ref_ids().filter(|&r| g.reference(r).labels.support_size() > 1).count()
        };
        assert_eq!(uncertain_nodes(&low), 0);
        assert!(uncertain_nodes(&high) > 300);
        let certain_edges =
            |g: &RefGraph| g.edges().iter().filter(|e| e.prob.max_prob() >= 1.0).count();
        assert_eq!(certain_edges(&low), low.n_edges());
        assert!(certain_edges(&high) < high.n_edges() / 10);
    }

    #[test]
    fn builds_into_valid_peg() {
        let g = synthetic_refgraph(&SyntheticConfig::paper(800));
        let peg = PegBuilder::new().build(&g).unwrap();
        assert!(peg.graph.n_nodes() >= 800);
        // Merged pair entities exist beyond the singletons.
        assert!(peg.graph.n_nodes() > 800);
        assert!(peg.existence.n_components() > 0);
    }
}
