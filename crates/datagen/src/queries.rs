//! Random query generation: `q(n, m)` patterns (Section 6.2) and
//! data-driven queries sampled from an entity graph.

use crate::zipf::zipf_label;
use graphstore::{EntityGraph, EntityId, Label};
use pegmatch::query::{QNode, QueryGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A query-size specification `q(n, m)`: `n` nodes, `m` edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Node count.
    pub n: usize,
    /// Edge count (clamped to `[n−1, n(n−1)/2]`).
    pub m: usize,
}

impl QuerySpec {
    /// The paper's convention: `q(n, m)`.
    pub fn new(n: usize, m: usize) -> Self {
        Self { n, m }
    }

    fn clamped_edges(&self) -> usize {
        let max = self.n * (self.n - 1) / 2;
        self.m.clamp(self.n.saturating_sub(1), max)
    }
}

/// Generates a random connected query with labels Zipf-sampled over the
/// alphabet (the paper's synthetic query workload).
pub fn random_query(spec: QuerySpec, n_labels: usize, seed: u64) -> QueryGraph {
    assert!(spec.n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<Label> = (0..spec.n).map(|_| zipf_label(&mut rng, n_labels)).collect();
    if spec.n == 1 {
        return QueryGraph::new(labels, vec![]).expect("single node query");
    }
    // Random spanning tree first (guarantees connectivity)...
    let mut edges: Vec<(QNode, QNode)> = Vec::new();
    for v in 1..spec.n {
        let u = rng.gen_range(0..v);
        edges.push((u as QNode, v as QNode));
    }
    // ...then random extra edges up to m.
    let target = spec.clamped_edges();
    let mut guard = 0usize;
    while edges.len() < target && guard < 50 * target {
        guard += 1;
        let a = rng.gen_range(0..spec.n) as QNode;
        let b = rng.gen_range(0..spec.n) as QNode;
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if edges.iter().any(|&(x, y)| (x.min(y), x.max(y)) == key) {
            continue;
        }
        edges.push(key);
    }
    QueryGraph::new(labels, edges).expect("generated query must validate")
}

/// The query with its variables renumbered through a seeded random
/// permutation (xorshift Fisher–Yates) — an isomorphic copy with a
/// different query text. Repeated-shape serving mixes are built from
/// exactly these: many users writing the same pattern with their own
/// variable numbering, all hitting one plan-cache entry; the
/// canonicalization tests use the same construction as ground truth for
/// shape equality.
pub fn permuted_query(q: &QueryGraph, seed: u64) -> QueryGraph {
    let n = q.n_nodes();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        perm.swap(i, (state % (i as u64 + 1)) as usize);
    }
    let mut labels = vec![Label(0); n];
    for (old, &new) in perm.iter().enumerate() {
        labels[new] = q.label(old as QNode);
    }
    let edges: Vec<(QNode, QNode)> = q
        .edges()
        .iter()
        .map(|&(u, v)| {
            let (a, b) = (perm[u as usize] as QNode, perm[v as usize] as QNode);
            (a.min(b), a.max(b))
        })
        .collect();
    QueryGraph::new(labels, edges).expect("renumbering preserves validity")
}

/// Samples a connected subgraph of `graph` and lifts it into a query, using
/// labels from the sampled nodes' supports — such a query is guaranteed to
/// have at least one match at a sufficiently low threshold.
pub fn sampled_query(graph: &EntityGraph, spec: QuerySpec, seed: u64) -> Option<QueryGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    if graph.n_nodes() == 0 {
        return None;
    }
    // Random-walk growth of a connected node set.
    for _attempt in 0..32 {
        let start = EntityId(rng.gen_range(0..graph.n_nodes() as u32));
        let mut nodes: Vec<EntityId> = vec![start];
        let mut frontier: Vec<EntityId> = vec![start];
        while nodes.len() < spec.n && !frontier.is_empty() {
            let fi = rng.gen_range(0..frontier.len());
            let v = frontier[fi];
            let nbrs: Vec<EntityId> = graph
                .neighbors(v)
                .iter()
                .map(|&u| EntityId(u))
                .filter(|u| !nodes.contains(u) && !graph.shares_ref_with_any(*u, &nodes))
                .collect();
            if nbrs.is_empty() {
                frontier.swap_remove(fi);
                continue;
            }
            let u = nbrs[rng.gen_range(0..nbrs.len())];
            nodes.push(u);
            frontier.push(u);
        }
        if nodes.len() < spec.n {
            continue;
        }
        // Collect available edges among the sample.
        let mut avail: Vec<(QNode, QNode)> = Vec::new();
        for (i, &u) in nodes.iter().enumerate() {
            for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
                if graph.edge_between(u, v).is_some() {
                    avail.push((i as QNode, j as QNode));
                }
            }
        }
        // Must be able to reach m edges and stay connected; greedily keep a
        // spanning skeleton then add random extras.
        let target = spec.clamped_edges().min(avail.len());
        if target + 1 < spec.n {
            continue;
        }
        // Shuffle and pick a connected subset: spanning tree via union-find.
        for i in (1..avail.len()).rev() {
            let j = rng.gen_range(0..=i);
            avail.swap(i, j);
        }
        let mut parent: Vec<usize> = (0..spec.n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        let mut chosen: Vec<(QNode, QNode)> = Vec::new();
        let mut extra: Vec<(QNode, QNode)> = Vec::new();
        for &(a, b) in &avail {
            let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
            if ra != rb {
                parent[ra] = rb;
                chosen.push((a, b));
            } else {
                extra.push((a, b));
            }
        }
        let roots: std::collections::HashSet<usize> =
            (0..spec.n).map(|x| find(&mut parent, x)).collect();
        if roots.len() != 1 {
            continue;
        }
        for e in extra {
            if chosen.len() >= target {
                break;
            }
            chosen.push(e);
        }
        // Labels from the sampled nodes' supports.
        let labels: Vec<Label> = nodes
            .iter()
            .map(|&v| {
                let support: Vec<Label> = graph.node(v).labels.support().collect();
                support[rng.gen_range(0..support.len())]
            })
            .collect();
        if let Ok(q) = QueryGraph::new(labels, chosen) {
            return Some(q);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_query_respects_spec() {
        for (n, m) in [(3, 3), (5, 10), (7, 21), (10, 40), (15, 60)] {
            let q = random_query(QuerySpec::new(n, m), 5, 11);
            assert_eq!(q.n_nodes(), n);
            let max = n * (n - 1) / 2;
            assert_eq!(q.n_edges(), m.min(max).max(n - 1));
        }
    }

    #[test]
    fn random_query_single_node() {
        let q = random_query(QuerySpec::new(1, 0), 3, 5);
        assert_eq!(q.n_nodes(), 1);
        assert_eq!(q.n_edges(), 0);
    }

    #[test]
    fn random_query_deterministic_by_seed() {
        let a = random_query(QuerySpec::new(6, 9), 4, 3);
        let b = random_query(QuerySpec::new(6, 9), 4, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_query_has_a_match() {
        use crate::synthetic::{synthetic_refgraph, SyntheticConfig};
        use pegmatch::matcher::match_bruteforce;
        use pegmatch::model::PegBuilder;
        let refs = synthetic_refgraph(&SyntheticConfig::paper(300));
        let peg = PegBuilder::new().build(&refs).unwrap();
        let q = sampled_query(&peg.graph, QuerySpec::new(4, 4), 17).expect("sampled query");
        assert_eq!(q.n_nodes(), 4);
        let ms = match_bruteforce(&peg, &q, 1e-9);
        assert!(!ms.is_empty(), "sampled query must match at tiny threshold");
    }
}
