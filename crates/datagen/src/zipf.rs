//! Zipf-skewed probability generation (the paper's label/edge probability
//! scheme: random draws weighted by `1/i`, then normalized).

use graphstore::{Label, LabelDist};
use rand::Rng;

/// Generates the paper's skewed random distribution over `n` labels:
/// `p_i ~ U(0,1)`, `p'_i = p_i / i`, normalized, then assigned to labels in
/// a random permutation.
pub fn zipf_label_dist<R: Rng>(rng: &mut R, n: usize) -> LabelDist {
    assert!(n > 0);
    let mut probs: Vec<f64> =
        (0..n).map(|i| rng.gen_range(0.0f64..1.0).max(1e-6) / (i + 1) as f64).collect();
    let total: f64 = probs.iter().sum();
    for p in &mut probs {
        *p /= total;
    }
    // Random assignment of the skewed masses to labels.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let pairs: Vec<(Label, f64)> =
        perm.into_iter().zip(probs).map(|(l, p)| (Label(l as u16), p)).collect();
    LabelDist::from_pairs(&pairs, n)
}

/// Samples one label with Zipf-ish skew (`1/i` weights over a random
/// permutation fixed by the caller's RNG stream).
pub fn zipf_label<R: Rng>(rng: &mut R, n: usize) -> Label {
    debug_assert!(n > 0);
    let total: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut x = rng.gen_range(0.0..total);
    for i in 0..n {
        let w = 1.0 / (i + 1) as f64;
        if x < w {
            return Label(i as u16);
        }
        x -= w;
    }
    Label((n - 1) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dist_is_normalized() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 20] {
            let d = zipf_label_dist(&mut rng, n);
            assert!(d.validate(), "n = {n}");
            assert_eq!(d.n_labels(), n);
        }
    }

    #[test]
    fn zipf_label_is_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..20_000 {
            counts[zipf_label(&mut rng, 5).idx()] += 1;
        }
        // 1/1 weight beats 1/5 weight decisively.
        assert!(counts[0] > counts[4] * 2, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }
}
