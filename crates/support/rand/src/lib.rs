//! In-tree stand-in for the `rand` crate (0.8-style API subset).
//!
//! The build environment has no access to a crates registry, so the pieces
//! of `rand` this workspace uses are implemented here: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! the [`rngs::StdRng`] / [`rngs::SmallRng`] generators (both xoshiro256++
//! seeded via splitmix64), and [`seq::SliceRandom::shuffle`].
//!
//! Streams differ from crates.io `rand`; everything in this workspace that
//! consumes seeded randomness asserts distributional or structural
//! properties, never exact sequences from the upstream implementation.

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics on an empty range, mirroring `rand`.
    fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of [0, 1]");
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from their "standard" distribution (`rng.gen()`).
pub trait Standard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        next_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. The element type is a trait
/// parameter (not an associated type) so the *expected output type* can
/// drive inference of unsuffixed literals, as with `rand`'s `SampleRange`.
pub trait UniformRange<T> {
    /// Draws a uniform element of the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling: multiply-shift (Lemire) keeps the
/// modulo bias below 2^-64, indistinguishable at our scales.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl UniformRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl UniformRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = next_f64(rng) as $t;
                self.start + f * (self.end - self.start)
            }
        }
        impl UniformRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Closed-interval scaling; the endpoint itself is reachable.
                let f = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + f * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, 256-bit state, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256PlusPlus {
        s: [u64; 4],
    }

    impl Xoshiro256PlusPlus {
        fn from_splitmix(seed: u64) -> Self {
            // splitmix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for Xoshiro256PlusPlus {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for Xoshiro256PlusPlus {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    /// The workspace's "standard" generator.
    pub type StdRng = Xoshiro256PlusPlus;
    /// The workspace's "small/fast" generator (same core; the distinction
    /// only matters for the crates.io implementations).
    pub type SmallRng = Xoshiro256PlusPlus;
}

/// Slice sampling/shuffling helpers.
pub mod seq {
    use super::{RngCore, UniformRange};

    /// The `shuffle`/`choose` extension trait for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_from(rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut c = StdRng::seed_from_u64(10);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c} far from 10k");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
