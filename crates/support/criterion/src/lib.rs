//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so the API
//! subset the `bench` crate's benchmarks use is implemented here:
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], and [`black_box`].
//!
//! Statistics are simpler than upstream (no bootstrap/outlier analysis):
//! each benchmark warms up for `warm_up_time`, then runs `sample_size`
//! samples sized to fit `measurement_time`, reporting min/mean/median.
//! Benchmark targets must set `harness = false`, exactly as with upstream
//! criterion. A benchmark name filter may be passed as the first CLI
//! argument (substring match), and `--bench`/`--test` flags from the cargo
//! harness protocol are accepted and ignored.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { function: function.into(), parameter: parameter.to_string() }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { function: s.to_string(), parameter: String::new() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { function: s, parameter: String::new() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter =
            std::env::args().skip(1).find(|a| !a.starts_with('-')).filter(|a| !a.is_empty());
        Self { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
            printed_header: false,
        }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    printed_header: bool,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark taking only the bencher.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(&id, |b| f(b, input));
        self
    }

    /// Closes the group (parity with upstream; all work already happened).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &BenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.render());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if !self.printed_header {
            println!("\n{}", self.name);
            self.printed_header = true;
        }

        let time_once = |f: &mut F, iters: u64| -> Duration {
            let mut b = Bencher { iters, elapsed: Duration::ZERO, _marker: Default::default() };
            f(&mut b);
            b.elapsed
        };

        // Warm up and estimate the per-iteration cost.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut per_iter = time_once(&mut f, 1).max(Duration::from_nanos(1));
        while Instant::now() < warm_deadline {
            per_iter = time_once(&mut f, 1).max(Duration::from_nanos(1)).min(per_iter);
        }

        // Size samples so all of them fit the measurement budget.
        let budget_per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = (budget_per_sample / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| time_once(&mut f, iters).as_secs_f64() / iters as f64)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "  {:<56} min {:>12}  mean {:>12}  median {:>12}  ({} samples x {} iters)",
            id.render(),
            fmt_secs(min),
            fmt_secs(mean),
            fmt_secs(median),
            samples.len(),
            iters,
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{:.1}ns", s * 1e9)
    }
}

/// Declares a benchmark group: a name followed by benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).render(), "f/32");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn groups_measure_without_panicking() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("unit");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sum", "8"), &8u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion { filter: Some("nomatch-xyz".into()) };
        let mut c = c;
        let mut g = c.benchmark_group("unit2");
        let mut ran = false;
        g.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }
}
