//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so the subset
//! of proptest this workspace's property tests use is implemented here:
//! the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map`, [`prop_oneof!`], `any::<T>()`,
//! [`strategy::Just`], collection / option / sample strategies, a small
//! `[class]{lo,hi}` regex-string strategy, and the `prop_assert*` /
//! [`prop_assume!`] macros.
//!
//! Differences from upstream, by design:
//! * **no shrinking** — a failing case panics with its case number and the
//!   generated inputs' `Debug` (via the normal assert message);
//! * deterministic seeding: case `i` of every test uses the same derived
//!   seed on every run, so failures reproduce without a persistence file;
//!   set `PROPTEST_BASE_SEED` to explore a different stream.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    /// Per-case RNG handed to strategies.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// RNG for the `case`-th execution of a test.
        pub fn for_case(case: u64) -> Self {
            let base = std::env::var("PROPTEST_BASE_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x5eed_c0de_2024_0001);
            TestRng(StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }
    }

    /// A generator of random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (needed to mix arms in
        /// [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Object-safe strategy facade behind [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between type-erased alternatives
    /// ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.0.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // ---- primitive strategies -------------------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    // ---- regex-subset string strategy -----------------------------------

    /// One `[class]{lo,hi}` unit of a pattern.
    #[derive(Clone, Debug)]
    struct ClassRep {
        chars: Vec<char>,
        lo: usize,
        hi: usize,
    }

    /// `&str` patterns are string strategies, as in proptest. Supported
    /// subset: a sequence of `[...]` character classes (literals, `\x`
    /// escapes, `a-z` ranges, trailing literal `-`), each optionally
    /// followed by `{n}` or `{lo,hi}`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let units = parse_pattern(self);
            let mut out = String::new();
            for u in &units {
                let n = rng.0.gen_range(u.lo..=u.hi);
                for _ in 0..n {
                    out.push(u.chars[rng.0.gen_range(0..u.chars.len())]);
                }
            }
            out
        }
    }

    fn parse_pattern(pat: &str) -> Vec<ClassRep> {
        let mut units = Vec::new();
        let mut it = pat.chars().peekable();
        while let Some(c) = it.next() {
            assert_eq!(c, '[', "unsupported pattern {pat:?}: expected `[`, got {c:?}");
            let mut chars: Vec<char> = Vec::new();
            loop {
                let c = it.next().unwrap_or_else(|| panic!("unterminated class in {pat:?}"));
                match c {
                    ']' => break,
                    '\\' => {
                        let e = it.next().unwrap_or_else(|| panic!("dangling escape in {pat:?}"));
                        chars.push(e);
                    }
                    _ => {
                        if it.peek() == Some(&'-') {
                            let mut ahead = it.clone();
                            ahead.next(); // consume '-'
                            match ahead.peek() {
                                Some(&']') | None => chars.push(c), // trailing literal '-'
                                Some(&hi) => {
                                    it = ahead;
                                    it.next();
                                    assert!(c <= hi, "bad range {c}-{hi} in {pat:?}");
                                    chars.extend(c..=hi);
                                }
                            }
                        } else {
                            chars.push(c);
                        }
                    }
                }
            }
            assert!(!chars.is_empty(), "empty class in {pat:?}");
            let (lo, hi) = if it.peek() == Some(&'{') {
                it.next();
                let spec: String = it.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad repeat lower bound"),
                        b.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            units.push(ClassRep { chars, lo, hi });
        }
        units
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Full-domain strategy for `T`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.gen()
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);
}

/// Collection strategies (`vec`, `btree_map`, `btree_set`).
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Smallest size generated.
        pub lo: usize,
        /// Largest size generated (inclusive).
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Vector of values from `element`, length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Map with keys/values from the given strategies; duplicate keys
    /// collapse, so the final size may be below the drawn size.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `proptest::collection::btree_map`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
        }
    }

    /// Set of values from `element`; duplicates collapse.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling from fixed collections.
pub mod sample {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    /// `proptest::sample::select`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.0.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Test-runner configuration (`cases` is the only knob honored).
pub mod test_runner {
    pub use super::strategy::TestRng;

    /// Configuration block accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per test.
        pub cases: u32,
        /// Accepted for upstream parity; this implementation never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 0 }
        }
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    /// Why a test case did not pass: assertion failure or precondition
    /// rejection (`prop_assume!`). The `prop_assert*` macros return this
    /// through `?`-compatible `Result`s, as in upstream proptest.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Inputs rejected by `prop_assume!` — the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed — the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure carrying its message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A precondition rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias used throughout test files.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property test (or any helper returning
/// `Result<_, TestCaseError>`): failure returns `Err` rather than
/// panicking, exactly as in upstream proptest.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} == {:?}", format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Uniform choice among several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => continue,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => panic!("property failed at case {}: {}", __case, __msg),
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..10, 1..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_vecs(v in small_vec(), x in 3usize..9, f in 0.0f64..=1.0) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn oneof_and_maps(y in prop_oneof![(0u32..5).prop_map(|v| v * 2), Just(99u32)]) {
            prop_assert!(y == 99 || (y.is_multiple_of(2) && y < 10));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in (1usize..6).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(any::<u8>(), n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n.is_multiple_of(2));
            prop_assert!(n.is_multiple_of(2));
        }

        #[test]
        fn regex_subset_strings(s in "[a-z][a-z0-9_]{0,8}", t in r#"[a-z, "]{1,6}"#) {
            prop_assert!(!s.is_empty() && s.len() <= 9);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!((1..=6).contains(&t.chars().count()));
            prop_assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == ',' || c == ' ' || c == '"'));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        let s = small_vec();
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
