//! In-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so the small
//! API subset the workspace uses (non-poisoning `Mutex` / `RwLock`) is
//! implemented here over `std::sync`. Poisoning is deliberately swallowed:
//! `parking_lot` locks do not poison, and callers in this workspace rely on
//! that (a panicked holder must not wedge every later `lock()`).

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdRwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: StdRwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|p| p.into_inner()) }
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|p| p.into_inner()) }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
