//! Property tests for the mux reply-routing table ([`Demux`]): arbitrary
//! out-of-order reply interleavings route every reply to the caller that
//! registered its id, cancelled ids swallow exactly one late reply, and
//! duplicate/unknown ids are rejected without disturbing other in-flight
//! requests. The table is what keeps one multiplexed worker connection
//! safe for any number of concurrent scatters — these invariants are the
//! whole correctness argument.

use pegwire::{Demux, DemuxError, Json};
use proptest::prelude::*;

/// Deterministic Fisher–Yates driven by a splitmix64 stream, so a case's
/// reply order is an arbitrary function of its seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// The reply payload for `id`: tagged so the receiving end can prove the
/// routing, with a distinct wire size per id for good measure.
fn delivery(id: u64) -> Result<(Json, u64), String> {
    Ok((Json::Num(id as f64), id + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replies arriving in any order reach exactly the receiver that
    /// registered their id, and the table drains to empty.
    #[test]
    fn out_of_order_interleavings_route_correctly(
        n in 1usize..48,
        id_stride in 1u64..1000,
        order_seed in 0u64..u64::MAX,
    ) {
        let mut d = Demux::new();
        // Non-contiguous ids (stride) — nothing may assume density.
        let ids: Vec<u64> = (0..n as u64).map(|k| k * id_stride).collect();
        let receivers: Vec<_> = ids
            .iter()
            .map(|&id| (id, d.register(id).expect("fresh ids register")))
            .collect();
        prop_assert_eq!(d.len(), n);

        let mut reply_order = ids.clone();
        shuffle(&mut reply_order, order_seed);
        for &id in &reply_order {
            prop_assert!(d.route(id, delivery(id)).expect("registered id routes"));
        }
        prop_assert!(d.is_empty());

        for (id, rx) in receivers {
            let (value, wire) = rx.try_recv().expect("reply delivered").expect("ok delivery");
            prop_assert_eq!(value.as_u64(), Some(id), "payload routed to the wrong caller");
            prop_assert_eq!(wire, id + 1);
        }
    }

    /// A random subset of callers gives up before the replies land:
    /// cancelled ids swallow exactly one late reply each (route returns
    /// `Ok(false)`), everyone else still gets the right payload, and a
    /// *second* reply for a cancelled id is the protocol error that must
    /// kill the connection.
    #[test]
    fn cancelled_ids_discard_one_late_reply(
        n in 1usize..48,
        cancel_seed in 0u64..u64::MAX,
        order_seed in 0u64..u64::MAX,
    ) {
        let mut d = Demux::new();
        let ids: Vec<u64> = (0..n as u64).collect();
        let receivers: Vec<_> = ids.iter().map(|&id| (id, d.register(id).unwrap())).collect();

        let mut mask = ids.clone();
        shuffle(&mut mask, cancel_seed);
        let cancelled: std::collections::HashSet<u64> =
            mask.into_iter().take(n / 2).collect();
        for &id in &cancelled {
            d.cancel(id);
        }

        let mut reply_order = ids.clone();
        shuffle(&mut reply_order, order_seed);
        for &id in &reply_order {
            let delivered = d.route(id, delivery(id)).expect("known id never errors");
            prop_assert_eq!(delivered, !cancelled.contains(&id));
        }
        prop_assert!(d.is_empty());

        for (id, rx) in receivers {
            if cancelled.contains(&id) {
                prop_assert!(rx.try_recv().is_err(), "cancelled id {} got a reply", id);
            } else {
                let (value, _) = rx.try_recv().expect("live id delivered").unwrap();
                prop_assert_eq!(value.as_u64(), Some(id));
            }
        }

        // One swallow per cancellation: a replayed reply is now unknown.
        for &id in &cancelled {
            prop_assert_eq!(d.route(id, delivery(id)), Err(DemuxError::UnknownId(id)));
        }
    }

    /// Duplicate registration and unknown-id replies are rejected without
    /// disturbing the requests already in flight.
    #[test]
    fn duplicates_and_unknowns_reject_without_collateral(
        n in 1usize..32,
        dup_pick in 0usize..32,
        ghost_offset in 1u64..1000,
    ) {
        let mut d = Demux::new();
        let ids: Vec<u64> = (0..n as u64).collect();
        let receivers: Vec<_> = ids.iter().map(|&id| (id, d.register(id).unwrap())).collect();

        let dup = ids[dup_pick % n];
        prop_assert!(
            matches!(d.register(dup), Err(DemuxError::DuplicateId(id)) if id == dup),
            "duplicate registration must be refused"
        );

        let ghost = n as u64 - 1 + ghost_offset; // strictly outside the live range
        prop_assert_eq!(d.route(ghost, delivery(ghost)), Err(DemuxError::UnknownId(ghost)));

        // Neither rejection touched the table: every live id still routes
        // to its original receiver (the duplicate registration above must
        // not have replaced or dropped the first caller's channel).
        prop_assert_eq!(d.len(), n);
        for (id, rx) in receivers {
            prop_assert!(d.route(id, delivery(id)).unwrap());
            let (value, _) = rx.try_recv().expect("original receiver intact").unwrap();
            prop_assert_eq!(value.as_u64(), Some(id));
        }
        prop_assert!(d.is_empty());
    }
}
