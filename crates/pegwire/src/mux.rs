//! A multiplexed line-protocol connection: many in-flight requests on one
//! socket, replies matched by request id.
//!
//! [`LineConn`](crate::line::LineConn) serializes strictly — one
//! request/reply pair at a time — so concurrent callers sharing a
//! connection queue on its mutex. [`MuxConn`] removes that ceiling: every
//! request carries a connection-unique `"id"` field, the peer echoes the
//! id on its reply, and a dedicated reader thread routes each reply line
//! to whichever caller is waiting on that id. Replies may arrive in any
//! order; callers overlap freely.
//!
//! The routing table itself is [`Demux`], a pure structure (no sockets)
//! so its invariants are property-testable: a reply for an unknown or
//! already-answered id is a protocol error, registering the same id twice
//! is refused, and a reply for a *cancelled* id (the caller timed out and
//! walked away) is silently discarded — a slow peer answering late must
//! not poison the connection for everyone else.
//!
//! Failure model: any reader-side error (socket closed, malformed JSON,
//! missing/unknown id) marks the connection dead and fails every pending
//! and future request with the reason — a multiplexed socket cannot be
//! resynchronized once reply framing is in doubt. Callers reconnect.

use crate::json::Json;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A multiplexed-exchange failure.
#[derive(Debug)]
pub enum MuxError {
    /// Socket-level failure (connect, write).
    Io(std::io::Error),
    /// The connection is dead (reader hit an error); the reason is the
    /// reader's diagnosis. All pending and future requests fail with this.
    Dead(String),
    /// The caller's per-request deadline elapsed before the reply arrived.
    Timeout,
    /// The address did not resolve to any socket address.
    BadAddr(String),
}

impl std::fmt::Display for MuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MuxError::Io(e) => write!(f, "io error: {e}"),
            MuxError::Dead(reason) => write!(f, "connection dead: {reason}"),
            MuxError::Timeout => write!(f, "reply deadline exceeded"),
            MuxError::BadAddr(a) => write!(f, "address '{a}' did not resolve"),
        }
    }
}

impl std::error::Error for MuxError {}

impl From<std::io::Error> for MuxError {
    fn from(e: std::io::Error) -> Self {
        MuxError::Io(e)
    }
}

/// What the reader delivers per reply: the parsed object and its
/// on-the-wire size (line + newline), so callers can keep byte counters
/// without re-serializing.
type Delivery = Result<(Json, u64), String>;

/// A demultiplexing error — the protocol invariant a reply violated.
#[derive(Debug, PartialEq, Eq)]
pub enum DemuxError {
    /// `register` was called with an id that is already in flight.
    DuplicateId(u64),
    /// `route` was called with an id nobody registered (and nobody
    /// cancelled): the peer invented or replayed an id.
    UnknownId(u64),
}

impl std::fmt::Display for DemuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemuxError::DuplicateId(id) => write!(f, "request id {id} is already in flight"),
            DemuxError::UnknownId(id) => write!(f, "reply carries unknown request id {id}"),
        }
    }
}

impl std::error::Error for DemuxError {}

/// The reply-routing table: in-flight request ids mapped to the channel
/// their caller waits on, plus the set of cancelled ids whose late
/// replies must be discarded rather than treated as protocol errors.
#[derive(Default)]
pub struct Demux {
    waiting: HashMap<u64, mpsc::Sender<Delivery>>,
    /// Ids whose caller gave up (deadline): one late reply each is
    /// swallowed. Bounded — see [`Demux::cancel`].
    abandoned: HashSet<u64>,
    /// Most in-flight ids ever waiting at once (concurrency diagnostics).
    inflight_hwm: usize,
}

/// Cap on remembered cancelled ids. Each entry exists only until the
/// peer's late reply arrives (or forever, if the peer never answers); the
/// cap bounds memory against a peer that never answers anything. Evicting
/// an abandoned id means its eventual reply kills the connection — the
/// safe failure direction.
const MAX_ABANDONED: usize = 4096;

impl Demux {
    /// An empty table.
    pub fn new() -> Demux {
        Demux::default()
    }

    /// Registers `id` as in flight, returning the receiver its reply will
    /// be delivered on. Refuses an id that is already waiting.
    pub fn register(&mut self, id: u64) -> Result<mpsc::Receiver<Delivery>, DemuxError> {
        use std::collections::hash_map::Entry;
        match self.waiting.entry(id) {
            Entry::Occupied(_) => Err(DemuxError::DuplicateId(id)),
            Entry::Vacant(slot) => {
                // Re-registering a cancelled id revives it.
                self.abandoned.remove(&id);
                let (tx, rx) = mpsc::channel();
                slot.insert(tx);
                self.inflight_hwm = self.inflight_hwm.max(self.waiting.len());
                Ok(rx)
            }
        }
    }

    /// Routes one reply to its waiting caller. A cancelled id's reply is
    /// silently discarded; an id nobody is (or was) waiting on is a
    /// protocol error. Returns whether the reply was delivered.
    pub fn route(&mut self, id: u64, delivery: Delivery) -> Result<bool, DemuxError> {
        if let Some(tx) = self.waiting.remove(&id) {
            // A dropped receiver (caller gone without cancelling) is
            // equivalent to a cancelled id: discard.
            return Ok(tx.send(delivery).is_ok());
        }
        if self.abandoned.remove(&id) {
            return Ok(false);
        }
        Err(DemuxError::UnknownId(id))
    }

    /// Marks an in-flight id as walked-away-from: its eventual reply is
    /// discarded instead of poisoning the connection. No-op for ids not
    /// in flight.
    pub fn cancel(&mut self, id: u64) {
        if self.waiting.remove(&id).is_some() && self.abandoned.len() < MAX_ABANDONED {
            self.abandoned.insert(id);
        }
    }

    /// Fails every in-flight request with `reason` and clears the table.
    pub fn fail_all(&mut self, reason: &str) {
        for (_, tx) in self.waiting.drain() {
            let _ = tx.send(Err(reason.to_string()));
        }
        self.abandoned.clear();
    }

    /// In-flight request count.
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Abandoned-request tombstones currently held: replies the peer still
    /// owes for requests whose callers gave up. A value that stays nonzero
    /// after load drains means the peer is swallowing requests — the
    /// blind spot that made PR 6's deadlock hard to see.
    pub fn tombstones(&self) -> usize {
        self.abandoned.len()
    }

    /// Most requests ever in flight at once on this table.
    pub fn inflight_hwm(&self) -> usize {
        self.inflight_hwm
    }
}

/// State shared between callers and the reader thread.
struct Shared {
    demux: Mutex<Demux>,
    /// Set once by the reader when the connection dies; the reason every
    /// later request fails with.
    dead: Mutex<Option<String>>,
    bytes_rx: AtomicU64,
}

impl Shared {
    fn kill(&self, reason: &str) {
        let mut dead = self.dead.lock().unwrap();
        if dead.is_none() {
            *dead = Some(reason.to_string());
        }
        drop(dead);
        self.demux.lock().unwrap().fail_all(reason);
    }
}

/// Hard cap on one reply line — same backstop as
/// [`line::MAX_REPLY_BYTES`](crate::line::MAX_REPLY_BYTES).
const MAX_MUX_REPLY_BYTES: usize = crate::line::MAX_REPLY_BYTES;

/// A multiplexed connection. Cheap to share (`Arc`); every method takes
/// `&self`. See the module docs for the failure model.
pub struct MuxConn {
    shared: Arc<Shared>,
    /// Kept for `Shutdown` on drop (wakes the reader out of its blocking
    /// read).
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    next_id: AtomicU64,
    bytes_tx: AtomicU64,
    reader: Option<std::thread::JoinHandle<()>>,
}

/// One in-flight request: wait for its reply (or give up — the reply slot
/// is cancelled so the late answer is discarded, not a protocol error).
pub struct PendingReply {
    rx: mpsc::Receiver<Delivery>,
    id: u64,
    /// Wire bytes the request occupied (line + newline).
    pub sent_bytes: u64,
    shared: Arc<Shared>,
}

impl PendingReply {
    /// The id this request went out under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the reply arrives, the connection dies, or `timeout`
    /// elapses. Returns the reply and its on-the-wire byte count.
    pub fn wait(self, timeout: Duration) -> Result<(Json, u64), MuxError> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(reply)) => Ok(reply),
            Ok(Err(reason)) => Err(MuxError::Dead(reason)),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.shared.demux.lock().unwrap().cancel(self.id);
                Err(MuxError::Timeout)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let reason = self.shared.dead.lock().unwrap().clone();
                Err(MuxError::Dead(reason.unwrap_or_else(|| "connection closed".into())))
            }
        }
    }
}

/// Splices `"id":N` into an already-serialized JSON object line. The
/// peer's `get("id")` scans fields last-wins, so even a hostile object
/// that already carried an `id` field is overridden, not confused.
fn splice_id(line: &str, id: u64) -> String {
    let body = line.trim_end();
    debug_assert!(body.starts_with('{') && body.ends_with('}'), "mux requests are JSON objects");
    let inner = &body[..body.len() - 1];
    if inner.trim_end().ends_with('{') {
        format!("{inner}\"id\":{id}}}")
    } else {
        format!("{inner},\"id\":{id}}}")
    }
}

impl MuxConn {
    /// Connects to `addr` within `connect_timeout` and starts the reader
    /// thread. `io_timeout` bounds each *write*; reads are unbounded on
    /// the reader side (callers bound their own waits per request via
    /// [`PendingReply::wait`]).
    pub fn connect(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<MuxConn, MuxError> {
        let sockaddr: SocketAddr = addr
            .to_socket_addrs()
            .map_err(MuxError::Io)?
            .next()
            .ok_or_else(|| MuxError::BadAddr(addr.to_string()))?;
        let stream = TcpStream::connect_timeout(&sockaddr, connect_timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(Some(io_timeout))?;
        let writer = stream.try_clone()?;
        let reader_stream = stream.try_clone()?;
        let shared = Arc::new(Shared {
            demux: Mutex::new(Demux::new()),
            dead: Mutex::new(None),
            bytes_rx: AtomicU64::new(0),
        });
        let reader_shared = shared.clone();
        let reader = std::thread::Builder::new()
            .name("pegwire-mux-reader".into())
            .spawn(move || reader_loop(reader_stream, reader_shared))
            .map_err(MuxError::Io)?;
        Ok(MuxConn {
            shared,
            stream,
            writer: Mutex::new(writer),
            next_id: AtomicU64::new(1),
            bytes_tx: AtomicU64::new(0),
            reader: Some(reader),
        })
    }

    /// True until the reader thread diagnoses a dead connection.
    pub fn is_alive(&self) -> bool {
        self.shared.dead.lock().unwrap().is_none()
    }

    /// Bytes written since connect (request lines incl. newline and the
    /// spliced id field).
    pub fn bytes_tx(&self) -> u64 {
        self.bytes_tx.load(Ordering::Relaxed)
    }

    /// Bytes read since connect (reply lines incl. newline).
    pub fn bytes_rx(&self) -> u64 {
        self.shared.bytes_rx.load(Ordering::Relaxed)
    }

    /// Sends `line` (a serialized JSON object *without* an id — one is
    /// assigned and spliced in) and returns the in-flight handle. The
    /// writer lock is held only for the single framed write, so many
    /// requests stream out back to back while earlier replies are still
    /// pending — the multiplexing win.
    pub fn begin(&self, line: &str) -> Result<PendingReply, MuxError> {
        if let Some(reason) = self.shared.dead.lock().unwrap().clone() {
            return Err(MuxError::Dead(reason));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut framed = splice_id(line, id).into_bytes();
        framed.push(b'\n');
        // Register before writing: the reply cannot outrun its slot.
        let rx = self
            .shared
            .demux
            .lock()
            .unwrap()
            .register(id)
            .expect("connection-unique counter ids never collide");
        let written = {
            let mut writer = self.writer.lock().unwrap();
            writer.write_all(&framed).and_then(|()| writer.flush())
        };
        if let Err(e) = written {
            self.shared.demux.lock().unwrap().cancel(id);
            return Err(MuxError::Io(e));
        }
        self.bytes_tx.fetch_add(framed.len() as u64, Ordering::Relaxed);
        Ok(PendingReply { rx, id, sent_bytes: framed.len() as u64, shared: self.shared.clone() })
    }

    /// One full exchange: [`MuxConn::begin`] + [`PendingReply::wait`].
    pub fn call(&self, line: &str, timeout: Duration) -> Result<(Json, u64), MuxError> {
        self.begin(line)?.wait(timeout)
    }

    /// In-flight request count (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.shared.demux.lock().unwrap().len()
    }

    /// Abandoned-request tombstones currently held by the demultiplexer
    /// (see [`Demux::tombstones`]).
    pub fn tombstones(&self) -> usize {
        self.shared.demux.lock().unwrap().tombstones()
    }

    /// High-water mark of concurrently in-flight requests since connect
    /// (see [`Demux::inflight_hwm`]).
    pub fn inflight_hwm(&self) -> usize {
        self.shared.demux.lock().unwrap().inflight_hwm()
    }
}

impl Drop for MuxConn {
    fn drop(&mut self) {
        // Wake the reader out of its blocking read, fail any stragglers,
        // and join so no detached thread outlives the connection.
        let _ = self.stream.shutdown(Shutdown::Both);
        self.shared.kill("connection closed");
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// The reader: frames reply lines, parses, routes by echoed id. Any
/// error is terminal for the connection (see the module docs).
fn reader_loop(stream: TcpStream, shared: Arc<Shared>) {
    use std::io::BufRead;
    // Blocking reads: the reader parks in the kernel until bytes arrive
    // or `MuxConn::drop` shuts the socket down.
    let _ = stream.set_read_timeout(None);
    let mut reader = std::io::BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        loop {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(e) => {
                    shared.kill(&format!("read failed: {e}"));
                    return;
                }
            };
            if available.is_empty() {
                let reason = if line.is_empty() {
                    "peer closed the connection".to_string()
                } else {
                    "peer closed mid-reply".to_string()
                };
                shared.kill(&reason);
                return;
            }
            if let Some(pos) = available.iter().position(|&b| b == b'\n') {
                line.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                break;
            }
            line.extend_from_slice(available);
            let n = available.len();
            reader.consume(n);
            if line.len() > MAX_MUX_REPLY_BYTES {
                shared.kill("reply line exceeds the size cap");
                return;
            }
        }
        let wire_bytes = line.len() as u64 + 1;
        shared.bytes_rx.fetch_add(wire_bytes, Ordering::Relaxed);
        let text = String::from_utf8_lossy(&line);
        let reply = match Json::parse(text.trim_end()) {
            Ok(v) => v,
            Err(e) => {
                shared.kill(&format!("malformed reply: {e}"));
                return;
            }
        };
        let Some(id) = reply.get("id").and_then(Json::as_u64) else {
            shared.kill("reply carries no request id");
            return;
        };
        // Bind the route result before matching on it: an `if let` on the
        // locked expression would hold the demux guard through its body
        // (edition-2021 temporary lifetime), and `kill` re-locks demux —
        // a self-deadlock that also wedges every caller's timeout path.
        let routed = shared.demux.lock().unwrap().route(id, Ok((reply, wire_bytes)));
        if let Err(e) = routed {
            shared.kill(&e.to_string());
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A test peer: answers every request line with `f(request)` lines,
    /// possibly reordered by the caller-provided closure.
    fn echo_server(
        reorder: impl Fn(Vec<Json>) -> Vec<Json> + Send + 'static,
        batch: usize,
    ) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut pending = Vec::new();
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                let req = Json::parse(line.trim()).unwrap();
                let id = req.get("id").unwrap().as_u64().unwrap();
                pending.push(
                    crate::obj()
                        .field("ok", true)
                        .field("echo", req.clone())
                        .field("id", id)
                        .build(),
                );
                if pending.len() >= batch {
                    for reply in reorder(std::mem::take(&mut pending)) {
                        writeln!(writer, "{reply}").unwrap();
                    }
                    writer.flush().unwrap();
                }
            }
        });
        (addr, join)
    }

    #[test]
    fn out_of_order_replies_route_to_the_right_caller() {
        // The peer buffers 3 requests and answers them in reverse.
        let (addr, _join) = echo_server(|mut v| (v.reverse(), v).1, 3);
        let conn =
            MuxConn::connect(&addr.to_string(), Duration::from_secs(2), Duration::from_secs(2))
                .unwrap();
        let p1 = conn.begin(r#"{"op":"a"}"#).unwrap();
        let p2 = conn.begin(r#"{"op":"b"}"#).unwrap();
        let p3 = conn.begin(r#"{"op":"c"}"#).unwrap();
        // Wait in send order; replies arrived in reverse.
        let (r1, _) = p1.wait(Duration::from_secs(2)).unwrap();
        let (r2, _) = p2.wait(Duration::from_secs(2)).unwrap();
        let (r3, _) = p3.wait(Duration::from_secs(2)).unwrap();
        let op =
            |r: &Json| r.get("echo").unwrap().get("op").and_then(Json::as_str).unwrap().to_string();
        assert_eq!(op(&r1), "a");
        assert_eq!(op(&r2), "b");
        assert_eq!(op(&r3), "c");
        assert!(conn.bytes_tx() > 0 && conn.bytes_rx() > 0);
    }

    #[test]
    fn timeout_cancels_the_slot_and_a_late_reply_is_discarded() {
        // The peer holds every reply until 2 requests queue.
        let (addr, _join) = echo_server(|v| v, 2);
        let conn =
            MuxConn::connect(&addr.to_string(), Duration::from_secs(2), Duration::from_secs(2))
                .unwrap();
        let p1 = conn.begin(r#"{"op":"slow"}"#).unwrap();
        assert!(matches!(p1.wait(Duration::from_millis(100)), Err(MuxError::Timeout)));
        // The second request releases both replies; the first (cancelled)
        // is discarded, the second routes normally — the connection
        // survives the late reply.
        let (r2, _) = conn.begin(r#"{"op":"fast"}"#).unwrap().wait(Duration::from_secs(2)).unwrap();
        assert_eq!(r2.get("echo").unwrap().get("op").and_then(Json::as_str), Some("fast"));
        assert!(conn.is_alive());
    }

    #[test]
    fn unknown_id_reply_kills_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _join = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            // Reply with an id nobody asked for.
            writeln!(writer, r#"{{"ok":true,"id":999999}}"#).unwrap();
            writer.flush().unwrap();
            // Hold the socket open so the kill is the reader's diagnosis,
            // not a close.
            std::thread::sleep(Duration::from_millis(500));
        });
        let conn =
            MuxConn::connect(&addr.to_string(), Duration::from_secs(2), Duration::from_secs(2))
                .unwrap();
        let p = conn.begin(r#"{"op":"x"}"#).unwrap();
        let err = p.wait(Duration::from_secs(2)).unwrap_err();
        assert!(matches!(err, MuxError::Dead(ref r) if r.contains("unknown request id")), "{err}");
        assert!(!conn.is_alive());
        // Future requests fail fast.
        assert!(matches!(conn.begin(r#"{"op":"y"}"#), Err(MuxError::Dead(_))));
    }

    #[test]
    fn splice_id_handles_empty_and_populated_objects() {
        assert_eq!(splice_id("{}", 7), r#"{"id":7}"#);
        assert_eq!(splice_id(r#"{"op":"q"}"#, 7), r#"{"op":"q","id":7}"#);
        // The result stays parseable and the id wins a last-scan lookup.
        let v = Json::parse(&splice_id(r#"{"id":3,"op":"q"}"#, 9)).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(9));
    }

    #[test]
    fn demux_register_route_cancel_invariants() {
        let mut d = Demux::new();
        let rx = d.register(1).unwrap();
        assert_eq!(d.register(1).unwrap_err(), DemuxError::DuplicateId(1));
        assert_eq!(d.route(2, Err("x".into())).unwrap_err(), DemuxError::UnknownId(2));
        assert!(d.route(1, Ok((Json::Null, 3))).unwrap());
        assert!(rx.try_recv().is_ok());
        // Routing the same id twice is unknown the second time.
        assert_eq!(d.route(1, Ok((Json::Null, 3))).unwrap_err(), DemuxError::UnknownId(1));
        // Cancelled ids swallow exactly one reply.
        d.register(5).unwrap();
        d.cancel(5);
        assert!(!d.route(5, Ok((Json::Null, 1))).unwrap());
        assert_eq!(d.route(5, Ok((Json::Null, 1))).unwrap_err(), DemuxError::UnknownId(5));
        assert!(d.is_empty());
    }

    #[test]
    fn demux_counts_tombstones_and_inflight_high_water() {
        let mut d = Demux::new();
        let _r1 = d.register(1).unwrap();
        let _r2 = d.register(2).unwrap();
        let _r3 = d.register(3).unwrap();
        assert_eq!(d.inflight_hwm(), 3);
        assert_eq!(d.tombstones(), 0);
        d.cancel(2);
        d.cancel(3);
        assert_eq!(d.tombstones(), 2, "two callers walked away");
        // The HWM is sticky: draining does not lower it.
        assert!(d.route(1, Ok((Json::Null, 1))).unwrap());
        assert_eq!(d.inflight_hwm(), 3);
        // A late reply consumes its tombstone.
        assert!(!d.route(2, Ok((Json::Null, 1))).unwrap());
        assert_eq!(d.tombstones(), 1);
        // Reviving a cancelled id removes its tombstone too.
        let _r3b = d.register(3).unwrap();
        assert_eq!(d.tombstones(), 0);
    }
}
