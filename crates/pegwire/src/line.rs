//! A blocking one-line-per-message TCP connection with hard timeouts.
//!
//! The shard transport and any other wire peer exchange exactly one JSON
//! object per line in each direction. [`LineConn`] wraps a `TcpStream`
//! with connect / read / write timeouts so that a dead or wedged peer
//! always surfaces as an [`LineError`] within the deadline — the
//! no-hang guarantee every caller (coordinator scatter, CLI, tests)
//! relies on. Byte counters are tracked per connection so transports can
//! report bytes-on-wire without re-measuring.

use crate::json::{Json, JsonError};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Line-exchange failure: transport-level or malformed peer JSON.
#[derive(Debug)]
pub enum LineError {
    /// Socket-level failure (connect, read, write, or timeout).
    Io(std::io::Error),
    /// The peer's reply line was not valid JSON.
    BadReply(JsonError, String),
    /// The peer closed the connection.
    Closed,
    /// The address did not resolve to any socket address.
    BadAddr(String),
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Io(e) => write!(f, "io error: {e}"),
            LineError::BadReply(e, line) => write!(f, "bad reply ({e}): {line}"),
            LineError::Closed => write!(f, "peer closed the connection"),
            LineError::BadAddr(a) => write!(f, "address '{a}' did not resolve"),
        }
    }
}

impl std::error::Error for LineError {}

impl From<std::io::Error> for LineError {
    fn from(e: std::io::Error) -> Self {
        LineError::Io(e)
    }
}

/// A connected line-protocol peer with timeouts on every operation.
pub struct LineConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    io_timeout: Duration,
    /// Bytes written since connect (request lines incl. newline).
    pub bytes_tx: u64,
    /// Bytes read since connect (reply lines incl. newline).
    pub bytes_rx: u64,
}

/// Hard cap on one reply line. This is a memory backstop against a
/// malicious or broken peer streaming newline-free bytes, not a semantic
/// limit — legitimate shard replies are orders of magnitude smaller (the
/// serving layer separately caps result sizes). Mirrors the server-side
/// request cap, which the coordinator/client read path previously lacked.
pub const MAX_REPLY_BYTES: usize = 64 << 20;

impl LineConn {
    /// Connects to `addr` within `connect_timeout`; each write and the
    /// **whole** reply read are bounded by `io_timeout` (see
    /// [`LineConn::recv`]). A zero `io_timeout` is rejected by the OS, so
    /// callers should pass a real deadline.
    pub fn connect(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<LineConn, LineError> {
        let sockaddr: SocketAddr = addr
            .to_socket_addrs()
            .map_err(LineError::Io)?
            .next()
            .ok_or_else(|| LineError::BadAddr(addr.to_string()))?;
        let stream = TcpStream::connect_timeout(&sockaddr, connect_timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        let writer = stream.try_clone()?;
        Ok(LineConn {
            reader: BufReader::new(stream),
            writer,
            io_timeout,
            bytes_tx: 0,
            bytes_rx: 0,
        })
    }

    /// Writes one request line (newline appended, one write so the
    /// framed request leaves as a single flush) without waiting for a
    /// reply — the pipelined-scatter half; pair with [`LineConn::recv`].
    pub fn send(&mut self, line: &str) -> Result<(), LineError> {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.writer.flush()?;
        self.bytes_tx += framed.len() as u64;
        Ok(())
    }

    /// Reads one reply line and parses it.
    ///
    /// The whole reply must arrive within `io_timeout` **total** and fit
    /// in [`MAX_REPLY_BYTES`]: the wait is re-bounded by the remaining
    /// deadline before every socket read, so a peer trickling one byte
    /// per almost-timeout cannot stretch one exchange indefinitely (each
    /// read would succeed, resetting a naive per-read timeout), and the
    /// accumulation buffer cannot grow without bound.
    pub fn recv(&mut self) -> Result<Json, LineError> {
        use std::io::BufRead;
        let start = std::time::Instant::now();
        let mut line: Vec<u8> = Vec::new();
        loop {
            let remaining =
                self.io_timeout.checked_sub(start.elapsed()).filter(|d| !d.is_zero()).ok_or_else(
                    || {
                        LineError::Io(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "reply deadline exceeded",
                        ))
                    },
                )?;
            self.reader.get_ref().set_read_timeout(Some(remaining))?;
            let available = match self.reader.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(LineError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "reply deadline exceeded",
                    )));
                }
                Err(e) => return Err(LineError::Io(e)),
            };
            if available.is_empty() {
                return if line.is_empty() {
                    Err(LineError::Closed)
                } else {
                    Err(LineError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-reply",
                    )))
                };
            }
            if let Some(pos) = available.iter().position(|&b| b == b'\n') {
                line.extend_from_slice(&available[..pos]);
                self.reader.consume(pos + 1);
                break;
            }
            line.extend_from_slice(available);
            let n = available.len();
            self.reader.consume(n);
            if line.len() > MAX_REPLY_BYTES {
                return Err(LineError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "reply line exceeds the size cap",
                )));
            }
        }
        self.bytes_rx += line.len() as u64 + 1;
        let text = String::from_utf8_lossy(&line);
        let trimmed = text.trim_end();
        Json::parse(trimmed).map_err(|e| LineError::BadReply(e, trimmed.to_string()))
    }

    /// One full exchange: send a request object, read the reply object.
    pub fn call(&mut self, req: &Json) -> Result<Json, LineError> {
        self.send(&req.to_string())?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    #[test]
    fn call_round_trips_one_line_each_way() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut stream = stream;
            write!(stream, "{}", line).unwrap();
        });
        let mut conn =
            LineConn::connect(&addr.to_string(), Duration::from_secs(2), Duration::from_secs(2))
                .unwrap();
        let req = obj().field("op", "ping").build();
        let reply = conn.call(&req).unwrap();
        assert_eq!(reply, req);
        assert!(conn.bytes_tx > 0 && conn.bytes_rx > 0);
        echo.join().unwrap();
    }

    #[test]
    fn read_timeout_errors_instead_of_hanging() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept but never reply.
        let silent = std::thread::spawn(move || {
            let (_stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
        });
        let mut conn = LineConn::connect(
            &addr.to_string(),
            Duration::from_secs(2),
            Duration::from_millis(100),
        )
        .unwrap();
        let err = conn.call(&obj().field("op", "ping").build()).unwrap_err();
        assert!(matches!(err, LineError::Io(_)), "{err}");
        silent.join().unwrap();
    }

    #[test]
    fn trickling_peer_cannot_stretch_the_reply_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A peer that drips one byte at a time, each arriving well within
        // a per-read timeout, and never sends a newline: a naive per-read
        // bound would reset on every byte and wait forever.
        let trickler = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for _ in 0..100 {
                if stream.write_all(b"x").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        });
        let mut conn = LineConn::connect(
            &addr.to_string(),
            Duration::from_secs(2),
            Duration::from_millis(300),
        )
        .unwrap();
        conn.send("{}").unwrap();
        let t0 = std::time::Instant::now();
        let err = conn.recv().unwrap_err();
        let elapsed = t0.elapsed();
        assert!(
            matches!(err, LineError::Io(ref e) if e.kind() == std::io::ErrorKind::TimedOut),
            "{err}"
        );
        assert!(
            elapsed >= Duration::from_millis(250) && elapsed < Duration::from_secs(2),
            "whole-reply deadline enforced, got {elapsed:?}"
        );
        trickler.join().unwrap();
    }

    #[test]
    fn closed_peer_is_a_structured_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let closer = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        });
        let mut conn =
            LineConn::connect(&addr.to_string(), Duration::from_secs(2), Duration::from_secs(1))
                .unwrap();
        closer.join().unwrap();
        let err = conn.call(&obj().field("op", "ping").build()).unwrap_err();
        assert!(
            matches!(err, LineError::Closed | LineError::Io(_)),
            "closed peer must error: {err}"
        );
    }
}
