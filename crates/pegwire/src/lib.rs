#![warn(missing_docs)]

//! `pegwire` — the wire-protocol atoms every networked peg component
//! speaks.
//!
//! Extracted from `pegserve` so the shard transport (`pegshard`) can
//! serialize requests and replies without depending on the serving layer
//! (which itself depends on `pegshard` — the JSON value had to move below
//! both). Two pieces live here:
//!
//! * [`json`] — the minimal in-tree JSON value with a compact writer and
//!   a hardened parser (depth-capped, f64 bit-exact round trip). This is
//!   the encoding every protocol line uses, coordinator↔client and
//!   coordinator↔shard-worker alike.
//! * [`mod@line`] — a blocking line-exchange connection (`LineConn`): one
//!   JSON object per line in each direction over a `TcpStream`, with
//!   connect/read/write timeouts so a dead peer yields an error, never a
//!   hang.
//! * [`mux`] — a multiplexed connection (`MuxConn`): many in-flight
//!   requests on one socket, each carrying a connection-unique `"id"`
//!   the peer echoes, with out-of-order replies routed back to the
//!   caller that sent the matching request.
//!
//! The f64 round-trip guarantee documented on [`json`] is what makes a
//! multi-process scatter-gather bit-exact: probabilities cross the wire
//! through the shortest-round-trip `{}` formatting and come back with
//! identical bits.

pub mod json;
pub mod line;
pub mod mux;

pub use json::{obj, Json, JsonError, ObjBuilder};
pub use line::{LineConn, LineError};
pub use mux::{Demux, DemuxError, MuxConn, MuxError, PendingReply};
