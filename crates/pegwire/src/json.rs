//! A minimal JSON value with parser and compact writer.
//!
//! The build environment has no registry access, so `serde_json` cannot be
//! used; this is the small subset the wire protocol needs. Numbers are
//! `f64` (every id this system serializes fits in the 53-bit exact range),
//! objects preserve insertion order, and the writer emits compact output
//! (no whitespace) so protocol lines are greppable as exact substrings like
//! `"ok":true`.
//!
//! Round-trip guarantee relied on by the serving tests: Rust's `{}`
//! formatting of an `f64` prints the shortest string that parses back to
//! the identical bits, and the parser reads numbers with `str::parse`,
//! so probabilities survive a protocol round trip bit-exactly.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered; duplicate keys keep the last value on
    /// lookup, mirroring common parsers).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (`None` for other variants or absence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as a non-negative integer (rejects fractions,
    /// negatives, and values past the `f64`-exact range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Maximum container nesting accepted by [`Json::parse`]. The parser
    /// is recursive-descent, so unbounded depth would let one crafted
    /// line (e.g. 200k `[`s, well under the server's line cap) overflow
    /// the handler thread's stack and abort the whole process.
    pub const MAX_DEPTH: usize = 128;

    /// Parses one JSON document, requiring it to span the whole input.
    /// Container nesting beyond [`Json::MAX_DEPTH`] is rejected.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

/// Ergonomic object construction: `obj().field("ok", true).build()`.
#[derive(Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

/// Starts an [`ObjBuilder`].
pub fn obj() -> ObjBuilder {
    ObjBuilder::default()
}

impl ObjBuilder {
    /// Appends a field.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.0.push((key.to_string(), value.into()));
        self
    }

    /// Appends a field only when the value is present.
    pub fn field_opt(self, key: &str, value: Option<impl Into<Json>>) -> Self {
        match value {
            Some(v) => self.field(key, v),
            None => self,
        }
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Parse failure with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { message: format!("bad number '{text}'"), at: start })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code =
                                    0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > Json::MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact serialization (no whitespace). Non-finite numbers serialize
    /// as `null` (JSON has no representation for them).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if !n.is_finite() => f.write_str("null"),
            // The integer fast path must skip -0.0: `0` would parse back
            // as +0.0, breaking the bit-exact round trip ("-0" keeps it).
            Json::Num(n)
                if n.fract() == 0.0 && n.abs() < 9.0e15 && !(*n == 0.0 && n.is_sign_negative()) =>
            {
                write!(f, "{}", *n as i64)
            }
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse(r#""a\"b\n""#).unwrap(), Json::Str("a\"b\n".into()));
        assert_eq!(Json::parse(r#""é😀""#).unwrap(), Json::Str("é😀".into()));
        let v = Json::parse(r#"{"a":[1,2,{"b":false}],"c":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", r#"{"a"}"#, "tru", "1 2", r#""unterminated"#, "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = Json::parse("[1, oops]").unwrap_err();
        assert!(err.at >= 4, "position recorded: {err}");
    }

    #[test]
    fn writer_is_compact_and_round_trips() {
        let v = obj()
            .field("ok", true)
            .field("n", 3usize)
            .field("p", 0.1f64 + 0.2f64)
            .field("s", "he said \"hi\"\n")
            .field("items", vec![Json::Num(1.0), Json::Null])
            .build();
        let text = v.to_string();
        assert!(text.starts_with(r#"{"ok":true,"n":3,"#), "{text}");
        assert!(!text.contains(": "), "compact output: {text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, 0.7357912, 1e-12, 123456789.12345679, f64::MIN_POSITIVE, -0.0] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // A deep-but-legal document parses...
        let deep = format!("{}1{}", "[".repeat(Json::MAX_DEPTH), "]".repeat(Json::MAX_DEPTH));
        assert!(Json::parse(&deep).is_ok());
        // ...and one bracket past the limit is rejected, not recursed —
        // with no limit, ~200k brackets would overflow the handler
        // thread's stack and abort the whole server process.
        let over =
            format!("{}1{}", "[".repeat(Json::MAX_DEPTH + 1), "]".repeat(Json::MAX_DEPTH + 1));
        assert!(Json::parse(&over).is_err());
        let bomb = "[".repeat(200_000);
        assert!(Json::parse(&bomb).is_err());
        // Mixed containers count the same.
        let mixed = "{\"a\":".repeat(Json::MAX_DEPTH + 1) + "1" + &"}".repeat(Json::MAX_DEPTH + 1);
        assert!(Json::parse(&mixed).is_err());
        // Depth resets between siblings: wide-but-shallow stays fine.
        let wide = format!("[{}1]", "[1],".repeat(10_000));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn integer_accessors_validate() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_usize(), Some(7));
    }
}
