//! A persistent, scoped thread pool for the query engine.
//!
//! The paper's online phase calls for parallel per-partition message
//! passing, and the offline phase partitions path enumeration across
//! workers. Both previously spawned fresh OS threads per use (crossbeam
//! scoped threads — per Jacobi *round* in the worst case). This crate
//! provides the replacement: pools whose workers live for the process
//! lifetime, with a scoped `for_each` / `map` that lets borrowing closures
//! run on them (the build environment has no registry access, so `rayon`
//! itself cannot be used; this is the minimal pool the engine needs).
//!
//! Guarantees relied on by the engine:
//!
//! * **Determinism of results** — `map` writes slot `i` from task `i`, so
//!   output order never depends on scheduling; `for_each(1, ..)` and pools
//!   with one lane run inline with zero synchronization.
//! * **Scoped borrows** — the submitting call blocks until every task has
//!   finished, so tasks may borrow from the submitter's stack (enforced by
//!   the `'scope` bound on [`ThreadPool::for_each`]).
//! * **Reentrancy** — a task may itself submit work to the same pool;
//!   participants always execute the tasks they claim, so nested batches
//!   drain bottom-up and cannot deadlock.
//! * **Panic transparency** — a panicking task aborts its batch's remaining
//!   unclaimed work and the submitter re-raises the original payload.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Lifetime-erased reference to a `Fn(usize) + Sync` task body.
///
/// Safety: the submitter blocks in [`ThreadPool::for_each`] until
/// `completed == n`, so the referent strictly outlives every dereference;
/// the `'static` here is a lie told only for storage.
#[derive(Clone, Copy)]
struct RawTask(&'static (dyn Fn(usize) + Sync));

unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// One submitted parallel-for: `n` index tasks claimed atomically.
struct Batch {
    task: RawTask,
    n: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Batch {
    /// Claims and runs indices until none remain. Returns when the batch
    /// has no unclaimed work left (other claimants may still be running).
    fn participate(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.task.0)(i)));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                drop(slot);
                // Abandon unclaimed indices; claimed ones still complete.
                let skipped = self.n.saturating_sub(self.next.swap(self.n, Ordering::Relaxed));
                if skipped > 0 {
                    self.finish_many(skipped);
                }
            }
            self.finish_many(1);
        }
    }

    fn finish_many(&self, k: usize) {
        if self.completed.fetch_add(k, Ordering::AcqRel) + k >= self.n {
            let mut done = self.done.lock().unwrap();
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// A persistent pool of worker threads executing scoped parallel loops.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    lanes: usize,
}

impl ThreadPool {
    /// Creates a pool with `lanes` compute lanes (`0` = available
    /// parallelism). The submitting thread always participates, so
    /// `lanes - 1` OS workers are spawned; one lane means fully inline
    /// execution with no worker threads at all.
    pub fn new(lanes: usize) -> Self {
        let lanes = resolve_lanes(lanes);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..lanes)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("pegpool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers: Mutex::new(workers), lanes }
    }

    /// Number of compute lanes (submitter included).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `task(i)` for every `i in 0..n`, in parallel across the pool's
    /// lanes, returning once all invocations finished. Panics from tasks
    /// are re-raised here with their original payload.
    pub fn for_each(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.lanes == 1 || n == 1 {
            for i in 0..n {
                task(i);
            }
            return;
        }
        // Erase the borrow to `'static` for storage: workers only call the
        // closure inside claims, all of which complete before we return.
        // Safety: see `RawTask`.
        let raw = RawTask(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        });
        let batch = Arc::new(Batch {
            task: raw,
            n,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.push_back(batch.clone());
        }
        self.shared.work_cv.notify_all();

        batch.participate();

        let mut done = batch.done.lock().unwrap();
        while !*done {
            done = batch.done_cv.wait(done).unwrap();
        }
        drop(done);
        // Drop our queue entry if no worker already popped it.
        let mut q = self.shared.queue.lock().unwrap();
        q.retain(|b| !Arc::ptr_eq(b, &batch));
        drop(q);

        let payload = batch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Parallel map over `0..n`: returns `vec![f(0), f(1), .., f(n-1)]`.
    /// Output order is by index, independent of scheduling.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.lanes == 1 || n == 1 {
            return (0..n).map(f).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(n, || None);
        let out = SlotWriter(slots.as_mut_ptr());
        // Borrow the wrapper whole so the closure captures `&SlotWriter`
        // (whose `Sync` gate applies) rather than the raw field.
        let out = &out;
        self.for_each(n, &move |i| {
            // Safety: each index is claimed exactly once, so slot `i` has a
            // unique writer; the Vec outlives `for_each`'s blocking call.
            unsafe { *out.0.add(i) = Some(f(i)) };
        });
        slots.into_iter().map(|s| s.expect("pool task completed")).collect()
    }

    /// Splits `0..n` into at most `lanes * oversubscribe` contiguous chunks
    /// for coarse-grained loops; always yields at least one chunk when
    /// `n > 0`.
    pub fn chunks(&self, n: usize, oversubscribe: usize) -> Vec<std::ops::Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let pieces = (self.lanes * oversubscribe.max(1)).clamp(1, n);
        let base = n / pieces;
        let extra = n % pieces;
        let mut out = Vec::with_capacity(pieces);
        let mut start = 0;
        for i in 0..pieces {
            let len = base + usize::from(i < extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }
}

/// Shared `*mut` over result slots; uniqueness per index is guaranteed by
/// the batch claim protocol.
struct SlotWriter<T>(*mut Option<T>);
unsafe impl<T: Send> Send for SlotWriter<T> {}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.work_cv.notify_all();
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch: Arc<Batch> = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                // Drop exhausted batches, grab the first live one.
                while let Some(front) = q.front() {
                    if front.exhausted() {
                        q.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(front) = q.front() {
                    break front.clone();
                }
                q = shared.work_cv.wait(q).unwrap();
            }
        };
        batch.participate();
    }
}

fn resolve_lanes(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Process-wide pool cache: one persistent pool per lane count, so every
/// query at a given `threads` setting shares workers instead of spawning.
pub fn pool_with(lanes: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let lanes = resolve_lanes(lanes);
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pools.lock().unwrap();
    map.entry(lanes).or_insert_with(|| Arc::new(ThreadPool::new(lanes))).clone()
}

/// The default shared pool (available parallelism).
pub fn global() -> Arc<ThreadPool> {
    pool_with(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_preserves_index_order() {
        for lanes in [1, 2, 4] {
            let pool = ThreadPool::new(lanes);
            let out = pool.map(257, |i| i * i);
            assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tasks_can_borrow_the_callers_stack() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        pool.for_each(data.len(), &|i| {
            total.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn nested_submission_completes() {
        let pool = Arc::new(ThreadPool::new(2));
        let inner_total = AtomicU64::new(0);
        let p2 = pool.clone();
        pool.for_each(4, &|_| {
            p2.for_each(8, &|j| {
                inner_total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_total.load(Ordering::Relaxed), 4 * 28);
    }

    #[test]
    fn panics_propagate_with_payload() {
        let pool = ThreadPool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(64, &|i| {
                if i == 13 {
                    panic!("boom at {i}");
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 13"));
        // The pool stays usable after a panicked batch.
        let out = pool.map(10, |i| i + 1);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn chunks_partition_the_range() {
        let pool = ThreadPool::new(3);
        for n in [1usize, 2, 7, 100] {
            let chunks = pool.chunks(n, 2);
            assert!(!chunks.is_empty());
            let mut covered = 0;
            for (k, c) in chunks.iter().enumerate() {
                assert_eq!(c.start, covered, "chunk {k} contiguous");
                covered = c.end;
            }
            assert_eq!(covered, n);
        }
        assert!(pool.chunks(0, 2).is_empty());
    }

    #[test]
    fn shared_pools_are_cached_per_size() {
        let a = pool_with(2);
        let b = pool_with(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool_with(1).lanes(), 1);
    }
}
