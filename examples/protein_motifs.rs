//! Motif search over an uncertain protein–protein interaction network.
//!
//! Bioinformatics is one of the paper's motivating domains, and PPI data
//! exhibits all three uncertainty types natively:
//!
//! * **label uncertainty** — protein roles (kinase, phosphatase, substrate,
//!   scaffold) come from function-prediction models with confidences;
//! * **edge uncertainty** — interactions carry reproducibility scores from
//!   noisy assays (yeast two-hybrid, co-IP);
//! * **identity uncertainty** — the same protein appears under multiple
//!   database accessions, and cross-reference resolution is probabilistic.
//!
//! This example synthesizes such a network, then searches two classic
//! motifs: the kinase–substrate–phosphatase regulation triangle, and a
//! scaffold hub binding two kinases. Run with:
//! `cargo run -p bench --example protein_motifs`

use graphstore::{EdgeProbability, LabelDist, LabelTable, RefGraph};
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegmatch::pattern::parse_pattern;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);

    // --- 1. The protein reference network. ---
    let mut table = LabelTable::new();
    let kin = table.intern("Kinase");
    let pho = table.intern("Phosphatase");
    let sub = table.intern("Substrate");
    let sca = table.intern("Scaffold");
    let n_labels = table.len();
    let roles = [kin, pho, sub, sca];

    let mut net = RefGraph::new(table);
    let n_proteins = 80usize;
    let mut ids = Vec::with_capacity(n_proteins);
    for i in 0..n_proteins {
        // Role prediction: a dominant role with confidence 0.6–1.0, the
        // remainder spread over the alternatives.
        let main = roles[i % roles.len()];
        let conf: f64 = rng.gen_range(0.6..1.0);
        let spread = (1.0 - conf) / (n_labels - 1) as f64;
        let pairs: Vec<_> =
            roles.iter().map(|&r| (r, if r == main { conf } else { spread })).collect();
        ids.push(net.add_ref(LabelDist::from_pairs(&pairs, n_labels)));
    }

    // Interactions: a sparse random graph plus deliberate motif structure.
    let add_edge = |net: &mut RefGraph, a: usize, b: usize, p: f64| {
        if a != b {
            net.add_edge(ids[a], ids[b], EdgeProbability::Independent(p));
        }
    };
    for k in (0..n_proteins).step_by(4) {
        // Around each kinase (index k): a substrate (k+2) it phosphorylates,
        // a phosphatase (k+1) reversing it, and a scaffold (k+3).
        let assay = |rng: &mut SmallRng| rng.gen_range(0.55..0.98);
        let p1 = assay(&mut rng);
        let p2 = assay(&mut rng);
        let p3 = assay(&mut rng);
        let p4 = assay(&mut rng);
        add_edge(&mut net, k, (k + 2) % n_proteins, p1);
        add_edge(&mut net, (k + 1) % n_proteins, (k + 2) % n_proteins, p2);
        add_edge(&mut net, k, (k + 3) % n_proteins, p3);
        add_edge(&mut net, (k + 3) % n_proteins, (k + 4) % n_proteins, p4);
    }
    for _ in 0..n_proteins {
        let (a, b) = (rng.gen_range(0..n_proteins), rng.gen_range(0..n_proteins));
        let p = rng.gen_range(0.3..0.9);
        add_edge(&mut net, a, b, p);
    }

    // Cross-reference ambiguity: a few accession pairs may be one protein.
    for i in 0..6 {
        let a = ids[i * 13 % n_proteins];
        let b = ids[(i * 13 + 4) % n_proteins];
        if a != b {
            net.add_pair_set_with_posterior(a, b, 0.25 + 0.1 * i as f64);
        }
    }

    println!(
        "PPI network: {} accessions, {} scored interactions, {} ambiguous cross-references",
        net.n_refs(),
        net.n_edges(),
        net.ref_sets().len()
    );

    // --- 2. Compile + offline phase. ---
    let peg = PegBuilder::new().build(&net).expect("model compiles");
    let offline = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.05))
        .expect("offline phase");
    let pipeline = QueryPipeline::new(&peg, &offline);
    println!(
        "entity graph: {} potential proteins, {} edges; index: {} paths\n",
        peg.graph.n_nodes(),
        peg.graph.n_edges(),
        offline.paths.n_entries()
    );

    // --- 3. Motif 1: the regulation triangle. ---
    let table = peg.graph.label_table();
    let triangle = "(k:Kinase)-(s:Substrate), (s)-(p:Phosphatase)";
    let q = parse_pattern(triangle, table).expect("motif parses");
    println!("motif 1 (kinase/phosphatase regulation path): {triangle}");
    for alpha in [0.1, 0.3] {
        let r = pipeline.run(&q, alpha, &QueryOptions::default()).expect("query");
        println!("  alpha = {alpha}: {} candidate motif instances", r.matches.len());
    }
    let top = pipeline.run_topk(&q, 3, 1e-6, &QueryOptions::default()).expect("top-k query");
    println!("  top 3 by probability:");
    for m in &top.matches {
        let names: Vec<String> = m.nodes.iter().map(|v| format!("P{}", v.0)).collect();
        println!("    {} at Pr = {:.3}", names.join("–"), m.prob());
    }

    // --- 4. Motif 2: a scaffold bridging two kinases. ---
    let bridge = "(a:Kinase)-(x:Scaffold), (x)-(b:Kinase)";
    let q2 = parse_pattern(bridge, table).expect("motif parses");
    println!("\nmotif 2 (scaffold bridge): {bridge}");
    let r2 = pipeline.run(&q2, 0.15, &QueryOptions::default()).expect("query");
    println!("  alpha = 0.15: {} bridges", r2.matches.len());
    if let Some(best) = r2.matches.first() {
        println!("\n  why is the first one only Pr = {:.3}?", best.prob());
        let ex = pegmatch::explain::explain(&peg, &q2, best);
        if let Some((what, p)) = ex.weakest_factor() {
            println!("  weakest factor: {what} at Pr = {p:.3}");
        }
    }
}
