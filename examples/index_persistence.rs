//! Offline/online separation with durable storage: build the path index
//! once, persist graph and index into kvstore B+-tree files, then answer
//! queries from a fresh process state — the paper's offline/online split.
//!
//! Run with: `cargo run -p bench --release --example index_persistence`

use datagen::{sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use graphstore::persist::{load_entity_graph, save_entity_graph};
use kvstore::BTreeStore;
use pathindex::disk::{load_index, save_index, DiskPathIndex};
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir();
    let graph_path = dir.join("pegmatch-example-graph.kv");
    let index_path = dir.join("pegmatch-example-index.kv");

    // --- Offline: build, persist, drop. ---
    let refs = synthetic_refgraph(&SyntheticConfig::paper(2_000));
    let peg = PegBuilder::new().build(&refs).expect("model compiles");
    let offline = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.3))
        .expect("offline phase");
    {
        let mut store = BTreeStore::create(&graph_path).unwrap();
        save_entity_graph(&peg.graph, &mut store).unwrap();
        store.flush().unwrap();
        println!(
            "entity graph persisted: {} entries, {} KiB on disk",
            kvstore::Kv::len(&store),
            store.file_len() / 1024
        );
    }
    {
        let mut store = BTreeStore::create(&index_path).unwrap();
        save_index(&offline.paths, &mut store).unwrap();
        store.flush().unwrap();
        println!(
            "path index persisted: {} entries, {} KiB on disk \
             (built in {})",
            offline.paths.n_entries(),
            store.file_len() / 1024,
            bench::fmt_duration(offline.stats.index_time)
        );
    }

    // --- Online: reload everything from disk. ---
    let t = Instant::now();
    let graph_store = BTreeStore::open(&graph_path).unwrap();
    let graph = load_entity_graph(&graph_store).unwrap();
    let index_store = BTreeStore::open(&index_path).unwrap();
    let paths = load_index(&index_store).unwrap();
    println!(
        "reloaded graph ({} nodes) and index ({} entries) in {}\n",
        graph.n_nodes(),
        paths.n_entries(),
        bench::fmt_duration(t.elapsed())
    );

    // Rebind the offline artifacts (context info is cheap to recompute).
    let context = pegmatch::offline::ContextInfo::build(&peg.graph);
    let offline2 = OfflineIndex { context, paths, stats: offline.stats };
    let pipeline = QueryPipeline::new(&peg, &offline2);

    let query = sampled_query(&peg.graph, QuerySpec::new(4, 4), 5).expect("sampled query");
    let t = Instant::now();
    let res = pipeline.run(&query, 0.4, &QueryOptions::default()).expect("query runs");
    println!(
        "query over reloaded index: {} matches in {}",
        res.matches.len(),
        bench::fmt_duration(t.elapsed())
    );

    // Bonus: serve a lookup directly from disk, without loading the index.
    let disk = DiskPathIndex::open(&index_store).unwrap();
    let labels: Vec<graphstore::Label> = (0..2).map(|i| graphstore::Label(i as u16)).collect();
    let t = Instant::now();
    let hits = disk.lookup(&labels, 0.5).unwrap();
    println!(
        "disk-direct lookup for {labels:?}: {} paths in {}",
        hits.len(),
        bench::fmt_duration(t.elapsed())
    );

    std::fs::remove_file(&graph_path).ok();
    std::fs::remove_file(&index_path).ok();
}
