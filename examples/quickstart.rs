//! Quickstart: the paper's Figure-1 worked example, end to end.
//!
//! Builds the reference network of Section 2 (four references from three
//! sources, one uncertain identity link), compiles it into a probabilistic
//! entity graph, runs the offline phase, and answers the (r, a, i) path
//! query of Figure 1(d).
//!
//! Run with: `cargo run -p bench --example quickstart`

use graphstore::{EdgeProbability, LabelDist, LabelTable, RefGraph};
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegmatch::query::QueryGraph;

fn main() {
    // --- 1. The reference-level network (Figure 1(a)). ---
    let mut table = LabelTable::new();
    let a = table.intern("a"); // Academia
    let r = table.intern("r"); // Research Lab
    let i = table.intern("i"); // Industry
    let n = table.len();

    let mut refs = RefGraph::new(table);
    // r1 "Gerald Maya" (personal webpage): industry 0.75 / research 0.25.
    let r1 = refs.add_ref(LabelDist::from_pairs(&[(r, 0.25), (i, 0.75)], n));
    // r2 "Becky Castor" (professional network): academia.
    let r2 = refs.add_ref(LabelDist::delta(a, n));
    // r3 "Christopher Tucker": research lab.
    let r3 = refs.add_ref(LabelDist::delta(r, n));
    // r4 "Chris Tucker" (social network): industry.
    let r4 = refs.add_ref(LabelDist::delta(i, n));
    refs.add_edge(r1, r2, EdgeProbability::Independent(0.9));
    refs.add_edge(r2, r3, EdgeProbability::Independent(1.0));
    refs.add_edge(r2, r4, EdgeProbability::Independent(0.5));
    // "Christopher Tucker" ≈ "Chris Tucker": same entity with posterior 0.8.
    refs.add_pair_set_with_posterior(r3, r4, 0.8);

    // --- 2. Compile into a probabilistic entity graph. ---
    let peg = PegBuilder::new().build(&refs).expect("model compiles");
    println!(
        "PEG: {} entity nodes, {} edges, {} existence component(s)",
        peg.graph.n_nodes(),
        peg.graph.n_edges(),
        peg.existence.n_components()
    );
    let s34 = graphstore::EntityId(4);
    println!(
        "merged entity s34 = {{r3, r4}}: Pr(exists) = {:.3}, labels r/i = {:.2}/{:.2}",
        peg.prn(&[s34]),
        peg.graph.label_prob(s34, r),
        peg.graph.label_prob(s34, i),
    );

    // --- 3. Offline phase: path index + context information. ---
    let offline = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01))
        .expect("offline phase");
    println!(
        "path index: {} entries across {} label sequences\n",
        offline.paths.n_entries(),
        offline.paths.n_sequences()
    );

    // --- 4. The query of Figure 1(d): a path labeled (r, a, i). ---
    let query = QueryGraph::path(&[r, a, i]).expect("query validates");
    let pipeline = QueryPipeline::new(&peg, &offline);

    for alpha in [0.05, 0.2, 0.25] {
        let result = pipeline.run(&query, alpha, &QueryOptions::default()).expect("query runs");
        println!("alpha = {alpha}: {} match(es)", result.matches.len());
        for mt in &result.matches {
            let names: Vec<String> = mt.nodes.iter().map(|v| format!("s{}", v.0)).collect();
            println!(
                "  ({})  Prle = {:.6}  Prn = {:.3}  Pr = {:.6}",
                names.join(", "),
                mt.prle,
                mt.prn,
                mt.prob()
            );
        }
    }
    println!();
    println!("Note: the paper's worked example reports 0.253 for (s34, s2, s1),");
    println!("which is Prle only; Equation 11 multiplies the identity marginal");
    println!("Prn = 0.8, giving Pr = 0.2025 (see DESIGN.md).");

    // --- 5. Why that probability? Factorize the answer. ---
    println!();
    let result = pipeline.run(&query, 0.2, &QueryOptions::default()).expect("query runs");
    let table = peg.graph.label_table();
    for mt in &result.matches {
        let ex = pegmatch::explain::explain(&peg, &query, mt);
        print!("{}", ex.render(table));
        if let Some((what, p)) = ex.weakest_factor() {
            println!("  weakest factor: {what} at {p:.3}");
        }
    }
}
