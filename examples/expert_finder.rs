//! Expert finder: the motivating scenario of Section 1/2 at scale.
//!
//! An organization integrates expert profiles from multiple sources
//! (professional networks, social networks, personal pages). Extraction
//! gives uncertain affiliations, uncertain relationships, and duplicate
//! mentions of the same person. The system answers entity-level pattern
//! queries like "a research-lab expert connected to an academic connected
//! to an industry expert".
//!
//! Run with: `cargo run -p bench --release --example expert_finder`

use datagen::{synthetic_refgraph, SyntheticConfig};
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegmatch::query::QueryGraph;
use std::time::Instant;

fn main() {
    // A 5k-mention network with 20% uncertain annotations, 5 affiliations.
    let cfg = SyntheticConfig {
        n_labels: 3, // a / r / i as in the paper's example
        ..SyntheticConfig::paper(3_000)
    };
    let refs = synthetic_refgraph(&cfg);
    println!(
        "integrated {} mentions, {} extracted relationships, {} identity links",
        refs.n_refs(),
        refs.n_edges(),
        refs.ref_sets().len()
    );

    let t = Instant::now();
    let peg = PegBuilder::new().build(&refs).expect("model compiles");
    println!(
        "entity graph: {} potential entities, {} edges ({})",
        peg.graph.n_nodes(),
        peg.graph.n_edges(),
        bench::fmt_duration(t.elapsed())
    );

    let t = Instant::now();
    let offline = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.4))
        .expect("offline phase");
    println!(
        "offline phase: {} index entries in {}\n",
        offline.paths.n_entries(),
        bench::fmt_duration(t.elapsed())
    );

    let lt = peg.graph.label_table();
    let labels: Vec<graphstore::Label> = lt.iter().collect();
    let (la, lr, li) = (labels[0], labels[1], labels[2]);

    let pipeline = QueryPipeline::new(&peg, &offline);

    // Query 1: the paper's (r, a, i) chain — find experts bridging labs,
    // academia and industry.
    let chain = QueryGraph::path(&[lr, la, li]).unwrap();
    run_and_report(&pipeline, "chain r-a-i", &chain, 0.5);

    // Query 2: an academic hub with three lab contacts.
    let hub = QueryGraph::star(la, &[lr, lr, lr]).unwrap();
    run_and_report(&pipeline, "academic hub with 3 lab contacts", &hub, 0.5);

    // Query 3: a collaboration triangle spanning all three sectors.
    let triangle = QueryGraph::cycle(&[la, lr, li]).unwrap();
    run_and_report(&pipeline, "cross-sector triangle", &triangle, 0.3);
}

fn run_and_report(pipeline: &QueryPipeline<'_>, name: &str, query: &QueryGraph, alpha: f64) {
    let t = Instant::now();
    let res = pipeline.run(query, alpha, &QueryOptions::default()).expect("query runs");
    println!(
        "{name}: {} matches ≥ {alpha} in {} \
         (search space 10^{:.1} -> 10^{:.1} after pruning)",
        res.matches.len(),
        bench::fmt_duration(t.elapsed()),
        res.stats.log10_ss_index.max(0.0),
        res.stats.log10_ss_final.max(0.0),
    );
    for mt in res.matches.iter().take(3) {
        let ids: Vec<String> = mt.nodes.iter().map(|v| format!("e{}", v.0)).collect();
        println!("    [{}] Pr = {:.4}", ids.join(", "), mt.prob());
    }
    if res.matches.len() > 3 {
        println!("    ... and {} more", res.matches.len() - 3);
    }
}
