//! IMDB co-starring patterns (Section 6.3, Figure 7(h) workload).
//!
//! Builds the IMDB-like co-starring network — genre distributions from
//! filmographies, independent co-star edge probabilities, duplicate actor
//! mentions — and runs the Figure-8 patterns with all nodes sharing one
//! genre (the paper's convention for this dataset).
//!
//! Run with: `cargo run -p bench --release --example imdb_costar`

use datagen::{imdb_like, pattern_query, ImdbConfig, Pattern};
use pathindex::PathIndexConfig;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use std::time::Instant;

fn main() {
    let refs = imdb_like(&ImdbConfig::scaled(3_000));
    println!(
        "IMDB-like network: {} actors, {} co-star edges, {} identity links",
        refs.n_refs(),
        refs.n_edges(),
        refs.ref_sets().len()
    );
    let peg = PegBuilder::new().build(&refs).expect("model compiles");

    // Denser graph: a higher β keeps the L = 3 index manageable, exactly
    // the trade-off the paper discusses for Figure 6(a)/(b).
    let mut indexes = Vec::new();
    for l in 1..=3usize {
        let t = Instant::now();
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: l, beta: 0.3, ..Default::default() },
            },
        )
        .expect("offline phase");
        println!(
            "offline L={l}: {} entries in {}",
            idx.paths.n_entries(),
            bench::fmt_duration(t.elapsed())
        );
        indexes.push(idx);
    }
    println!();

    let lt = peg.graph.label_table();
    println!("genres: {:?}", lt.names());
    for genre_name in ["Drama", "Comedy"] {
        let genre = lt.get(genre_name).expect("genre exists");
        println!("\n## co-starring patterns within {genre_name}");
        println!("{:<5} {:>10} {:>10} {:>10} {:>9}", "query", "L=1", "L=2", "L=3", "matches");
        for p in Pattern::ALL {
            let q = pattern_query(p, genre, genre, genre).expect("pattern builds");
            let mut row = format!("{:<5}", p.name());
            let mut n_matches = 0;
            for idx in &indexes {
                let pipe = QueryPipeline::new(&peg, idx);
                let t = Instant::now();
                let res = pipe.run(&q, 0.1, &QueryOptions::default()).expect("query runs");
                row.push_str(&format!(" {:>10}", bench::fmt_duration(t.elapsed())));
                n_matches = res.matches.len();
            }
            row.push_str(&format!(" {n_matches:>9}"));
            println!("{row}");
        }
    }
}
