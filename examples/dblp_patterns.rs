//! DBLP collaboration patterns (Section 6.3, Figure 7(g) workload).
//!
//! Builds the DBLP-like collaboration network — research-area label
//! distributions, *label-correlated* edge probabilities (the Section 5.3
//! CPT path), name-similarity identity links — and runs the five Figure-8
//! collaboration patterns (BF1, BF2, GR, ST, TR) at α = 0.1 for
//! L = 1, 2, 3.
//!
//! Run with: `cargo run -p bench --release --example dblp_patterns`

use datagen::{dblp_like, pattern_query, DblpConfig, Pattern};
use pathindex::PathIndexConfig;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use std::time::Instant;

fn main() {
    let refs = dblp_like(&DblpConfig::scaled(4_000));
    println!(
        "DBLP-like network: {} authors, {} collaborations, {} identity links",
        refs.n_refs(),
        refs.n_edges(),
        refs.ref_sets().len()
    );
    let peg = PegBuilder::new().build(&refs).expect("model compiles");

    let mut indexes = Vec::new();
    for l in 1..=3usize {
        let t = Instant::now();
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: l, beta: 0.05, ..Default::default() },
            },
        )
        .expect("offline phase");
        println!(
            "offline L={l}: {} entries in {}",
            idx.paths.n_entries(),
            bench::fmt_duration(t.elapsed())
        );
        indexes.push(idx);
    }
    println!();

    let lt = peg.graph.label_table();
    let (d, m, s) = (
        lt.get("D").expect("Databases label"),
        lt.get("M").expect("Machine Learning label"),
        lt.get("S").expect("Software Engineering label"),
    );

    println!("{:<5} {:>10} {:>10} {:>10} {:>9}", "query", "L=1", "L=2", "L=3", "matches");
    for p in Pattern::ALL {
        let q = pattern_query(p, d, m, s).expect("pattern builds");
        let mut row = format!("{:<5}", p.name());
        let mut n_matches = 0;
        for idx in &indexes {
            let pipe = QueryPipeline::new(&peg, idx);
            let t = Instant::now();
            let res = pipe.run(&q, 0.1, &QueryOptions::default()).expect("query runs");
            row.push_str(&format!(" {:>10}", bench::fmt_duration(t.elapsed())));
            n_matches = res.matches.len();
        }
        row.push_str(&format!(" {n_matches:>9}"));
        println!("{row}");
    }
}
