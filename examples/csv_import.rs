//! Importing an uncertain graph from CSV files and querying it with the
//! textual pattern syntax.
//!
//! Real deployments rarely build reference networks in Rust: extraction
//! pipelines emit flat files. This example writes a small collaboration
//! dataset the way such a pipeline would (labels / nodes / edges / refsets
//! CSVs), loads it back with `graphstore::csv`, and answers a pattern query
//! written in the `(var:Label)-(var:Label)` surface syntax.
//!
//! Run with: `cargo run -p bench --example csv_import`

use graphstore::csv::{load_ref_graph_csv, save_ref_graph_csv};
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegmatch::pattern::{format_pattern, parse_pattern};

fn main() {
    let dir = std::env::temp_dir().join(format!("pegmatch-csv-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dataset directory");

    // --- 1. A dataset as an extraction pipeline would ship it. ---
    // Eight researcher mentions across two sources; two pairs of mentions
    // are suspected duplicates (identity uncertainty).
    std::fs::write(dir.join("labels.csv"), "label\nDatabases\nML\nSystems\n").unwrap();
    std::fs::write(
        dir.join("nodes.csv"),
        "ref,label,prob\n\
         0,Databases,1\n\
         1,Databases,0.8\n1,ML,0.2\n\
         2,ML,1\n\
         3,Systems,0.7\n3,Databases,0.3\n\
         4,Systems,1\n\
         5,ML,0.6\n5,Databases,0.4\n\
         6,Databases,1\n\
         7,Systems,1\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("edges.csv"),
        "a,b,label_a,label_b,prob\n\
         0,1,,,0.9\n\
         1,2,,,0.8\n\
         2,3,,,0.7\n\
         0,3,,,0.6\n\
         3,4,,,0.95\n\
         4,5,,,0.5\n\
         5,6,,,0.9\n\
         6,7,,,0.85\n\
         1,6,,,0.4\n",
    )
    .unwrap();
    // Mentions 1 & 6 look like the same person (posterior-ish weight), and
    // so do 4 & 7.
    std::fs::write(dir.join("refsets.csv"), "set,ref,weight\n0,1,0.2\n0,6,0.2\n1,4,0.3\n1,7,0.3\n")
        .unwrap();

    // --- 2. Load and compile. ---
    let refs = load_ref_graph_csv(&dir).expect("CSV files load");
    println!(
        "loaded {} references, {} edges, {} reference sets from {}",
        refs.n_refs(),
        refs.n_edges(),
        refs.ref_sets().len(),
        dir.display()
    );
    let peg = PegBuilder::new().build(&refs).expect("model compiles");
    println!(
        "entity graph: {} potential entities, {} edges",
        peg.graph.n_nodes(),
        peg.graph.n_edges()
    );

    // --- 3. Query with the textual pattern syntax. ---
    let table = peg.graph.label_table();
    let pattern = "(x:Databases)-(y:ML), (y)-(z:Systems)";
    let query = parse_pattern(pattern, table).expect("pattern parses");
    println!("\nquery: {pattern}");
    println!("canonical form: {}", format_pattern(&query, table));

    let index = OfflineIndex::build(&peg, &OfflineOptions::default()).expect("offline phase");
    let pipeline = QueryPipeline::new(&peg, &index);
    let result = pipeline.run(&query, 0.05, &QueryOptions::default()).expect("query runs");

    println!("\n{} match(es) with Pr >= 0.05:", result.matches.len());
    for m in &result.matches {
        let ids: Vec<String> = m.nodes.iter().map(|v| format!("e{}", v.0)).collect();
        println!("  [{}]  Pr = {:.4}", ids.join(", "), m.prob());
    }

    // --- 4. Round-trip check: exporting reproduces the same network. ---
    let out = dir.join("reexport");
    save_ref_graph_csv(&refs, &out).expect("export");
    let reloaded = load_ref_graph_csv(&out).expect("reload");
    assert_eq!(reloaded.n_refs(), refs.n_refs());
    assert_eq!(reloaded.n_edges(), refs.n_edges());
    println!("\nre-exported to {} and reloaded identically", out.display());

    std::fs::remove_dir_all(&dir).ok();
}
